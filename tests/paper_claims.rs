//! The paper's quantitative claims, checked against this reproduction at
//! paper scale (via the validated analytic models) and at reduced
//! functional scale. EXPERIMENTS.md discusses each band.

use cudasw_bench::experiments::{fig2, fig3, fig5, fig6, predict, table2};
use cudasw_bench::workloads;
use cudasw_core::model::{
    predict_inter_group, predict_intra_improved, predict_intra_orig, PredictedIntra,
};
use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, IntraKernelChoice, VariantConfig};
use gpu_sim::{DeviceSpec, TimingModel};
use obs::MetricsAssert;
use sw_db::catalog::PaperDb;
use sw_db::synth::{database_with_lengths, make_query};

/// §II-C: "the inter-task kernel averages approximately 17 GCUPs while the
/// intra-task kernel averages 1.5 GCUPs [...] on the Tesla C1060."
#[test]
fn kernel_level_calibration_bands() {
    let spec = DeviceSpec::tesla_c1060();
    let tm = TimingModel::default();
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);
    let split = lengths.partition_point(|&l| l < 3072);

    let inter = predict_inter_group(&spec, &tm, &lengths[..split], 567, 256);
    assert!(
        (13.0..=25.0).contains(&inter.gcups()),
        "inter-task = {:.1} GCUPs (paper ≈ 17)",
        inter.gcups()
    );

    let long = &lengths[split..];
    let orig = predict_intra_orig(&spec, &tm, long, 567, false);
    assert!(
        (0.8..=4.0).contains(&orig.gcups()),
        "original intra-task = {:.1} GCUPs (paper ≈ 1.5)",
        orig.gcups()
    );

    // §I: "We improve the performance of the intra-task kernel by over 11
    // times" — band: at least 6x in this reproduction.
    let imp = predict_intra_improved(&spec, &tm, long, 567, &ImprovedParams::default(), false);
    let speedup = imp.gcups() / orig.gcups();
    assert!(
        speedup >= 6.0,
        "intra-task speedup {speedup:.1}x (paper > 11x)"
    );
}

/// §II-C: "CUDASW++ achieves a performance of 17 GCUPs on a Tesla C1060.
/// When we increase this threshold to 36,000 [...] the performance drops
/// to 10 GCUPs."
///
/// Partially reproduced (see EXPERIMENTS.md): our scheduler absorbs more
/// of the extreme-straggler barrier than the real driver did, so the
/// all-inter-task configuration lands near the original-kernel default
/// rather than 41% below it. What does hold: the straggler group itself
/// collapses (its GCUPs are far below the device's inter-task rate), and
/// the improved-kernel default strictly beats all-inter-task — i.e. the
/// threshold remains necessary.
#[test]
fn all_inter_task_threshold_costs_performance() {
    let spec = DeviceSpec::tesla_c1060();
    let tm = TimingModel::default();
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);

    // The tail-holding group runs far below the healthy inter-task rate.
    let s = spec.intertask_group_size(256, 30, 0) as usize;
    let tail_start = lengths.len() - (lengths.len() % s).max(s).min(lengths.len());
    let tail_group = predict_inter_group(&spec, &tm, &lengths[tail_start..], 567, 256);
    let healthy = predict_inter_group(&spec, &tm, &lengths[..s], 567, 256);
    assert!(
        tail_group.gcups() < healthy.gcups() * 0.6,
        "straggler group {:.1} GCUPs vs healthy group {:.1}",
        tail_group.gcups(),
        healthy.gcups()
    );

    // And the improved-kernel default threshold beats all-inter-task.
    let improved_default = predict(&spec, &lengths, 567, 3072, PredictedIntra::Improved, false);
    let all_inter = predict(
        &spec,
        &lengths,
        567,
        36_000,
        PredictedIntra::Improved,
        false,
    );
    assert!(
        all_inter.gcups() < improved_default.gcups(),
        "all-inter {:.1} vs improved default {:.1}",
        all_inter.gcups(),
        improved_default.gcups()
    );
}

/// Figure 2: the inter-task kernel collapses to intra-task parity as
/// length variance grows (the paper's curves cross mid-sweep; here the
/// collapse reaches ≈1x at the top of the sweep — EXPERIMENTS.md,
/// "Known divergences").
#[test]
fn figure2_curves_converge() {
    let r = fig2::run(&DeviceSpec::tesla_c1060(), 15_360, &fig2::paper_stds(), 567);
    let ratio_first = r.inter.points.first().unwrap().1 / r.intra.points.first().unwrap().1;
    let ratio_last = r.inter.points.last().unwrap().1 / r.intra.points.last().unwrap().1;
    assert!(ratio_first > 5.0, "low-σ gap {ratio_first:.2}x");
    assert!(ratio_last < 1.1, "σ=4000 ratio {ratio_last:.2}x");
}

/// Figure 3: the original kernel's threshold cliff.
#[test]
fn figure3_threshold_cliff() {
    let r = fig3::run(&DeviceSpec::tesla_c1060(), 572);
    assert!(r.worst < r.at_default * 0.7);
}

/// Figure 5 / §IV-A: the improved kernel always wins, gains grow with the
/// intra-task share, and the C1060 gains exceed the C2050 gains.
#[test]
fn figure5_gain_structure() {
    let r = fig5::run(576, false);
    for (dev, g) in &r.gain_at_default {
        assert!(*g > 0.0, "{dev} gain at default = {g:.1}%");
    }
    let max_c2050 = r.gain_max[0].1;
    let max_c1060 = r.gain_max[1].1;
    assert!(
        max_c1060 > max_c2050,
        "C1060 max gain {max_c1060:.1}% should exceed C2050 {max_c2050:.1}%"
    );
    // Paper: max gains 67.0% (C1060) and 39.3% (C2050). Wide bands.
    assert!((20.0..=200.0).contains(&max_c1060));
    assert!((10.0..=150.0).contains(&max_c2050));
}

/// Figure 6: the original kernel's Fermi advantage is the cache.
#[test]
fn figure6_cache_attribution() {
    let r = fig6::run(576);
    assert!(r.c2050_original_share_delta() > r.c2050_improved_share_delta());
    assert!(
        r.c2050_original_share_delta() > 5.0,
        "cache effect too small"
    );
}

/// Table I, measured — not hand-fed: both intra-task kernels run every DP
/// cell through the simulator under the observability recorder, and the
/// transaction counts come out of the metrics registry
/// (`cudasw.gpu_sim.launch.global_transactions`, labelled by kernel).
/// The paper reports ~2000:1 at query 567 and ~40:1 at 5478 (≈50:1
/// overall); the claim pinned here is "at least 40:1".
#[test]
fn table1_transaction_reduction_measured_from_metrics_registry() {
    let spec = DeviceSpec::tesla_c1060();
    let db = workloads::long_tail_db(4, 3500);
    let query = workloads::query(567);

    // Both kernels through the identical driver path: threshold 1 routes
    // every sequence to the intra-task kernel under test.
    let capture_kernel = |intra: IntraKernelChoice| {
        let cfg = CudaSwConfig {
            threshold: 1,
            intra,
            ..CudaSwConfig::improved()
        };
        let ((), run) = obs::capture(|| {
            let mut driver = CudaSwDriver::new(spec.clone(), cfg.clone());
            driver.search(&query, &db).map(|_| ()).unwrap()
        });
        run
    };
    let improved_run = capture_kernel(IntraKernelChoice::Improved(VariantConfig::improved()));
    let original_run = capture_kernel(IntraKernelChoice::Original);

    // Merge the two captured runs; the kernel label keeps them apart.
    let mut merged = improved_run.metrics.clone();
    merged.merge(&original_run.metrics);
    MetricsAssert::new()
        .ratio_ge(
            "cudasw.gpu_sim.launch.global_transactions",
            &[("kernel", "intra_orig")],
            "cudasw.gpu_sim.launch.global_transactions",
            &[("kernel", "intra_improved")],
            40.0,
        )
        // Both kernels computed the identical cell workload — the ratio
        // compares equal work, not different amounts of it.
        .counter_eq(
            "cudasw.gpu_sim.launch.cells",
            &[("kernel", "intra_orig")],
            merged.counter_sum(
                "cudasw.gpu_sim.launch.cells",
                &[("kernel", "intra_improved")],
            ),
            0.0,
        )
        .check(&merged)
        .unwrap();
}

/// Figures 2/3 rest on the threshold controlling the inter/intra workload
/// split. Measured from the registry: the intra-task share of DP cells
/// equals exactly the over-threshold residues x query length, and grows
/// monotonically as the threshold drops.
#[test]
fn workload_split_tracks_threshold_in_the_registry() {
    let lengths: Vec<usize> = vec![
        60, 90, 140, 200, 300, 450, 700, 1000, 1400, 1900, 2500, 3100, 3500,
    ];
    let db = database_with_lengths("split", &lengths, 23);
    let query = make_query(64, 3);
    let mut last_share = -1.0;
    for threshold in [3072usize, 1200, 250] {
        let cfg = CudaSwConfig {
            threshold,
            ..CudaSwConfig::improved()
        };
        let ((), run) = obs::capture(|| {
            let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), cfg);
            driver.search(&query, &db).map(|_| ()).unwrap()
        });
        let m = &run.metrics;
        let intra = m.counter_sum("cudasw.core.phase.cells", &[("phase", "intra")]);
        let inter = m.counter_sum("cudasw.core.phase.cells", &[("phase", "inter")]);
        let long_residues: usize = lengths.iter().filter(|&&l| l >= threshold).sum();
        assert_eq!(
            intra as usize,
            long_residues * query.len(),
            "threshold {threshold}: intra cells must be exactly the long tail"
        );
        assert_eq!(
            (intra + inter) as u64,
            db.total_cells(query.len()),
            "threshold {threshold}: no cells lost between the phases"
        );
        let share = intra / (intra + inter);
        assert!(
            share > last_share,
            "threshold {threshold}: intra share {share:.3} must grow as the threshold drops"
        );
        last_share = share;
    }
}

/// GCUPs accounting is monotone and consistent: counters only grow,
/// repeating the identical search leaves the aggregate rate unchanged,
/// and the registry-derived rate agrees with the `RunStats` view.
#[test]
fn gcups_accounting_is_monotone_and_consistent() {
    let db = database_with_lengths("gcups", &[40, 80, 120, 200, 320, 500], 41);
    let query = make_query(48, 7);
    let cfg = CudaSwConfig {
        threshold: 150,
        ..CudaSwConfig::improved()
    };
    let ((), run) = obs::capture(|| {
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), cfg);
        let first = driver.search(&query, &db).unwrap();
        let after_first = obs::snapshot_metrics();
        let second = driver.search(&query, &db).unwrap();
        let after_second = obs::snapshot_metrics();

        let rate = |m: &obs::MetricsRegistry| {
            m.counter_sum("cudasw.gpu_sim.launch.cells", &[])
                / m.counter_sum("cudasw.gpu_sim.launch.seconds", &[])
        };
        // Monotone: the second search only adds.
        assert!(rate(&after_first) > 0.0);
        assert!(
            after_second.counter_sum("cudasw.gpu_sim.launch.cells", &[])
                >= 2.0 * after_first.counter_sum("cudasw.gpu_sim.launch.cells", &[])
        );
        // Identical work at an identical simulated rate.
        let (r1, r2) = (rate(&after_first), rate(&after_second));
        assert!((r1 - r2).abs() <= 1e-9 * r1, "{r1} vs {r2}");
        // The RunStats view reports the same per-phase rates the
        // registry implies.
        for result in [&first, &second] {
            for (phase, stats) in [("inter", &result.inter), ("intra", &result.intra)] {
                let cells = result_phase(&after_first, phase, "cells");
                let secs = result_phase(&after_first, phase, "seconds");
                assert!(
                    (stats.gcups() - cells / secs / 1.0e9).abs() <= 1e-9 * stats.gcups(),
                    "{phase} gcups"
                );
            }
        }
    });
    drop(run);
}

fn result_phase(m: &obs::MetricsRegistry, phase: &str, what: &str) -> f64 {
    m.counter_sum(&format!("cudasw.core.phase.{what}"), &[("phase", phase)])
}

/// Table II: improvement on every database, smallest on TAIR.
#[test]
fn table2_structure() {
    let r = table2::run();
    for db in PaperDb::all() {
        for dev in ["Tesla C1060", "Tesla C2050"] {
            assert!(r.mean_gain(db.name(), dev) > 0.0, "{} on {dev}", db.name());
        }
    }
    let tair = r.mean_gain(PaperDb::Tair.name(), "Tesla C1060");
    let swiss = r.mean_gain(PaperDb::Swissprot.name(), "Tesla C1060");
    assert!(
        tair <= swiss * 1.5,
        "TAIR gain {tair:.3} vs Swissprot {swiss:.3}"
    );
}
