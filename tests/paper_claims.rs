//! The paper's quantitative claims, checked against this reproduction at
//! paper scale (via the validated analytic models) and at reduced
//! functional scale. EXPERIMENTS.md discusses each band.

use cudasw_bench::experiments::{fig2, fig3, fig5, fig6, predict, table2};
use cudasw_bench::workloads;
use cudasw_core::model::{
    predict_inter_group, predict_intra_improved, predict_intra_orig, PredictedIntra,
};
use cudasw_core::{
    bin_imbalance, residue_balanced_bins, CudaSwConfig, CudaSwDriver, DeviceKernelConfig,
    ImprovedParams, IntraKernelChoice, VariantConfig,
};
use gpu_sim::{DeviceSpec, TimingModel};
use obs::MetricsAssert;
use sw_db::catalog::PaperDb;
use sw_db::synth::{database_with_lengths, make_query};

/// §II-C: "the inter-task kernel averages approximately 17 GCUPs while the
/// intra-task kernel averages 1.5 GCUPs [...] on the Tesla C1060."
#[test]
fn kernel_level_calibration_bands() {
    let spec = DeviceSpec::tesla_c1060();
    let tm = TimingModel::default();
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);
    let split = lengths.partition_point(|&l| l < 3072);

    let inter = predict_inter_group(&spec, &tm, &lengths[..split], 567, 256);
    assert!(
        (13.0..=25.0).contains(&inter.gcups()),
        "inter-task = {:.1} GCUPs (paper ≈ 17)",
        inter.gcups()
    );

    let long = &lengths[split..];
    let orig = predict_intra_orig(&spec, &tm, long, 567, false);
    assert!(
        (0.8..=4.0).contains(&orig.gcups()),
        "original intra-task = {:.1} GCUPs (paper ≈ 1.5)",
        orig.gcups()
    );

    // §I: "We improve the performance of the intra-task kernel by over 11
    // times" — band: at least 6x in this reproduction.
    let imp = predict_intra_improved(&spec, &tm, long, 567, &ImprovedParams::default(), false);
    let speedup = imp.gcups() / orig.gcups();
    assert!(
        speedup >= 6.0,
        "intra-task speedup {speedup:.1}x (paper > 11x)"
    );
}

/// §II-C: "CUDASW++ achieves a performance of 17 GCUPs on a Tesla C1060.
/// When we increase this threshold to 36,000 [...] the performance drops
/// to 10 GCUPs."
///
/// Partially reproduced (see EXPERIMENTS.md): our scheduler absorbs more
/// of the extreme-straggler barrier than the real driver did, so the
/// all-inter-task configuration lands near the original-kernel default
/// rather than 41% below it. What does hold: the straggler group itself
/// collapses (its GCUPs are far below the device's inter-task rate), and
/// the improved-kernel default strictly beats all-inter-task — i.e. the
/// threshold remains necessary.
#[test]
fn all_inter_task_threshold_costs_performance() {
    let spec = DeviceSpec::tesla_c1060();
    let tm = TimingModel::default();
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);

    // The tail-holding group runs far below the healthy inter-task rate.
    let s = spec.intertask_group_size(256, 30, 0) as usize;
    let tail_start = lengths.len() - (lengths.len() % s).max(s).min(lengths.len());
    let tail_group = predict_inter_group(&spec, &tm, &lengths[tail_start..], 567, 256);
    let healthy = predict_inter_group(&spec, &tm, &lengths[..s], 567, 256);
    assert!(
        tail_group.gcups() < healthy.gcups() * 0.6,
        "straggler group {:.1} GCUPs vs healthy group {:.1}",
        tail_group.gcups(),
        healthy.gcups()
    );

    // And the improved-kernel default threshold beats all-inter-task.
    let improved_default = predict(&spec, &lengths, 567, 3072, PredictedIntra::Improved, false);
    let all_inter = predict(
        &spec,
        &lengths,
        567,
        36_000,
        PredictedIntra::Improved,
        false,
    );
    assert!(
        all_inter.gcups() < improved_default.gcups(),
        "all-inter {:.1} vs improved default {:.1}",
        all_inter.gcups(),
        improved_default.gcups()
    );
}

/// Figure 2: the inter-task kernel collapses to intra-task parity as
/// length variance grows (the paper's curves cross mid-sweep; here the
/// collapse reaches ≈1x at the top of the sweep — EXPERIMENTS.md,
/// "Known divergences").
#[test]
fn figure2_curves_converge() {
    let r = fig2::run(&DeviceSpec::tesla_c1060(), 15_360, &fig2::paper_stds(), 567);
    let Some((ratio_first, ratio_last)) = r.endpoint_ratios() else {
        panic!("empty σ sweep");
    };
    // Bands are the named constants in fig2 so the unit test and this
    // paper-claims mirror can never drift apart.
    assert!(
        ratio_first > fig2::LOW_STD_MIN_GAP,
        "low-σ gap {ratio_first:.2}x"
    );
    assert!(
        ratio_last < fig2::HIGH_STD_PARITY_MAX_RATIO,
        "σ=4000 ratio {ratio_last:.2}x"
    );
}

/// Figure 3: the original kernel's threshold cliff.
#[test]
fn figure3_threshold_cliff() {
    let r = fig3::run(&DeviceSpec::tesla_c1060(), 572);
    assert!(r.worst < r.at_default * 0.7);
}

/// Figure 5 / §IV-A: the improved kernel always wins, gains grow with the
/// intra-task share, and the C1060 gains exceed the C2050 gains.
#[test]
fn figure5_gain_structure() {
    let r = fig5::run(576, false);
    for (dev, g) in &r.gain_at_default {
        assert!(*g > 0.0, "{dev} gain at default = {g:.1}%");
    }
    let max_c2050 = r.gain_max[0].1;
    let max_c1060 = r.gain_max[1].1;
    assert!(
        max_c1060 > max_c2050,
        "C1060 max gain {max_c1060:.1}% should exceed C2050 {max_c2050:.1}%"
    );
    // Paper: max gains 67.0% (C1060) and 39.3% (C2050). Wide bands.
    assert!((20.0..=200.0).contains(&max_c1060));
    assert!((10.0..=150.0).contains(&max_c2050));
}

/// Figure 6: the original kernel's Fermi advantage is the cache.
#[test]
fn figure6_cache_attribution() {
    let r = fig6::run(576);
    assert!(r.c2050_original_share_delta() > r.c2050_improved_share_delta());
    assert!(
        r.c2050_original_share_delta() > 5.0,
        "cache effect too small"
    );
}

/// Table I, measured — not hand-fed: both intra-task kernels run every DP
/// cell through the simulator under the observability recorder, and the
/// transaction counts come out of the metrics registry
/// (`cudasw.gpu_sim.launch.global_transactions`, labelled by kernel).
/// The paper reports ~2000:1 at query 567 and ~40:1 at 5478 (≈50:1
/// overall); the claim pinned here is "at least 40:1".
#[test]
fn table1_transaction_reduction_measured_from_metrics_registry() {
    let spec = DeviceSpec::tesla_c1060();
    let db = workloads::long_tail_db(4, 3500);
    let query = workloads::query(567);

    // Both kernels through the identical driver path: threshold 1 routes
    // every sequence to the intra-task kernel under test.
    let capture_kernel = |intra: IntraKernelChoice| {
        let cfg = CudaSwConfig {
            threshold: 1,
            intra,
            ..CudaSwConfig::improved()
        };
        let ((), run) = obs::capture(|| {
            let mut driver = CudaSwDriver::new(spec.clone(), cfg.clone());
            driver.search(&query, &db).map(|_| ()).unwrap()
        });
        run
    };
    let improved_run = capture_kernel(IntraKernelChoice::Improved(VariantConfig::improved()));
    let original_run = capture_kernel(IntraKernelChoice::Original);

    // Merge the two captured runs; the kernel label keeps them apart.
    let mut merged = improved_run.metrics.clone();
    merged.merge(&original_run.metrics);
    MetricsAssert::new()
        .ratio_ge(
            "cudasw.gpu_sim.launch.global_transactions",
            &[("kernel", "intra_orig")],
            "cudasw.gpu_sim.launch.global_transactions",
            &[("kernel", "intra_improved")],
            40.0,
        )
        // Both kernels computed the identical cell workload — the ratio
        // compares equal work, not different amounts of it.
        .counter_eq(
            "cudasw.gpu_sim.launch.cells",
            &[("kernel", "intra_orig")],
            merged.counter_sum(
                "cudasw.gpu_sim.launch.cells",
                &[("kernel", "intra_improved")],
            ),
            0.0,
        )
        .check(&merged)
        .unwrap();
}

/// Figures 2/3 rest on the threshold controlling the inter/intra workload
/// split. Measured from the registry: the intra-task share of DP cells
/// equals exactly the over-threshold residues x query length, and grows
/// monotonically as the threshold drops.
#[test]
fn workload_split_tracks_threshold_in_the_registry() {
    let lengths: Vec<usize> = vec![
        60, 90, 140, 200, 300, 450, 700, 1000, 1400, 1900, 2500, 3100, 3500,
    ];
    let db = database_with_lengths("split", &lengths, 23);
    let query = make_query(64, 3);
    let mut last_share = -1.0;
    for threshold in [3072usize, 1200, 250] {
        let cfg = CudaSwConfig {
            threshold,
            ..CudaSwConfig::improved()
        };
        let ((), run) = obs::capture(|| {
            let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), cfg);
            driver.search(&query, &db).map(|_| ()).unwrap()
        });
        let m = &run.metrics;
        let intra = m.counter_sum("cudasw.core.phase.cells", &[("phase", "intra")]);
        let inter = m.counter_sum("cudasw.core.phase.cells", &[("phase", "inter")]);
        let long_residues: usize = lengths.iter().filter(|&&l| l >= threshold).sum();
        assert_eq!(
            intra as usize,
            long_residues * query.len(),
            "threshold {threshold}: intra cells must be exactly the long tail"
        );
        assert_eq!(
            (intra + inter) as u64,
            db.total_cells(query.len()),
            "threshold {threshold}: no cells lost between the phases"
        );
        let share = intra / (intra + inter);
        assert!(
            share > last_share,
            "threshold {threshold}: intra share {share:.3} must grow as the threshold drops"
        );
        last_share = share;
    }
}

/// GCUPs accounting is monotone and consistent: counters only grow,
/// repeating the identical search leaves the aggregate rate unchanged,
/// and the registry-derived rate agrees with the `RunStats` view.
#[test]
fn gcups_accounting_is_monotone_and_consistent() {
    let db = database_with_lengths("gcups", &[40, 80, 120, 200, 320, 500], 41);
    let query = make_query(48, 7);
    let cfg = CudaSwConfig {
        threshold: 150,
        ..CudaSwConfig::improved()
    };
    let ((), run) = obs::capture(|| {
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), cfg);
        let first = driver.search(&query, &db).unwrap();
        let after_first = obs::snapshot_metrics();
        let second = driver.search(&query, &db).unwrap();
        let after_second = obs::snapshot_metrics();

        let rate = |m: &obs::MetricsRegistry| {
            m.counter_sum("cudasw.gpu_sim.launch.cells", &[])
                / m.counter_sum("cudasw.gpu_sim.launch.seconds", &[])
        };
        // Monotone: the second search only adds.
        assert!(rate(&after_first) > 0.0);
        assert!(
            after_second.counter_sum("cudasw.gpu_sim.launch.cells", &[])
                >= 2.0 * after_first.counter_sum("cudasw.gpu_sim.launch.cells", &[])
        );
        // Identical work at an identical simulated rate.
        let (r1, r2) = (rate(&after_first), rate(&after_second));
        assert!((r1 - r2).abs() <= 1e-9 * r1, "{r1} vs {r2}");
        // The RunStats view reports the same per-phase rates the
        // registry implies.
        for result in [&first, &second] {
            for (phase, stats) in [("inter", &result.inter), ("intra", &result.intra)] {
                let cells = result_phase(&after_first, phase, "cells");
                let secs = result_phase(&after_first, phase, "seconds");
                assert!(
                    (stats.gcups() - cells / secs / 1.0e9).abs() <= 1e-9 * stats.gcups(),
                    "{phase} gcups"
                );
            }
        }
    });
    drop(run);
}

fn result_phase(m: &obs::MetricsRegistry, phase: &str, what: &str) -> f64 {
    m.counter_sum(&format!("cudasw.core.phase.{what}"), &[("phase", phase)])
}

// --- §VII future-work optimizations, counted ------------------------
//
// "Performance can be further improved by using the shared memory" /
// overlapping transfers with execution. Each DeviceKernelConfig flag
// must move its own counted metric while leaving scores bit-identical
// (the full 32-combination matrix is pinned in tests/device_opt.rs).

/// §VII: boundary staging must cut the inter-task kernel's global
/// transactions at least this factor — the per-strip-crossing H/F
/// round-trips (4 transactions per panel column) collapse to one
/// 17-word edge exchange per panel.
const SECTION7_STAGING_MIN_CUT: f64 = 4.0;
/// §VII: pipeline fusion and H2D streaming must *hide* latency, never
/// drop it — hidden + exposed re-adds to the unfused/unstreamed total
/// within float-summation noise.
const SECTION7_ACCOUNTING_TOL: f64 = 1e-9;
/// SaLoBa (arXiv:2301.09310): LPT residue balancing must cut block-load
/// imbalance (max/min, or its excess over perfectly-even 1.0) at least
/// 3x versus the naive one-block-per-pair / contiguous assignment.
const SECTION7_BALANCE_MIN_CUT: f64 = 3.0;

/// Run a search on `spec` under the observability recorder; returns the
/// scores plus the captured run for counter assertions.
fn device_search(
    spec: DeviceSpec,
    cfg: CudaSwConfig,
    query: &[u8],
    db: &sw_db::Database,
) -> (Vec<i32>, obs::Obs) {
    let (scores, run) = obs::capture(|| {
        let mut driver = CudaSwDriver::new(spec, cfg);
        driver.search(query, db).map(|r| r.scores).unwrap()
    });
    (scores, run)
}

fn inter_counter(run: &obs::Obs, name: &str) -> f64 {
    run.metrics.counter_sum(name, &[("kernel", "inter_task")])
}

/// §VII shared-memory staging: the strip-boundary H/F traffic of the
/// inter-task kernel moves to shared memory; global transactions drop
/// at least [`SECTION7_STAGING_MIN_CUT`], measured from the registry,
/// with scores bit-identical.
#[test]
fn section7_boundary_staging_cuts_global_transactions() {
    let db = database_with_lengths("s7-staging", &[256; 32], 31);
    let query = make_query(64, 11);
    let cfg = |device| CudaSwConfig {
        inter_threads_per_block: 64,
        device,
        ..CudaSwConfig::improved()
    };
    let (base_scores, base) = device_search(
        DeviceSpec::tesla_c2050(),
        cfg(DeviceKernelConfig::default()),
        &query,
        &db,
    );
    let staged_cfg = DeviceKernelConfig {
        boundary_staging: true,
        ..DeviceKernelConfig::default()
    };
    let (staged_scores, staged) =
        device_search(DeviceSpec::tesla_c2050(), cfg(staged_cfg), &query, &db);
    assert_eq!(base_scores, staged_scores);
    let name = "cudasw.gpu_sim.launch.global_transactions";
    let (g_base, g_staged) = (inter_counter(&base, name), inter_counter(&staged, name));
    assert!(
        g_base >= g_staged * SECTION7_STAGING_MIN_CUT,
        "staging cut only {g_base:.0} -> {g_staged:.0}"
    );
    // The traffic moved to shared memory, it did not vanish: the staged
    // run performs shared-memory work where the baseline did global.
    assert!(
        staged
            .metrics
            .counter_sum("cudasw.gpu_sim.launch.shared_bank_conflicts", &[])
            == 0.0,
        "staging layout must stay conflict-free"
    );
}

/// §VII shared-memory-only panels: when every subject of a group fits
/// one panel, the kernel runs with **zero** global intermediates — the
/// only global transactions left are the score stores (exactly one per
/// launch, counted).
#[test]
fn section7_single_panel_groups_store_scores_only() {
    let db = database_with_lengths("s7-shared", &[64; 32], 37);
    let query = make_query(48, 13);
    let cfg = |device| CudaSwConfig {
        inter_threads_per_block: 64,
        device,
        ..CudaSwConfig::improved()
    };
    let (base_scores, base) = device_search(
        DeviceSpec::tesla_c2050(),
        cfg(DeviceKernelConfig::default()),
        &query,
        &db,
    );
    let shared_cfg = DeviceKernelConfig {
        shared_only: true,
        ..DeviceKernelConfig::default()
    };
    let (shared_scores, shared) =
        device_search(DeviceSpec::tesla_c2050(), cfg(shared_cfg), &query, &db);
    assert_eq!(base_scores, shared_scores);
    let name = "cudasw.gpu_sim.launch.global_transactions";
    let launches = inter_counter(&shared, "cudasw.gpu_sim.launch.calls");
    assert_eq!(
        inter_counter(&shared, name),
        launches,
        "shared-only must leave exactly one score-store transaction per launch"
    );
    assert!(
        inter_counter(&base, name) > launches * SECTION7_STAGING_MIN_CUT,
        "baseline global traffic should dwarf the score stores"
    );
}

/// §VII cross-strip pipeline fusion: removed fill/flush stalls are
/// *counted* as hidden latency (never silently dropped) and the fused
/// intra-task kernel finishes faster on the same work.
#[test]
fn section7_fusion_counts_hidden_latency_and_speeds_up() {
    let db = database_with_lengths("s7-fusion", &[3500, 3300, 3200, 3600], 41);
    // Several query strips (strip height = 32 threads x 4 rows = 128), so
    // there are inter-strip fill/flush stalls for fusion to remove.
    let query = make_query(300, 17);
    let cfg = |device| CudaSwConfig {
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        device,
        ..CudaSwConfig::improved()
    };
    let (base_scores, base) = device_search(
        DeviceSpec::tesla_c1060(),
        cfg(DeviceKernelConfig::default()),
        &query,
        &db,
    );
    let fused_cfg = cfg(DeviceKernelConfig {
        pipeline_fusion: true,
        ..DeviceKernelConfig::default()
    });
    let (fused_scores, fused) = device_search(DeviceSpec::tesla_c1060(), fused_cfg, &query, &db);
    assert_eq!(base_scores, fused_scores);
    let hidden = |run: &obs::Obs| {
        run.metrics.counter_sum(
            "cudasw.gpu_sim.launch.hidden_latency_cycles",
            &[("kernel", "intra_improved")],
        )
    };
    assert_eq!(hidden(&base), 0.0, "unfused pipeline hides nothing");
    assert!(hidden(&fused) > 0.0, "fusion must count its removed stalls");
    let secs = |run: &obs::Obs| {
        run.metrics
            .counter_sum("cudasw.core.phase.seconds", &[("phase", "intra")])
    };
    assert!(
        secs(&fused) < secs(&base),
        "fused {:.6}s vs unfused {:.6}s",
        secs(&fused),
        secs(&base)
    );
}

/// §VII streamed H2D: bytes moved are identical, a measurable part of
/// the copy time overlaps kernel execution, and hidden + exposed
/// re-adds to the synchronous total (latency is hidden, not dropped).
#[test]
fn section7_streamed_h2d_overlaps_without_changing_bytes() {
    let db = database_with_lengths("s7-stream", &[90, 120, 150, 180, 240, 300, 400, 3500], 43);
    let query = make_query(64, 19);
    let cfg = |device| CudaSwConfig {
        threshold: 1000,
        device,
        ..CudaSwConfig::improved()
    };
    let (sync_scores, sync_run) = device_search(
        DeviceSpec::tesla_c2050(),
        cfg(DeviceKernelConfig::default()),
        &query,
        &db,
    );
    let stream_cfg = DeviceKernelConfig {
        streamed_h2d: true,
        ..DeviceKernelConfig::default()
    };
    let (stream_scores, stream_run) =
        device_search(DeviceSpec::tesla_c2050(), cfg(stream_cfg), &query, &db);
    assert_eq!(sync_scores, stream_scores);
    let c = |run: &obs::Obs, name: &str| run.metrics.counter_sum(name, &[]);
    assert_eq!(
        c(&sync_run, "cudasw.gpu_sim.h2d.bytes"),
        c(&stream_run, "cudasw.gpu_sim.h2d.bytes"),
        "streaming must not change what is copied"
    );
    let hidden = c(&stream_run, "cudasw.gpu_sim.h2d.hidden_seconds");
    let exposed = c(&stream_run, "cudasw.gpu_sim.h2d.seconds");
    let sync_total = c(&sync_run, "cudasw.gpu_sim.h2d.seconds");
    assert!(hidden > 0.0, "no copy time was hidden");
    assert!(exposed < sync_total);
    assert!(
        (exposed + hidden - sync_total).abs() <= SECTION7_ACCOUNTING_TOL * sync_total,
        "hidden latency must be counted, not dropped: {exposed} + {hidden} != {sync_total}"
    );
}

/// SaLoBa-style intra-task balance: the LPT residue schedule is at
/// least [`SECTION7_BALANCE_MIN_CUT`] closer to even than a contiguous
/// split, and through the driver it shrinks the intra-task makespan on
/// a heavy-tailed group without touching a single score.
#[test]
fn section7_balanced_intra_cuts_block_imbalance() {
    // Schedule-level claim on a balanceable fat-middle mix: LPT's excess
    // imbalance (above perfectly-even 1.0) is at least 3x smaller than a
    // contiguous split's.
    let even_mix: Vec<usize> = std::iter::once(2000)
        .chain((0..15).map(|i| 700 - 10 * i))
        .collect();
    let bins = 4;
    let lpt = residue_balanced_bins(&even_mix, bins);
    let chunk = even_mix.len() / bins;
    let contiguous: Vec<Vec<usize>> = (0..bins)
        .map(|b| (b * chunk..(b + 1) * chunk).collect())
        .collect();
    let (lpt_imb, contig_imb) = (
        bin_imbalance(&even_mix, &lpt),
        bin_imbalance(&even_mix, &contiguous),
    );
    assert!(
        contig_imb - 1.0 >= SECTION7_BALANCE_MIN_CUT * (lpt_imb - 1.0),
        "LPT {lpt_imb:.2}x vs contiguous {contig_imb:.2}x"
    );

    // Driver-level claim on a heavy tail: one giant pair serializes its
    // block under one-block-per-pair; the balanced schedule cuts the
    // measured block-cycle spread of the single intra-task launch at
    // least 3x, scores bit-identical.
    let lengths = vec![
        2000usize, 130, 190, 160, 150, 140, 135, 180, 170, 165, 155, 145, 138, 148, 158, 168,
    ];
    let mut spec = DeviceSpec::tesla_c1060();
    spec.sm_count = 4;
    let db = database_with_lengths("s7-balance", &lengths, 47);
    let query = make_query(96, 23);
    let cfg = |device| CudaSwConfig {
        threshold: 100,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        device,
        ..CudaSwConfig::improved()
    };
    let (base_scores, base) = device_search(
        spec.clone(),
        cfg(DeviceKernelConfig::default()),
        &query,
        &db,
    );
    let bal_cfg = DeviceKernelConfig {
        balanced_intra: true,
        ..DeviceKernelConfig::default()
    };
    let (bal_scores, bal) = device_search(spec, cfg(bal_cfg), &query, &db);
    assert_eq!(base_scores, bal_scores);
    // One intra launch per run, so the summed per-launch extremes are the
    // launch's own max/min block cycles.
    let imbalance = |run: &obs::Obs| {
        let labels = [("kernel", "intra_improved")];
        run.metrics
            .counter_sum("cudasw.gpu_sim.launch.block_cycles_max", &labels)
            / run
                .metrics
                .counter_sum("cudasw.gpu_sim.launch.block_cycles_min", &labels)
    };
    let (base_imb, bal_imb) = (imbalance(&base), imbalance(&bal));
    assert!(
        base_imb > 5.0,
        "heavy tail should skew blocks: {base_imb:.2}x"
    );
    assert!(
        bal_imb * SECTION7_BALANCE_MIN_CUT <= base_imb,
        "balanced {bal_imb:.2}x vs one-block-per-pair {base_imb:.2}x"
    );
}

/// Table II: improvement on every database, smallest on TAIR.
#[test]
fn table2_structure() {
    let r = table2::run();
    for db in PaperDb::all() {
        for dev in ["Tesla C1060", "Tesla C2050"] {
            assert!(r.mean_gain(db.name(), dev) > 0.0, "{} on {dev}", db.name());
        }
    }
    let tair = r.mean_gain(PaperDb::Tair.name(), "Tesla C1060");
    let swiss = r.mean_gain(PaperDb::Swissprot.name(), "Tesla C1060");
    assert!(
        tair <= swiss * 1.5,
        "TAIR gain {tair:.3} vs Swissprot {swiss:.3}"
    );
}
