//! The paper's quantitative claims, checked against this reproduction at
//! paper scale (via the validated analytic models) and at reduced
//! functional scale. EXPERIMENTS.md discusses each band.

use cudasw_bench::experiments::{fig2, fig3, fig5, fig6, predict, table2};
use cudasw_bench::workloads;
use cudasw_core::model::{
    predict_inter_group, predict_intra_improved, predict_intra_orig, PredictedIntra,
};
use cudasw_core::ImprovedParams;
use gpu_sim::{DeviceSpec, TimingModel};
use sw_db::catalog::PaperDb;

/// §II-C: "the inter-task kernel averages approximately 17 GCUPs while the
/// intra-task kernel averages 1.5 GCUPs [...] on the Tesla C1060."
#[test]
fn kernel_level_calibration_bands() {
    let spec = DeviceSpec::tesla_c1060();
    let tm = TimingModel::default();
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);
    let split = lengths.partition_point(|&l| l < 3072);

    let inter = predict_inter_group(&spec, &tm, &lengths[..split], 567, 256);
    assert!(
        (13.0..=25.0).contains(&inter.gcups()),
        "inter-task = {:.1} GCUPs (paper ≈ 17)",
        inter.gcups()
    );

    let long = &lengths[split..];
    let orig = predict_intra_orig(&spec, &tm, long, 567, false);
    assert!(
        (0.8..=4.0).contains(&orig.gcups()),
        "original intra-task = {:.1} GCUPs (paper ≈ 1.5)",
        orig.gcups()
    );

    // §I: "We improve the performance of the intra-task kernel by over 11
    // times" — band: at least 6x in this reproduction.
    let imp = predict_intra_improved(&spec, &tm, long, 567, &ImprovedParams::default(), false);
    let speedup = imp.gcups() / orig.gcups();
    assert!(
        speedup >= 6.0,
        "intra-task speedup {speedup:.1}x (paper > 11x)"
    );
}

/// §II-C: "CUDASW++ achieves a performance of 17 GCUPs on a Tesla C1060.
/// When we increase this threshold to 36,000 [...] the performance drops
/// to 10 GCUPs."
///
/// Partially reproduced (see EXPERIMENTS.md): our scheduler absorbs more
/// of the extreme-straggler barrier than the real driver did, so the
/// all-inter-task configuration lands near the original-kernel default
/// rather than 41% below it. What does hold: the straggler group itself
/// collapses (its GCUPs are far below the device's inter-task rate), and
/// the improved-kernel default strictly beats all-inter-task — i.e. the
/// threshold remains necessary.
#[test]
fn all_inter_task_threshold_costs_performance() {
    let spec = DeviceSpec::tesla_c1060();
    let tm = TimingModel::default();
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);

    // The tail-holding group runs far below the healthy inter-task rate.
    let s = spec.intertask_group_size(256, 30, 0) as usize;
    let tail_start = lengths.len() - (lengths.len() % s).max(s).min(lengths.len());
    let tail_group = predict_inter_group(&spec, &tm, &lengths[tail_start..], 567, 256);
    let healthy = predict_inter_group(&spec, &tm, &lengths[..s], 567, 256);
    assert!(
        tail_group.gcups() < healthy.gcups() * 0.6,
        "straggler group {:.1} GCUPs vs healthy group {:.1}",
        tail_group.gcups(),
        healthy.gcups()
    );

    // And the improved-kernel default threshold beats all-inter-task.
    let improved_default = predict(&spec, &lengths, 567, 3072, PredictedIntra::Improved, false);
    let all_inter = predict(
        &spec,
        &lengths,
        567,
        36_000,
        PredictedIntra::Improved,
        false,
    );
    assert!(
        all_inter.gcups() < improved_default.gcups(),
        "all-inter {:.1} vs improved default {:.1}",
        all_inter.gcups(),
        improved_default.gcups()
    );
}

/// Figure 2: the inter-task kernel collapses to intra-task parity as
/// length variance grows (the paper's curves cross mid-sweep; here the
/// collapse reaches ≈1x at the top of the sweep — EXPERIMENTS.md,
/// "Known divergences").
#[test]
fn figure2_curves_converge() {
    let r = fig2::run(&DeviceSpec::tesla_c1060(), 15_360, &fig2::paper_stds(), 567);
    let ratio_first = r.inter.points.first().unwrap().1 / r.intra.points.first().unwrap().1;
    let ratio_last = r.inter.points.last().unwrap().1 / r.intra.points.last().unwrap().1;
    assert!(ratio_first > 5.0, "low-σ gap {ratio_first:.2}x");
    assert!(ratio_last < 1.1, "σ=4000 ratio {ratio_last:.2}x");
}

/// Figure 3: the original kernel's threshold cliff.
#[test]
fn figure3_threshold_cliff() {
    let r = fig3::run(&DeviceSpec::tesla_c1060(), 572);
    assert!(r.worst < r.at_default * 0.7);
}

/// Figure 5 / §IV-A: the improved kernel always wins, gains grow with the
/// intra-task share, and the C1060 gains exceed the C2050 gains.
#[test]
fn figure5_gain_structure() {
    let r = fig5::run(576, false);
    for (dev, g) in &r.gain_at_default {
        assert!(*g > 0.0, "{dev} gain at default = {g:.1}%");
    }
    let max_c2050 = r.gain_max[0].1;
    let max_c1060 = r.gain_max[1].1;
    assert!(
        max_c1060 > max_c2050,
        "C1060 max gain {max_c1060:.1}% should exceed C2050 {max_c2050:.1}%"
    );
    // Paper: max gains 67.0% (C1060) and 39.3% (C2050). Wide bands.
    assert!((20.0..=200.0).contains(&max_c1060));
    assert!((10.0..=150.0).contains(&max_c2050));
}

/// Figure 6: the original kernel's Fermi advantage is the cache.
#[test]
fn figure6_cache_attribution() {
    let r = fig6::run(576);
    assert!(r.c2050_original_share_delta() > r.c2050_improved_share_delta());
    assert!(
        r.c2050_original_share_delta() > 5.0,
        "cache effect too small"
    );
}

/// Table II: improvement on every database, smallest on TAIR.
#[test]
fn table2_structure() {
    let r = table2::run();
    for db in PaperDb::all() {
        for dev in ["Tesla C1060", "Tesla C2050"] {
            assert!(r.mean_gain(db.name(), dev) > 0.0, "{} on {dev}", db.name());
        }
    }
    let tair = r.mean_gain(PaperDb::Tair.name(), "Tesla C1060");
    let swiss = r.mean_gain(PaperDb::Swissprot.name(), "Tesla C1060");
    assert!(
        tair <= swiss * 1.5,
        "TAIR gain {tair:.3} vs Swissprot {swiss:.3}"
    );
}
