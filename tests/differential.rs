//! Differential tests: the improved and original intra-task kernels
//! against the scalar `sw_align::sw_score` oracle on a seeded random
//! corpus and on the boundary cases (no positive-scoring overlap, gap
//! walls, lengths at and straddling the 3072 kernel threshold).

use cudasw_core::variants::run_intra_variant;
use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, IntraKernelChoice, VariantConfig};
use gpu_sim::DeviceSpec;
use sw_align::{encode_protein, sw_score, SwParams};
use sw_db::synth::{database_with_lengths, make_query};
use sw_db::{Database, Sequence};

fn oracle_scores(query: &[u8], db: &Database) -> Vec<i32> {
    let params = SwParams::cudasw_default();
    db.sequences()
        .iter()
        .map(|s| sw_score(&params, query, &s.residues))
        .collect()
}

/// The improved kernel via the direct variant runner.
fn improved_scores(query: &[u8], db: &Database) -> Vec<i32> {
    let (scores, _) = run_intra_variant(
        &DeviceSpec::tesla_c1060(),
        db.sequences(),
        query,
        ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        VariantConfig::improved(),
    )
    .unwrap();
    scores
}

/// The original kernel via the driver with everything routed intra-task.
fn original_scores(query: &[u8], db: &Database) -> Vec<i32> {
    let mut cfg = CudaSwConfig::original();
    cfg.threshold = 1;
    cfg.intra = IntraKernelChoice::Original;
    let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), cfg);
    driver.search(query, db).unwrap().scores
}

fn assert_all_agree(label: &str, query: &[u8], db: &Database) {
    let expect = oracle_scores(query, db);
    assert_eq!(
        improved_scores(query, db),
        expect,
        "{label}: improved kernel"
    );
    assert_eq!(
        original_scores(query, db),
        expect,
        "{label}: original kernel"
    );
}

#[test]
fn seeded_random_corpus_matches_scalar_oracle() {
    // Lengths chosen around the kernels' internal strip/tile boundaries
    // (multiples of the 32-thread warp, one off either side, primes).
    let lengths = [1, 31, 32, 33, 63, 64, 65, 97, 128, 130, 191, 256, 311, 400];
    for seed in [3u64, 11, 29] {
        let db = database_with_lengths("diff", &lengths, seed);
        for qlen in [1usize, 17, 48, 96] {
            let query = make_query(qlen, seed.wrapping_mul(131) + qlen as u64);
            assert_all_agree(&format!("seed {seed} qlen {qlen}"), &query, &db);
        }
    }
}

#[test]
fn no_positive_overlap_scores_zero_on_every_path() {
    // Glycine vs tryptophan scores negative in BLOSUM62, so a G-only
    // query against W-only subjects has no positive-scoring cell at all:
    // the local alignment is empty and every implementation must say 0.
    let query = encode_protein(&"G".repeat(40)).unwrap();
    let subjects: Vec<Sequence> = [5usize, 33, 64, 120]
        .iter()
        .enumerate()
        .map(|(i, &len)| Sequence::new(format!("w{i}"), encode_protein(&"W".repeat(len)).unwrap()))
        .collect();
    let db = Database::new("allw", sw_align::Alphabet::Protein, subjects);
    let expect = oracle_scores(&query, &db);
    assert!(expect.iter().all(|&s| s == 0), "oracle must find nothing");
    assert_all_agree("empty overlap", &query, &db);
}

#[test]
fn gap_wall_cases_match_oracle() {
    // Two identical blocks separated by a wall the alignment must either
    // gap across or abandon — exercises the E/F gap recurrences hard.
    let block = "ACDEFGHIKLMNPQRS";
    let query = encode_protein(&format!("{block}{block}")).unwrap();
    let walled: Vec<Sequence> = [1usize, 3, 9, 27]
        .iter()
        .enumerate()
        .map(|(i, &gap)| {
            let s = format!("{block}{}{block}", "W".repeat(gap));
            Sequence::new(format!("gap{i}"), encode_protein(&s).unwrap())
        })
        .collect();
    let db = Database::new("gaps", sw_align::Alphabet::Protein, walled);
    assert_all_agree("gap wall", &query, &db);
}

/// Lengths at and straddling the paper's 3072 threshold: the driver routes
/// each side to a different kernel, scores still match the oracle, and
/// the metrics registry shows both kernels actually ran.
#[test]
fn threshold_straddling_lengths_route_and_score_correctly() {
    let lengths = [3070usize, 3071, 3072, 3073, 3080];
    let db = database_with_lengths("straddle", &lengths, 7);
    let query = make_query(24, 9);
    let expect = oracle_scores(&query, &db);

    let (result, run) = obs::capture(|| {
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), CudaSwConfig::improved());
        driver.search(&query, &db).unwrap()
    });
    assert_eq!(result.scores, expect, "default driver vs oracle");

    // partition: len < 3072 is inter-task, len >= 3072 is intra-task.
    let n_long = lengths.iter().filter(|&&l| l >= 3072).count();
    assert_eq!(db.partition(3072).long.len(), n_long);
    let m = &run.metrics;
    assert!(m.counter_sum("cudasw.core.phase.cells", &[("phase", "inter")]) > 0.0);
    assert!(m.counter_sum("cudasw.core.phase.cells", &[("phase", "intra")]) > 0.0);
    // Cell accounting identifies the split exactly: intra cells = long
    // residues x query length.
    let long_residues: usize = lengths.iter().filter(|&&l| l >= 3072).sum();
    assert_eq!(
        m.counter_sum("cudasw.core.phase.cells", &[("phase", "intra")]) as usize,
        long_residues * query.len(),
    );

    // Both dedicated kernels agree on the same mixed-length set too.
    assert_all_agree("straddle", &query, &db);
}
