//! DNA database search — "many different protein, RNA, or DNA databases
//! are routinely used for comparison purposes" (§IV-B). The whole stack is
//! alphabet-generic: a 5-code DNA alphabet with a match/mismatch matrix
//! flows through the profiles, the SIMD baselines and both GPU kernels.

use cudasw_core::{
    CudaSwConfig, CudaSwDriver, DeviceKernelConfig, ImprovedParams, IntraKernelChoice,
    VariantConfig,
};
use gpu_sim::DeviceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sw_align::smith_waterman::{sw_score, SwParams};
use sw_align::{Alphabet, GapPenalties, ScoringMatrix};
use sw_db::{Database, Sequence};
use sw_simd::Swps3Driver;

fn dna_params() -> SwParams {
    SwParams {
        // The classic megablast-style +2/-3 with affine gaps 5/2.
        matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 2, -3),
        gaps: GapPenalties::new(5, 2).unwrap(),
    }
}

fn random_dna(len: usize, rng: &mut StdRng) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0u8..4)).collect()
}

fn dna_db(seed: u64) -> (Database, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = Vec::new();
    for i in 0..25 {
        let len = 40 + (i * 13) % 300;
        seqs.push(Sequence::new(format!("dna{i}"), random_dna(len, &mut rng)));
    }
    // Plant a strong hit: a sequence containing the query.
    let query = random_dna(60, &mut rng);
    let mut planted = random_dna(30, &mut rng);
    planted.extend_from_slice(&query);
    planted.extend(random_dna(30, &mut rng));
    seqs.push(Sequence::new("planted", planted));
    (Database::new("dna-db", Alphabet::Dna, seqs), query)
}

#[test]
fn gpu_driver_searches_dna() {
    let (db, query) = dna_db(11);
    let params = dna_params();
    for intra in [
        IntraKernelChoice::Original,
        IntraKernelChoice::Improved(VariantConfig::improved()),
    ] {
        let cfg = CudaSwConfig {
            params: params.clone(),
            threshold: 150,
            improved: ImprovedParams {
                threads_per_block: 32,
                tile_height: 4,
            },
            inter_threads_per_block: 256,
            intra,
            device: DeviceKernelConfig::default(),
        };
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c2050(), cfg);
        let r = driver.search(&query, &db).expect("DNA search");
        for (i, seq) in db.sequences().iter().enumerate() {
            assert_eq!(
                r.scores[i],
                sw_score(&params, &query, &seq.residues),
                "seq {i} with {intra:?}"
            );
        }
        // The planted perfect hit scores 2 * 60.
        let (best_idx, best_score) = r.top_hits(1)[0];
        assert_eq!(db.sequences()[best_idx].id, "planted");
        assert_eq!(best_score, 120);
    }
}

#[test]
fn simd_baseline_searches_dna() {
    let (db, query) = dna_db(13);
    let params = dna_params();
    let driver = Swps3Driver {
        params: params.clone(),
        threads: 2,
        backend: sw_simd::BackendKind::detect(),
    };
    let r = driver.search(&query, &db);
    for (i, seq) in db.sequences().iter().enumerate() {
        assert_eq!(r.scores[i], sw_score(&params, &query, &seq.residues));
    }
}
