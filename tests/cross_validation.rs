//! Property-based cross-validation across crate boundaries: random
//! workloads through the full stack.

use cudasw_core::variants::run_intra_variant;
use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, VariantConfig};
use gpu_sim::DeviceSpec;
use proptest::prelude::*;
use sw_align::smith_waterman::{sw_score, SwParams};
use sw_align::Alphabet;
use sw_db::{Database, Sequence};
use sw_simd::farrar::sw_striped_score;

fn protein_seq(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, min..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpu_driver_matches_scalar_on_random_databases(
        query in protein_seq(1, 80),
        seqs in proptest::collection::vec(protein_seq(1, 150), 1..12),
        threshold in 1usize..200,
    ) {
        let params = SwParams::cudasw_default();
        let expected: Vec<i32> = {
            let mut db: Vec<&Vec<u8>> = seqs.iter().collect();
            db.sort_by_key(|s| s.len());
            db.iter().map(|s| sw_score(&params, &query, s)).collect()
        };
        let db = Database::new(
            "prop",
            Alphabet::Protein,
            seqs.iter()
                .enumerate()
                .map(|(i, s)| Sequence::new(format!("s{i}"), s.clone()))
                .collect(),
        );
        let cfg = CudaSwConfig {
            threshold,
            improved: ImprovedParams { threads_per_block: 32, tile_height: 4 },
            ..CudaSwConfig::improved()
        };
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), cfg);
        let r = driver.search(&query, &db).expect("search");
        prop_assert_eq!(r.scores, expected);
    }

    #[test]
    fn improved_kernel_matches_striped_simd(
        query in protein_seq(1, 120),
        target in protein_seq(1, 200),
    ) {
        let params = SwParams::cudasw_default();
        let simd = sw_striped_score(&params, &query, &target);
        let db = Database::new(
            "pair",
            Alphabet::Protein,
            vec![Sequence::new("t", target.clone())],
        );
        let (scores, _) = run_intra_variant(
            &DeviceSpec::tesla_c2050(),
            db.sequences(),
            &query,
            ImprovedParams { threads_per_block: 32, tile_height: 4 },
            VariantConfig::improved(),
        )
        .expect("kernel run");
        prop_assert_eq!(scores[0], simd);
    }

    #[test]
    fn tile_shapes_are_score_invariant(
        query in protein_seq(30, 200),
        target in protein_seq(30, 200),
        n_th in prop_oneof![Just(32u32), Just(64), Just(96)],
        th in prop_oneof![Just(4usize), Just(8)],
    ) {
        let params = SwParams::cudasw_default();
        let expected = sw_score(&params, &query, &target);
        let db = Database::new(
            "pair",
            Alphabet::Protein,
            vec![Sequence::new("t", target.clone())],
        );
        let (scores, _) = run_intra_variant(
            &DeviceSpec::tesla_c1060(),
            db.sequences(),
            &query,
            ImprovedParams { threads_per_block: n_th, tile_height: th },
            VariantConfig::improved(),
        )
        .expect("kernel run");
        prop_assert_eq!(scores[0], expected, "n_th={} th={}", n_th, th);
    }
}
