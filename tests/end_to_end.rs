//! End-to-end integration: every alignment path in the workspace — scalar
//! reference, CPU SIMD baselines, and both simulated GPU kernels through
//! the full CUDASW++ driver — must agree on optimal scores.

use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, IntraKernelChoice, VariantConfig};
use gpu_sim::DeviceSpec;
use sw_align::smith_waterman::{sw_score, SwParams};
use sw_db::stats::LogNormalParams;
use sw_db::synth::make_query;
use sw_db::SynthConfig;
use sw_simd::Swps3Driver;

fn test_db(seqs: usize, seed: u64) -> sw_db::Database {
    SynthConfig::new(
        "e2e",
        seqs,
        LogNormalParams::from_mean_std(120.0, 90.0),
        seed,
    )
    .generate()
}

#[test]
fn all_paths_agree_on_scores() {
    let db = test_db(60, 1);
    let query = make_query(96, 2);
    let params = SwParams::cudasw_default();

    // Scalar reference.
    let expected: Vec<i32> = db
        .sequences()
        .iter()
        .map(|s| sw_score(&params, &query, &s.residues))
        .collect();

    // CPU SIMD (SWPS3 role).
    let simd = Swps3Driver::new(4).search(&query, &db);
    assert_eq!(simd.scores, expected, "striped SIMD diverged");

    // GPU driver, both kernels, both devices. A low threshold forces a
    // meaningful share of sequences through the intra-task kernels.
    for spec in [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_c2050()] {
        for intra in [
            IntraKernelChoice::Original,
            IntraKernelChoice::Improved(VariantConfig::improved()),
        ] {
            let cfg = CudaSwConfig {
                threshold: 150,
                improved: ImprovedParams {
                    threads_per_block: 64,
                    tile_height: 4,
                },
                intra,
                ..CudaSwConfig::improved()
            };
            let name = spec.name.clone();
            let mut driver = CudaSwDriver::new(spec.clone(), cfg);
            let r = driver.search(&query, &db).expect("search");
            assert_eq!(r.scores, expected, "{name} with {intra:?} diverged");
            assert!(r.intra.launches > 0, "threshold did not engage intra-task");
        }
    }
}

#[test]
fn caches_off_device_still_computes_correctly() {
    let db = test_db(30, 3);
    let query = make_query(64, 4);
    let params = SwParams::cudasw_default();
    let mut driver = CudaSwDriver::new(
        DeviceSpec::tesla_c2050_caches_off(),
        CudaSwConfig {
            threshold: 120,
            ..CudaSwConfig::improved()
        },
    );
    let r = driver.search(&query, &db).expect("search");
    for (i, seq) in db.sequences().iter().enumerate() {
        assert_eq!(r.scores[i], sw_score(&params, &query, &seq.residues));
    }
}

#[test]
fn repeated_searches_on_one_driver_are_stable() {
    // The driver frees and re-stages device memory per search; results and
    // simulated timings must not drift across reuse.
    let db = test_db(25, 5);
    let query = make_query(48, 6);
    let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), CudaSwConfig::improved());
    let first = driver.search(&query, &db).expect("first");
    for _ in 0..3 {
        let again = driver.search(&query, &db).expect("repeat");
        assert_eq!(again.scores, first.scores);
        assert!((again.kernel_seconds() - first.kernel_seconds()).abs() < 1e-12);
    }
}

#[test]
fn different_queries_share_the_database() {
    let db = test_db(40, 7);
    let params = SwParams::cudasw_default();
    let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c2050(), CudaSwConfig::improved());
    for qlen in [16usize, 33, 120] {
        let query = make_query(qlen, qlen as u64);
        let r = driver.search(&query, &db).expect("search");
        for (i, seq) in db.sequences().iter().enumerate() {
            assert_eq!(
                r.scores[i],
                sw_score(&params, &query, &seq.residues),
                "qlen={qlen} seq={i}"
            );
        }
    }
}

#[test]
fn improved_kernel_never_slower_at_application_level() {
    // The paper's core claim, end to end, on a tail-heavy workload.
    let db = SynthConfig::new(
        "tail-heavy",
        50,
        LogNormalParams::from_mean_std(250.0, 400.0),
        9,
    )
    .generate();
    let query = make_query(128, 10);
    let threshold = 400;
    let mut orig = CudaSwDriver::new(
        DeviceSpec::tesla_c1060(),
        CudaSwConfig {
            threshold,
            ..CudaSwConfig::original()
        },
    );
    let mut imp = CudaSwDriver::new(
        DeviceSpec::tesla_c1060(),
        CudaSwConfig {
            threshold,
            ..CudaSwConfig::improved()
        },
    );
    let r_orig = orig.search(&query, &db).expect("orig");
    let r_imp = imp.search(&query, &db).expect("imp");
    assert_eq!(r_orig.scores, r_imp.scores);
    assert!(r_imp.kernel_seconds() <= r_orig.kernel_seconds());
}
