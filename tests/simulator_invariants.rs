//! Cross-cutting invariants of the simulated device + kernels: properties
//! that must hold for *any* calibration of the timing model, so they stay
//! true if the constants are ever re-tuned.

use cudasw_core::variants::run_intra_variant;
use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, VariantConfig};
use gpu_sim::DeviceSpec;
use sw_db::synth::{database_with_lengths, make_query};

/// Improved-kernel global transactions grow (about) linearly with the
/// database side of the DP table — the boundary rows are the only global
/// traffic, and there are `2·(strips−1)` boundary words per column.
#[test]
fn improved_kernel_traffic_scales_with_columns() {
    let spec = DeviceSpec::tesla_c1060();
    let query = make_query(2048, 1); // two strips at the default shape
    let params = ImprovedParams::default();
    let short = database_with_lengths("s", &[2000], 3);
    let long = database_with_lengths("l", &[4000], 3);
    let (_, t_short) = run_intra_variant(
        &spec,
        short.sequences(),
        &query,
        params,
        VariantConfig::improved(),
    )
    .unwrap();
    let (_, t_long) = run_intra_variant(
        &spec,
        long.sequences(),
        &query,
        params,
        VariantConfig::improved(),
    )
    .unwrap();
    let ratio = t_long.global_transactions() as f64 / t_short.global_transactions() as f64;
    assert!(
        (1.7..=2.3).contains(&ratio),
        "2x columns should be ~2x boundary traffic, got {ratio:.2}"
    );
}

/// Disabling the Fermi caches can slow a search down but never speed it up.
#[test]
fn caches_off_is_never_faster() {
    let db = database_with_lengths("c", &[100, 200, 400, 800, 1600], 5);
    let query = make_query(160, 2);
    let run = |spec: DeviceSpec| {
        let mut cfg = CudaSwConfig::original();
        cfg.threshold = 300;
        let mut driver = CudaSwDriver::new(spec, cfg);
        driver.search(&query, &db).unwrap()
    };
    let on = run(DeviceSpec::tesla_c2050());
    let off = run(DeviceSpec::tesla_c2050_caches_off());
    assert_eq!(on.scores, off.scores);
    assert!(
        off.kernel_seconds() >= on.kernel_seconds() * 0.999,
        "caches off ({:.6}s) must not beat caches on ({:.6}s)",
        off.kernel_seconds(),
        on.kernel_seconds()
    );
}

/// Lowering the threshold moves sequences (and cells) monotonically from
/// the inter-task to the intra-task side.
#[test]
fn threshold_monotonically_shifts_work() {
    let lengths: Vec<usize> = (1..=40).map(|i| i * 25).collect();
    let db = database_with_lengths("t", &lengths, 7);
    let query = make_query(64, 3);
    let mut prev_intra_cells = 0u64;
    for threshold in [1000usize, 700, 400, 150] {
        let mut cfg = CudaSwConfig::improved();
        cfg.threshold = threshold;
        cfg.improved = ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        };
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), cfg);
        let r = driver.search(&query, &db).unwrap();
        assert!(
            r.intra.cells >= prev_intra_cells,
            "intra cells must grow as the threshold drops"
        );
        assert_eq!(r.intra.cells + r.inter.cells, db.total_cells(64));
        prev_intra_cells = r.intra.cells;
    }
}

/// The simulator is fully deterministic: identical inputs give identical
/// counters, not just identical scores.
#[test]
fn memory_counters_are_deterministic() {
    let db = database_with_lengths("d", &[64, 128, 256], 9);
    let query = make_query(80, 4);
    let run = || {
        let mut cfg = CudaSwConfig::improved();
        cfg.threshold = 200;
        cfg.improved = ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        };
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c2050(), cfg);
        let r = driver.search(&query, &db).unwrap();
        (
            r.scores.clone(),
            r.inter.global_transactions,
            r.intra.global_transactions,
            driver.dev.memory_stats(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3, "cache/memory counters must be bit-identical");
}

/// Cell accounting is exact: every kernel path reports exactly m×n cells.
#[test]
fn cell_accounting_is_exact_for_all_kernels() {
    let db = database_with_lengths("cells", &[33, 77, 131, 650], 11);
    let query = make_query(97, 5); // awkward sizes exercise all tails
    for cfg in [CudaSwConfig::original(), CudaSwConfig::improved()] {
        let mut cfg = cfg;
        cfg.threshold = 100;
        cfg.improved = ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        };
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), cfg);
        let r = driver.search(&query, &db).unwrap();
        assert_eq!(r.total_cells(), db.total_cells(97));
    }
}

/// A bigger tile height must not change any score (only the schedule).
#[test]
fn tile_height_is_functionally_invisible_through_the_driver() {
    let db = database_with_lengths("tiles", &[500, 900], 13);
    let query = make_query(333, 6);
    let mut results = Vec::new();
    for tile_height in [4usize, 8] {
        let mut cfg = CudaSwConfig::improved();
        cfg.threshold = 1;
        cfg.improved = ImprovedParams {
            threads_per_block: 64,
            tile_height,
        };
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c2050(), cfg);
        results.push(driver.search(&query, &db).unwrap().scores);
    }
    assert_eq!(results[0], results[1]);
}
