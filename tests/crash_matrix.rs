//! Crash matrix — kill the checkpointed search at every point and resume.
//!
//! The contract under attack (DESIGN.md §10): wherever the process dies —
//! mid-chunk on any kernel launch, mid-checkpoint-write (a torn or
//! bit-flipped log tail), or between shards of a multi-GPU search — a
//! restart over the same checkpoint directory finishes the search and the
//! final `SearchResult` equals the uninterrupted run **exactly**, floats
//! compared bit-for-bit. Separately: silent transfer corruption never
//! reaches the result — each injected event is detected, quarantined and
//! recomputed on the host oracle.

use cudasw_core::{
    multi_gpu_search, multi_gpu_search_resilient_checkpointed, CheckpointPolicy, CudaSwConfig,
    CudaSwDriver, ImprovedParams, IntraKernelChoice, RecoveryPolicy, VariantConfig,
};
use gpu_sim::{DeviceSpec, FaultPlan, FaultSite, GpuError};
use sw_align::smith_waterman::sw_score;
use sw_db::synth::{database_with_lengths, make_query};
use sw_db::Database;

/// A deliberately tiny device so the test database needs several inter
/// and intra launches — i.e. several distinct kill points.
fn small_spec() -> DeviceSpec {
    let mut spec = DeviceSpec::tesla_c1060();
    spec.sm_count = 1;
    spec.max_threads_per_sm = 64;
    spec.max_blocks_per_sm = 2;
    spec
}

fn config() -> CudaSwConfig {
    CudaSwConfig {
        threshold: 100,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        intra: IntraKernelChoice::Improved(VariantConfig::improved()),
        inter_threads_per_block: 32,
        ..CudaSwConfig::improved()
    }
}

/// Short sequences for several inter chunks plus a long tail that crosses
/// the threshold, so the matrix covers both phases' kill points.
fn matrix_db() -> Database {
    let mut lengths = vec![30usize; 150];
    lengths.extend([200usize; 6]);
    database_with_lengths("crash-matrix", &lengths, 79)
}

fn no_fallback() -> RecoveryPolicy {
    RecoveryPolicy {
        cpu_fallback: false,
        ..RecoveryPolicy::default()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("csw-crash-matrix-{tag}-{}", std::process::id()))
}

fn counter_sum(run: &obs::Obs, name: &str) -> f64 {
    run.metrics.counter_sum(name, &[])
}

/// Kill points: every kernel launch of the search, inter and intra. Each
/// crash leaves a checkpoint log behind; the restart must reproduce the
/// uninterrupted result down to the last float bit.
#[test]
fn every_launch_kill_point_resumes_bit_identically() {
    let spec = small_spec();
    let cfg = config();
    let db = matrix_db();
    let query = make_query(24, 41);
    let dir = temp_dir("launch");
    let policy = no_fallback();

    let (baseline, base_run) = obs::capture(|| {
        let mut d = CudaSwDriver::new(spec.clone(), cfg.clone());
        d.search_resilient_checkpointed(
            &query,
            &db,
            &policy,
            &CheckpointPolicy::at(dir.join("baseline.ckpt")),
        )
        .unwrap()
    });
    let launches = counter_sum(&base_run, "cudasw.gpu_sim.launch.calls") as u64;
    assert!(
        launches >= 4,
        "want several kill points, got {launches} launches"
    );

    for kill in 0..launches {
        let ckpt = CheckpointPolicy::at(dir.join(format!("kill-{kill}.ckpt")));
        let (crashed, _) = obs::capture(|| {
            let mut d = CudaSwDriver::new(spec.clone(), cfg.clone());
            d.dev
                .inject_faults(FaultPlan::none().with_device_loss(FaultSite::Launch, kill));
            d.search_resilient_checkpointed(&query, &db, &policy, &ckpt)
        });
        assert!(
            matches!(crashed, Err(GpuError::DeviceLost)),
            "kill point {kill} did not crash"
        );

        let (resumed, _) = obs::capture(|| {
            let mut d = CudaSwDriver::new(spec.clone(), cfg.clone());
            d.search_resilient_checkpointed(&query, &db, &policy, &ckpt)
                .unwrap()
        });
        assert_eq!(
            resumed.result, baseline.result,
            "kill point {kill}: resumed result diverged"
        );
        assert_eq!(
            resumed.result.transfer_seconds.to_bits(),
            baseline.result.transfer_seconds.to_bits(),
            "kill point {kill}: transfer seconds not bit-identical"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill point: mid-checkpoint-write. A crash during the log append leaves
/// a torn tail (truncation) or a damaged one (bit flip); the loader must
/// keep the intact prefix, flag the damage, and the restart must still
/// finish bit-identically.
#[test]
fn torn_or_corrupt_checkpoint_tail_resumes_from_the_intact_prefix() {
    let spec = small_spec();
    let cfg = config();
    let db = matrix_db();
    let query = make_query(24, 41);
    let dir = temp_dir("torn");
    let policy = no_fallback();

    let (baseline, _) = obs::capture(|| {
        let mut d = CudaSwDriver::new(spec.clone(), cfg.clone());
        d.search_resilient_checkpointed(
            &query,
            &db,
            &policy,
            &CheckpointPolicy::at(dir.join("baseline.ckpt")),
        )
        .unwrap()
    });

    for (tag, damage) in [
        (
            "torn",
            (|bytes: &mut Vec<u8>| {
                let keep = bytes.len() - 7;
                bytes.truncate(keep);
            }) as fn(&mut Vec<u8>),
        ),
        ("flipped", |bytes: &mut Vec<u8>| {
            let last = bytes.len() - 3;
            bytes[last] ^= 0x10;
        }),
    ] {
        let path = dir.join(format!("{tag}.ckpt"));
        let ckpt = CheckpointPolicy::at(&path);
        let (crashed, _) = obs::capture(|| {
            let mut d = CudaSwDriver::new(spec.clone(), cfg.clone());
            d.dev
                .inject_faults(FaultPlan::none().with_device_loss(FaultSite::Launch, 3));
            d.search_resilient_checkpointed(&query, &db, &policy, &ckpt)
        });
        assert!(matches!(crashed, Err(GpuError::DeviceLost)));

        // Simulate the crash landing *inside* the append instead of
        // between appends.
        let mut bytes = std::fs::read(&path).expect("log written before crash");
        damage(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();

        let (resumed, run) = obs::capture(|| {
            let mut d = CudaSwDriver::new(spec.clone(), cfg.clone());
            d.search_resilient_checkpointed(&query, &db, &policy, &ckpt)
                .unwrap()
        });
        assert_eq!(
            resumed.result, baseline.result,
            "{tag} tail: resumed result diverged"
        );
        assert!(
            counter_sum(&run, "cudasw.core.checkpoint.load_issues") >= 1.0,
            "{tag} tail: damage was not reported"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill point: between shards of a multi-GPU search. The first run loses a
/// whole device mid-shard (its work is re-dispatched); a second run over
/// the same checkpoint directory replays every shard's completed chunks
/// and still merges to the clean scores.
#[test]
fn multi_gpu_restart_replays_per_shard_logs() {
    let spec = small_spec();
    let cfg = config();
    let db = matrix_db();
    let query = make_query(24, 41);
    let dir = temp_dir("shards");
    std::fs::create_dir_all(&dir).unwrap();

    let clean = multi_gpu_search(&spec, &cfg, &query, &db, 2).unwrap();
    let plans = vec![
        FaultPlan::none().with_device_loss(FaultSite::Launch, 0),
        FaultPlan::none(),
    ];
    let policy = RecoveryPolicy::default();

    let (first, _) = obs::capture(|| {
        multi_gpu_search_resilient_checkpointed(
            &spec,
            &cfg,
            &query,
            &db,
            2,
            &plans,
            &policy,
            Some(&dir),
        )
        .unwrap()
    });
    assert_eq!(first.scores, clean.scores);
    assert!(first.recovery.shard_redispatches >= 1);

    let (second, run) = obs::capture(|| {
        multi_gpu_search_resilient_checkpointed(
            &spec,
            &cfg,
            &query,
            &db,
            2,
            &plans,
            &policy,
            Some(&dir),
        )
        .unwrap()
    });
    assert_eq!(second.scores, clean.scores);
    assert!(
        counter_sum(&run, "cudasw.core.checkpoint.replayed_chunks") >= 1.0,
        "restart did not replay any shard chunks"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Silent transfer corruption: every injected event is detected and
/// quarantined — the quarantine count equals the number of injected
/// faults — and the final scores equal the host oracle everywhere.
#[test]
fn every_corruption_event_is_quarantined_and_scores_match_the_oracle() {
    let spec = small_spec();
    let cfg = config();
    let db = matrix_db();
    let query = make_query(24, 41);

    let oracle: Vec<i32> = db
        .sequences()
        .iter()
        .map(|s| sw_score(&cfg.params, &query, &s.residues))
        .collect();

    // Two independent corruption events on score readbacks.
    let plan = FaultPlan::none()
        .with_silent_corruption(FaultSite::DeviceToHost, 0)
        .with_silent_corruption(FaultSite::DeviceToHost, 2);
    let (r, run) = obs::capture(|| {
        let mut d = CudaSwDriver::new(spec.clone(), cfg.clone());
        d.dev.inject_faults(plan);
        d.search_resilient(&query, &db, &RecoveryPolicy::default())
            .unwrap()
    });

    assert_eq!(r.result.scores, oracle, "corruption leaked into scores");
    assert_eq!(r.recovery.quarantined_chunks, 2, "one quarantine per event");
    assert_eq!(
        counter_sum(&run, "cudasw.core.integrity.quarantined") as u64,
        2
    );
    assert!(counter_sum(&run, "cudasw.core.integrity.detected") >= 2.0);
    assert!(r.recovery.degraded);
}
