//! Differential matrix for the §VII device-kernel optimizations.
//!
//! Every [`DeviceKernelConfig`] combination must compute **bit-identical**
//! scores: the flags move traffic between memory spaces and overlap
//! copies with compute, but the DP arithmetic — and therefore every score
//! and every overflow/degradation verdict — is untouched. This suite pins
//! that across the full 32-combination matrix, with and without injected
//! faults, and pins the exact H2D call/byte accounting of the streamed
//! staged path.

use cudasw_core::{
    CudaSwConfig, CudaSwDriver, DeviceKernelConfig, ImprovedParams, IntraKernelChoice,
    RecoveryPolicy, VariantConfig,
};
use gpu_sim::{DeviceSpec, FaultPlan, FaultSite};
use sw_align::{sw_score, SwParams};
use sw_db::synth::{database_with_lengths, make_query};
use sw_db::Database;

/// Threshold 100 so the mixed database exercises both kernels; short
/// subjects span several 64-column panels, long ones several strips.
fn config(device: DeviceKernelConfig) -> CudaSwConfig {
    CudaSwConfig {
        threshold: 100,
        inter_threads_per_block: 32,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        intra: IntraKernelChoice::Improved(VariantConfig::improved()),
        device,
        ..CudaSwConfig::improved()
    }
}

fn mixed_db() -> Database {
    database_with_lengths(
        "devopt",
        &[5, 17, 33, 64, 80, 96, 99, 150, 200, 400, 700],
        83,
    )
}

#[test]
fn all_32_combinations_score_bit_identically() {
    let db = mixed_db();
    let query = make_query(50, 19);
    let params = SwParams::cudasw_default();
    let oracle: Vec<i32> = db
        .sequences()
        .iter()
        .map(|s| sw_score(&params, &query, &s.residues))
        .collect();
    for dc in DeviceKernelConfig::all_combinations() {
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c2050(), config(dc));
        let r = driver.search(&query, &db).unwrap();
        assert_eq!(r.scores, oracle, "config {}", dc.label());
        assert_eq!(
            r.total_cells(),
            db.total_cells(query.len()),
            "config {}: optimization must not change the DP work",
            dc.label()
        );
    }
}

#[test]
fn staged_path_matches_unstaged_for_every_combination() {
    let db = mixed_db();
    let queries = [make_query(50, 19), make_query(37, 23)];
    for dc in DeviceKernelConfig::all_combinations() {
        let mut plain = CudaSwDriver::new(DeviceSpec::tesla_c2050(), config(dc));
        let mut staged_drv = CudaSwDriver::new(DeviceSpec::tesla_c2050(), config(dc));
        let staged = staged_drv.stage_database(&db).unwrap();
        for query in &queries {
            let a = plain.search(query, &db).unwrap();
            let b = staged_drv.search_staged(query, &staged).unwrap();
            assert_eq!(a.scores, b.scores, "config {}", dc.label());
        }
    }
}

/// Fault plans × the full flag matrix: scores stay equal to the fault-free
/// oracle and the degradation verdict (did any score come from a non-device
/// path?) is a property of the *plan*, never of the optimization flags.
#[test]
fn fault_matrix_is_invariant_across_the_flag_matrix() {
    let db = mixed_db();
    let query = make_query(50, 19);
    let params = SwParams::cudasw_default();
    let oracle: Vec<i32> = db
        .sequences()
        .iter()
        .map(|s| sw_score(&params, &query, &s.residues))
        .collect();
    let plans: Vec<(&str, FaultPlan)> = vec![
        (
            "transient-launch",
            FaultPlan::none().with_transient(FaultSite::Launch, 1),
        ),
        (
            "transient-h2d",
            FaultPlan::none().with_transient(FaultSite::HostToDevice, 2),
        ),
        ("oom-rechunk", FaultPlan::none().with_oom(3)),
        (
            "device-loss-fallback",
            FaultPlan::none().with_device_loss(FaultSite::Launch, 1),
        ),
    ];
    for (tag, plan) in &plans {
        let mut verdicts = Vec::new();
        for dc in DeviceKernelConfig::all_combinations() {
            let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c2050(), config(dc));
            driver.dev.inject_faults(plan.clone());
            let r = driver
                .search_resilient(&query, &db, &RecoveryPolicy::default())
                .unwrap();
            assert_eq!(r.result.scores, oracle, "plan {tag}, config {}", dc.label());
            verdicts.push(r.recovery.degraded);
        }
        assert!(
            verdicts.iter().all(|&v| v == verdicts[0]),
            "plan {tag}: degradation verdict varied across flag combinations: {verdicts:?}"
        );
    }
}

/// The streamed staged path: the database uploads exactly once, every
/// query still costs exactly two H2D calls (profile + packed residues),
/// bytes moved are identical to the synchronous path, and a measurable
/// part of the copy time is hidden behind kernel execution.
#[test]
fn streamed_staging_uploads_once_and_hides_copy_time() {
    let db = mixed_db();
    let queries = [make_query(50, 19), make_query(37, 23), make_query(64, 29)];

    let run = |device: DeviceKernelConfig| {
        obs::capture(|| {
            let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c2050(), config(device));
            let staged = driver.stage_database(&db).unwrap();
            let mut out = Vec::new();
            for q in &queries {
                out.push(driver.search_staged(q, &staged).unwrap());
            }
            let xfer = driver.dev.transfer_stats();
            (out, xfer)
        })
    };

    let ((sync_results, sync_xfer), sync_run) = run(DeviceKernelConfig::default());
    let ((str_results, str_xfer), str_run) = run(DeviceKernelConfig {
        streamed_h2d: true,
        ..DeviceKernelConfig::default()
    });

    for (a, b) in sync_results.iter().zip(&str_results) {
        assert_eq!(a.scores, b.scores);
    }
    // Same bytes, same call count: streaming changes *when*, not *what*.
    assert_eq!(sync_xfer.h2d_bytes, str_xfer.h2d_bytes);
    let sync_calls = sync_run
        .metrics
        .counter_sum("cudasw.gpu_sim.h2d.calls", &[]);
    let str_calls = str_run.metrics.counter_sum("cudasw.gpu_sim.h2d.calls", &[]);
    assert_eq!(
        sync_calls, str_calls,
        "streaming must not add or drop copies"
    );
    // Two per-query H2D calls on top of the one-time staging uploads.
    let staging_calls = sync_calls as usize - 2 * queries.len();
    assert!(staging_calls > 0);
    // The streamed session hid real copy time; exposed + hidden re-adds
    // to the synchronous totals (same latency+bytes model underneath).
    assert!(str_xfer.h2d_streamed > 0);
    assert!(str_xfer.h2d_hidden_seconds > 0.0);
    assert!(
        str_xfer.h2d_seconds < sync_xfer.h2d_seconds,
        "exposed H2D time must shrink: {} vs {}",
        str_xfer.h2d_seconds,
        sync_xfer.h2d_seconds
    );
    assert!(
        (str_xfer.h2d_seconds + str_xfer.h2d_hidden_seconds - sync_xfer.h2d_seconds).abs() < 1e-12,
        "hidden + exposed must equal the synchronous total"
    );
    let hidden_metric = str_run
        .metrics
        .counter_sum("cudasw.gpu_sim.h2d.hidden_seconds", &[]);
    assert!((hidden_metric - str_xfer.h2d_hidden_seconds).abs() < 1e-12);
}
