//! End-to-end observability tests: a captured driver search must produce
//! a well-formed Chrome `trace_event` export with the nested
//! search → phase → kernel/transfer span structure (the `repro trace`
//! output format), a loadable Prometheus snapshot, and a metrics registry
//! whose phase accounting agrees with the `RunStats` view the driver
//! returns.

use cudasw_core::intra_improved::{ImprovedParams, VariantConfig};
use cudasw_core::{CudaSwConfig, CudaSwDriver, IntraKernelChoice, SearchResult};
use gpu_sim::DeviceSpec;
use obs::{chrome, json, prom, MetricsAssert, TraceAssert};
use sw_db::synth::{database_with_lengths, make_query};
use sw_db::Database;

/// A database whose lengths straddle the (reduced) threshold so one
/// search exercises both kernels.
fn mixed_db() -> Database {
    database_with_lengths("obs", &[24, 40, 64, 80, 96, 120, 160, 220, 300, 420], 17)
}

fn config() -> CudaSwConfig {
    CudaSwConfig {
        threshold: 100,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        intra: IntraKernelChoice::Improved(VariantConfig::improved()),
        ..CudaSwConfig::improved()
    }
}

fn captured_search() -> (SearchResult, obs::Obs) {
    let db = mixed_db();
    let query = make_query(48, 5);
    obs::capture(move || {
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), config());
        driver.search(&query, &db).unwrap()
    })
}

#[test]
fn search_trace_has_nested_phase_kernel_and_transfer_spans() {
    let (_, run) = captured_search();
    TraceAssert::new()
        .has_span("search", 1)
        .has_span("stage_query", 1)
        .has_span("inter_task", 1)
        .has_span("intra_task", 1)
        .span_within("stage_query", "search")
        .span_within("inter_task", "search")
        .span_within("intra_task", "search")
        // Kernel spans nest inside their phase spans...
        .span_within("intra_improved", "intra_task")
        // ...and transfer spans inside the search.
        .span_within("h2d", "search")
        .span_within("d2h", "search")
        .all_closed()
        .check(&run.trace)
        .unwrap();
    // The inter-task kernel span exists and sits under its phase. (The
    // kernel span and the phase span share the name "inter_task"; check
    // by category to avoid the self-containment degenerate case.)
    let kernel_spans: Vec<_> = run.trace.spans_in_cat("kernel").collect();
    assert!(!kernel_spans.is_empty());
    let phase_names = ["inter_task", "intra_task"];
    for k in &kernel_spans {
        let parent = run
            .trace
            .spans
            .iter()
            .find(|s| Some(s.id) == k.parent)
            .expect("kernel span has a recorded parent");
        assert!(
            phase_names.contains(&parent.name.as_str()),
            "kernel span {:?} nests under {:?}, expected a phase span",
            k.name,
            parent.name
        );
    }
}

/// Acceptance criterion: the Chrome-trace JSON export (what
/// `repro trace --out` writes) is schema-valid and structurally nested.
#[test]
fn chrome_trace_export_is_schema_valid() {
    let (_, run) = captured_search();
    let text = chrome::to_chrome_json(&run.trace, run.clock);
    let n = chrome::validate_chrome_trace(&text).expect("schema-valid trace");
    // Metadata (thread names) + every span + every instant.
    assert_eq!(
        n,
        1 + run.trace.spans.len() + run.trace.instants.len(),
        "every recorded event must be exported"
    );

    // Independent structural pass over the parsed JSON: the "X" events
    // must include the search phase enclosing kernel and transfer events
    // on the timeline (ts within [search.ts, search.ts + search.dur]).
    let doc = json::parse(&text).unwrap();
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    let field = |ev: &json::Json, k: &str| ev.get(k).and_then(|v| v.as_f64()).unwrap();
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .collect();
    let search = complete
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("search"))
        .expect("search span exported");
    let (s0, s1) = (
        field(search, "ts"),
        field(search, "ts") + field(search, "dur"),
    );
    let enclosed = |name: &str| {
        complete
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
            .all(|e| field(e, "ts") >= s0 && field(e, "ts") + field(e, "dur") <= s1)
    };
    for name in ["inter_task", "intra_task", "intra_improved", "h2d", "d2h"] {
        assert!(
            enclosed(name),
            "{name} events must lie within the search span"
        );
    }
}

#[test]
fn prometheus_snapshot_renders_the_search_counters() {
    let (_, run) = captured_search();
    let text = prom::to_prometheus_text(&run.metrics);
    for needle in [
        "# TYPE cudasw_core_phase_cells counter",
        "cudasw_core_phase_cells{phase=\"inter\"}",
        "cudasw_core_phase_cells{phase=\"intra\"}",
        "cudasw_gpu_sim_launch_calls",
        "# TYPE cudasw_gpu_sim_launch_duration_seconds histogram",
        "cudasw_gpu_sim_launch_duration_seconds_bucket",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

/// Phase accounting must not lose work: the per-phase cell counters sum
/// to the simulator's total, and the `RunStats` view the driver returns
/// is exactly the registry's per-phase slice.
#[test]
fn registry_phase_accounting_matches_run_stats_view() {
    let (result, run) = captured_search();
    MetricsAssert::new()
        .parts_sum_to(
            &[
                ("cudasw.core.phase.cells", &[("phase", "inter")]),
                ("cudasw.core.phase.cells", &[("phase", "intra")]),
            ],
            "cudasw.gpu_sim.launch.cells",
            &[],
            0.0,
        )
        .counter_eq(
            "cudasw.core.phase.launches",
            &[],
            (result.inter.launches + result.intra.launches) as f64,
            0.0,
        )
        .check(&run.metrics)
        .unwrap();
    let m = &run.metrics;
    for (phase, stats) in [("inter", &result.inter), ("intra", &result.intra)] {
        let labels = [("phase", phase)];
        assert_eq!(
            m.counter_sum("cudasw.core.phase.cells", &labels) as u64,
            stats.cells,
            "{phase} cells"
        );
        assert_eq!(
            m.counter_sum("cudasw.core.phase.global_transactions", &labels) as u64,
            stats.global_transactions,
            "{phase} transactions"
        );
        assert_eq!(
            m.counter_sum("cudasw.core.phase.seconds", &labels)
                .to_bits(),
            stats.seconds.to_bits(),
            "{phase} seconds reconstruct bit-for-bit"
        );
    }
}

/// Counters are monotone: running a second search on top of the first
/// only grows them, and `diff` isolates exactly the second search.
#[test]
fn counters_are_monotone_across_searches() {
    let db = mixed_db();
    let query = make_query(48, 5);
    let ((), run) = obs::capture(|| {
        let mut driver = CudaSwDriver::new(DeviceSpec::tesla_c1060(), config());
        driver.search(&query, &db).unwrap();
        let after_first = obs::snapshot_metrics();
        driver.search(&query, &db).unwrap();
        let after_second = obs::snapshot_metrics();
        for (key, first) in after_first.counters() {
            let labels: Vec<(&str, &str)> = key
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let second = after_second.counter(&key.name, &labels);
            assert!(second >= first, "{} shrank: {first} -> {second}", key.name);
        }
        // The second, identical search contributes exactly the same cells.
        let delta = after_second.diff(&after_first);
        assert_eq!(
            delta.counter_sum("cudasw.gpu_sim.launch.cells", &[]),
            after_first.counter_sum("cudasw.gpu_sim.launch.cells", &[]),
        );
    });
    drop(run);
}
