//! Umbrella crate for the CUDASW++ reproduction workspace.
//!
//! Re-exports the public API of every member crate so the examples and
//! integration tests (and downstream users who want a single dependency)
//! can reach the whole system through one import:
//!
//! ```
//! use cudasw_repro::prelude::*;
//!
//! let params = SwParams::cudasw_default();
//! let q = encode_protein("MKVLAW").unwrap();
//! assert!(sw_score(&params, &q, &q) > 0);
//! ```

pub use cudasw_core as core;
pub use gpu_sim;
pub use sw_align as align;
pub use sw_db as db;
pub use sw_serve as serve;
pub use sw_simd as simd;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use sw_align::{
        encode_protein, sw_score, Alphabet, GapPenalties, PackedProfile, QueryProfile,
        ScoringMatrix, SwParams,
    };
}
