//! The sequence database container and CUDASW++'s work partitioning.
//!
//! CUDASW++ sorts the database by length, sends sequences below the
//! threshold (default 3072) to the inter-task kernel in groups of `s`
//! sequences (one thread each), and sequences at or above the threshold to
//! the intra-task kernel (one block each). [`Database::partition`]
//! reproduces exactly that split.

use crate::stats::LengthStats;
use sw_align::Alphabet;

/// One database sequence (already encoded to residue codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    /// Identifier (FASTA header up to the first whitespace).
    pub id: String,
    /// Rest of the FASTA header.
    pub description: String,
    /// Encoded residues.
    pub residues: Vec<u8>,
}

impl Sequence {
    /// Build a sequence from parts.
    pub fn new(id: impl Into<String>, residues: Vec<u8>) -> Self {
        Self {
            id: id.into(),
            description: String::new(),
            residues,
        }
    }

    /// Length in residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when the sequence has no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }
}

/// An in-memory sequence database.
#[derive(Debug, Clone)]
pub struct Database {
    /// Human-readable name (e.g. `"Swissprot (synthetic)"`).
    pub name: String,
    /// The alphabet the sequences are encoded over.
    pub alphabet: Alphabet,
    sequences: Vec<Sequence>,
}

/// The threshold split of a sorted database.
#[derive(Debug, Clone, Copy)]
pub struct Partition<'a> {
    /// Sequences below the threshold, sorted ascending by length
    /// (inter-task work).
    pub short: &'a [Sequence],
    /// Sequences at or above the threshold (intra-task work).
    pub long: &'a [Sequence],
    /// The threshold used.
    pub threshold: usize,
}

impl<'a> Partition<'a> {
    /// Fraction of database sequences handled by the intra-task kernel —
    /// the x-axis of Figures 3, 5 and 6.
    pub fn fraction_long(&self) -> f64 {
        let total = self.short.len() + self.long.len();
        if total == 0 {
            0.0
        } else {
            self.long.len() as f64 / total as f64
        }
    }

    /// Inter-task groups of at most `group_size` sequences each, in sorted
    /// order (so lengths within a group are as uniform as the distribution
    /// allows — the paper's §II-C).
    pub fn groups(&self, group_size: usize) -> impl Iterator<Item = &'a [Sequence]> + '_ {
        assert!(group_size > 0, "group size must be positive");
        self.short.chunks(group_size)
    }
}

impl Database {
    /// Build a database; sequences are sorted ascending by length, which is
    /// the representation every consumer in this workspace expects.
    pub fn new(name: impl Into<String>, alphabet: Alphabet, mut sequences: Vec<Sequence>) -> Self {
        sequences.sort_by_key(|s| s.len());
        Self {
            name: name.into(),
            alphabet,
            sequences,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True when the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// The sequences, sorted ascending by length.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Total residues across all sequences.
    pub fn total_residues(&self) -> u64 {
        self.sequences.iter().map(|s| s.len() as u64).sum()
    }

    /// Number of DP cells a query of `query_len` induces over the whole
    /// database.
    pub fn total_cells(&self, query_len: usize) -> u64 {
        self.total_residues() * query_len as u64
    }

    /// Length statistics.
    pub fn length_stats(&self) -> LengthStats {
        LengthStats::from_lengths(self.sequences.iter().map(|s| s.len()))
    }

    /// Split at `threshold`: sequences shorter than the threshold go to the
    /// inter-task kernel, the rest to the intra-task kernel.
    pub fn partition(&self, threshold: usize) -> Partition<'_> {
        let split = self.sequences.partition_point(|s| s.len() < threshold);
        Partition {
            short: &self.sequences[..split],
            long: &self.sequences[split..],
            threshold,
        }
    }

    /// The threshold that puts exactly the longest `fraction` of sequences
    /// into the intra-task kernel (used to sweep the x-axis of Figures
    /// 3/5/6). Returns a threshold value; ties in length may make the
    /// achieved fraction differ slightly.
    pub fn threshold_for_fraction_long(&self, fraction: f64) -> usize {
        if self.sequences.is_empty() {
            return 0;
        }
        let long_count =
            ((self.sequences.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let idx = self.sequences.len() - long_count.min(self.sequences.len());
        if idx == 0 {
            0
        } else if idx >= self.sequences.len() {
            self.sequences.last().expect("non-empty").len() + 1
        } else {
            self.sequences[idx].len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(id: &str, len: usize) -> Sequence {
        Sequence::new(id, vec![0u8; len])
    }

    fn db() -> Database {
        Database::new(
            "test",
            Alphabet::Protein,
            vec![
                seq("d", 4000),
                seq("a", 100),
                seq("c", 3000),
                seq("b", 200),
                seq("e", 5000),
            ],
        )
    }

    #[test]
    fn sequences_sorted_by_length() {
        let d = db();
        let lens: Vec<usize> = d.sequences().iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![100, 200, 3000, 4000, 5000]);
    }

    #[test]
    fn partition_respects_threshold() {
        let d = db();
        let p = d.partition(3072);
        assert_eq!(p.short.len(), 3);
        assert_eq!(p.long.len(), 2);
        assert!((p.fraction_long() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn threshold_at_boundary_is_exclusive_below() {
        let d = db();
        // threshold == 3000: the 3000-residue sequence is NOT short.
        let p = d.partition(3000);
        assert_eq!(p.short.len(), 2);
        assert_eq!(p.long.len(), 3);
    }

    #[test]
    fn groups_chunk_in_sorted_order() {
        let d = db();
        let p = d.partition(10_000);
        let groups: Vec<&[Sequence]> = p.groups(2).collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[2].len(), 1);
        assert!(groups[0][0].len() <= groups[0][1].len());
    }

    #[test]
    fn totals() {
        let d = db();
        assert_eq!(d.total_residues(), 12300);
        assert_eq!(d.total_cells(10), 123_000);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
    }

    #[test]
    fn threshold_for_fraction() {
        let d = db();
        // 40% long -> the two longest (4000, 5000) -> threshold 4000.
        let t = d.threshold_for_fraction_long(0.4);
        assert_eq!(t, 4000);
        let p = d.partition(t);
        assert!((p.fraction_long() - 0.4).abs() < 1e-12);
        // 0% long -> threshold above the max length.
        let t0 = d.threshold_for_fraction_long(0.0);
        assert_eq!(d.partition(t0).long.len(), 0);
        // 100% long -> threshold 0.
        let t1 = d.threshold_for_fraction_long(1.0);
        assert_eq!(d.partition(t1).short.len(), 0);
    }

    #[test]
    fn empty_database() {
        let d = Database::new("empty", Alphabet::Protein, vec![]);
        assert!(d.is_empty());
        assert_eq!(d.partition(100).fraction_long(), 0.0);
        assert_eq!(d.threshold_for_fraction_long(0.5), 0);
    }
}
