//! Length-aware packing: the stable sort-by-length permutation.
//!
//! CUDASW++ sorts the database once so that warps (inter-task) and
//! blocks (intra-task) work on length-uniform chunks; SaLoBa makes the
//! same observation for query scheduling — workload balance on GPUs is
//! dominated by length-aware assignment. [`sort_by_length`] captures the
//! reordering itself as a reusable value: a **stable** length-ascending
//! permutation plus its inverse, so a consumer (the serve-layer batcher,
//! a staging planner) can move items into length order, do its work, and
//! map positions back without re-deriving anything.

/// A stable length-ascending permutation and its inverse.
///
/// `order()[k]` is the original index of the item at sorted position `k`;
/// `inverse()[i]` is the sorted position of original item `i`. Items of
/// equal length keep their original relative order (stability), which is
/// what lets the serve batcher reorder a wave by query length without
/// perturbing FIFO ties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LengthPermutation {
    order: Vec<usize>,
    inverse: Vec<usize>,
}

/// Build the stable length-ascending permutation of `lengths`.
pub fn sort_by_length(lengths: &[usize]) -> LengthPermutation {
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    // `sort_by_key` is stable: equal lengths keep index order.
    order.sort_by_key(|&i| lengths[i]);
    let mut inverse = vec![0usize; lengths.len()];
    for (pos, &i) in order.iter().enumerate() {
        inverse[i] = pos;
    }
    LengthPermutation { order, inverse }
}

impl LengthPermutation {
    /// Original index of the item at sorted position `k`.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Sorted position of original item `i`.
    pub fn inverse(&self) -> &[usize] {
        &self.inverse
    }

    /// Number of items the permutation covers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the permutation of an empty slice.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Reorder `items` into length-ascending order.
    ///
    /// Panics if `items.len()` differs from the permutation's length.
    pub fn apply<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.len(), "permutation length mismatch");
        self.order.iter().map(|&i| items[i].clone()).collect()
    }

    /// Undo [`LengthPermutation::apply`]: map length-sorted items back to
    /// their original positions.
    ///
    /// Panics if `sorted.len()` differs from the permutation's length.
    pub fn restore<T: Clone>(&self, sorted: &[T]) -> Vec<T> {
        assert_eq!(sorted.len(), self.len(), "permutation length mismatch");
        self.inverse.iter().map(|&p| sorted[p].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_ascending_and_is_stable() {
        let lengths = [30usize, 10, 30, 20, 10];
        let p = sort_by_length(&lengths);
        let sorted = p.apply(&lengths);
        assert_eq!(sorted, vec![10, 10, 20, 30, 30]);
        // Stability: the first 10 (index 1) precedes the second (index 4),
        // and the first 30 (index 0) precedes the second (index 2).
        assert_eq!(p.order(), &[1, 4, 3, 0, 2]);
    }

    #[test]
    fn roundtrip_restores_original_order() {
        let lengths = [7usize, 3, 9, 3, 1, 7, 2];
        let p = sort_by_length(&lengths);
        let tagged: Vec<(usize, usize)> = lengths.iter().copied().enumerate().collect();
        let sorted = p.apply(&tagged);
        assert!(sorted.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(p.restore(&sorted), tagged);
    }

    #[test]
    fn inverse_is_consistent_with_order() {
        let lengths = [5usize, 1, 4, 1, 5, 0];
        let p = sort_by_length(&lengths);
        for (pos, &i) in p.order().iter().enumerate() {
            assert_eq!(p.inverse()[i], pos);
        }
        for (i, &pos) in p.inverse().iter().enumerate() {
            assert_eq!(p.order()[pos], i);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let p = sort_by_length(&[]);
        assert!(p.is_empty());
        assert!(p.apply(&Vec::<u8>::new()).is_empty());
        let p = sort_by_length(&[42]);
        assert_eq!(p.order(), &[0]);
        assert_eq!(p.restore(&p.apply(&["x"])), vec!["x"]);
    }
}
