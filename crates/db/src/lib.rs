//! Sequence-database substrate for the CUDASW++ reproduction.
//!
//! * [`fasta`] — FASTA parsing and writing;
//! * [`database`] — the database container, length-sorting, the
//!   threshold split between inter-task and intra-task work, and the
//!   group partitioning the inter-task kernel consumes;
//! * [`packing`] — the stable sort-by-length permutation (and its
//!   inverse) that length-aware consumers — the inter-task group packer,
//!   the serve-layer batcher — use to see length-uniform chunks;
//! * [`stats`] — length statistics and log-normal fitting (the paper
//!   characterizes protein databases by their ~log-normal length
//!   distribution);
//! * [`synth`] — seeded synthetic database generation;
//! * [`catalog`] — synthetic stand-ins for the six databases of Table II,
//!   parameterized to match each database's reported fraction of
//!   sequences over the default threshold (see DESIGN.md §2 for the
//!   substitution rationale).

pub mod catalog;
pub mod database;
pub mod fasta;
pub mod packing;
pub mod stats;
pub mod synth;

pub use database::{Database, Partition, Sequence};
pub use packing::{sort_by_length, LengthPermutation};
pub use stats::LengthStats;
pub use synth::SynthConfig;
