//! Synthetic stand-ins for the paper's benchmark databases.
//!
//! Table II evaluates six protein databases; the paper reports, for each,
//! the percentage of sequences above the default threshold of 3072. We
//! cannot ship the databases themselves, so each preset generates a
//! log-normal database whose tail matches that reported percentage (and a
//! plausible protein mean length), scaled down in sequence *count* so the
//! functional simulator can execute every cell. See DESIGN.md §2 and §5.
//!
//! | database                    | % over 3072 (paper) |
//! |-----------------------------|---------------------|
//! | Ensembl Dog Proteins        | 0.53%               |
//! | Ensembl Rat Proteins        | 0.35%               |
//! | NCBI RefSeq Human Proteins  | 0.56%               |
//! | NCBI RefSeq Mouse Proteins  | 0.54%               |
//! | TAIR Arabidopsis Proteins   | 0.06%               |
//! | UniProtKB/Swiss-Prot        | 0.12%               |

use crate::database::Database;
use crate::stats::LogNormalParams;
use crate::synth::SynthConfig;

/// The default CUDASW++ inter/intra threshold.
pub const DEFAULT_THRESHOLD: usize = 3072;

/// Identifier for each paper database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDb {
    /// Ensembl Dog Proteins (.53% over threshold).
    EnsemblDog,
    /// Ensembl Rat Proteins (.35%).
    EnsemblRat,
    /// NCBI RefSeq Human Proteins (.56%).
    RefSeqHuman,
    /// NCBI RefSeq Mouse Proteins (.54%).
    RefSeqMouse,
    /// TAIR Arabidopsis Proteins (.06%).
    Tair,
    /// UniProtKB/Swiss-Prot (.12%).
    Swissprot,
}

impl PaperDb {
    /// All six, in Table II's row order.
    pub fn all() -> [PaperDb; 6] {
        [
            PaperDb::EnsemblDog,
            PaperDb::EnsemblRat,
            PaperDb::RefSeqHuman,
            PaperDb::RefSeqMouse,
            PaperDb::Tair,
            PaperDb::Swissprot,
        ]
    }

    /// Display name matching Table II.
    pub fn name(self) -> &'static str {
        match self {
            PaperDb::EnsemblDog => "Ensembl Dog Proteins",
            PaperDb::EnsemblRat => "Ensembl Rat Proteins",
            PaperDb::RefSeqHuman => "NCBI RefSeq Human Proteins",
            PaperDb::RefSeqMouse => "NCBI RefSeq Mouse Proteins",
            PaperDb::Tair => "TAIR Arabidopsis Proteins",
            PaperDb::Swissprot => "UniProtKB/Swiss-Prot",
        }
    }

    /// The fraction of sequences over the 3072 threshold the paper reports.
    pub fn paper_fraction_over_threshold(self) -> f64 {
        match self {
            PaperDb::EnsemblDog => 0.0053,
            PaperDb::EnsemblRat => 0.0035,
            PaperDb::RefSeqHuman => 0.0056,
            PaperDb::RefSeqMouse => 0.0054,
            PaperDb::Tair => 0.0006,
            PaperDb::Swissprot => 0.0012,
        }
    }

    /// Mean protein length used for the synthetic fit (typical for these
    /// collections; the tail fraction, not the mean, is what the paper's
    /// analysis keys on).
    pub fn assumed_mean_length(self) -> f64 {
        match self {
            PaperDb::EnsemblDog => 470.0,
            PaperDb::EnsemblRat => 440.0,
            PaperDb::RefSeqHuman => 480.0,
            PaperDb::RefSeqMouse => 460.0,
            PaperDb::Tair => 410.0,
            PaperDb::Swissprot => 360.0,
        }
    }

    /// Realistic sequence count of the real database (used by the
    /// paper-scale analytic experiments; functional runs scale this down).
    pub fn realistic_seq_count(self) -> usize {
        match self {
            PaperDb::EnsemblDog => 25_000,
            PaperDb::EnsemblRat => 29_000,
            PaperDb::RefSeqHuman => 37_000,
            PaperDb::RefSeqMouse => 30_000,
            PaperDb::Tair => 35_000,
            PaperDb::Swissprot => 500_000,
        }
    }

    /// Log-normal parameters implied by the tail/mean pair.
    pub fn lognormal(self) -> LogNormalParams {
        LogNormalParams::from_tail_and_mean(
            DEFAULT_THRESHOLD as f64,
            self.paper_fraction_over_threshold(),
            self.assumed_mean_length(),
        )
    }

    /// Generate the scaled synthetic database. `num_seqs` trades fidelity
    /// against simulation time; the experiments document their choice.
    pub fn generate(self, num_seqs: usize, seed: u64) -> Database {
        SynthConfig::new(
            format!("{} (synthetic)", self.name()),
            num_seqs,
            self.lognormal(),
            seed ^ self.seed_salt(),
        )
        .generate()
    }

    fn seed_salt(self) -> u64 {
        match self {
            PaperDb::EnsemblDog => 0xD06,
            PaperDb::EnsemblRat => 0x7A7,
            PaperDb::RefSeqHuman => 0x40AA,
            PaperDb::RefSeqMouse => 0x40BB,
            PaperDb::Tair => 0x7A17,
            PaperDb::Swissprot => 0x5157,
        }
    }
}

/// The query lengths of the paper's evaluation (Figure 7 / Table II, from
/// the original CUDASW++ study; "ranges from 144 to 5478 residues").
pub fn paper_query_lengths() -> [usize; 15] {
    [
        144, 189, 246, 375, 464, 567, 657, 729, 850, 1000, 1500, 2005, 3005, 4061, 5478,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate() {
        for db in PaperDb::all() {
            let d = db.generate(200, 1);
            assert_eq!(d.len(), 200);
            assert!(d.total_residues() > 0);
        }
    }

    #[test]
    fn tail_fractions_match_paper_targets() {
        // With enough sequences, the realized fraction over 3072 should be
        // near the paper's reported percentage.
        for db in [
            PaperDb::Swissprot,
            PaperDb::EnsemblDog,
            PaperDb::RefSeqHuman,
        ] {
            let target = db.paper_fraction_over_threshold();
            let d = db.generate(40_000, 9);
            let got = d.partition(DEFAULT_THRESHOLD).fraction_long();
            assert!(
                (got - target).abs() < target * 0.5 + 2e-4,
                "{}: target {target}, got {got}",
                db.name()
            );
        }
    }

    #[test]
    fn mean_lengths_are_plausible() {
        let d = PaperDb::Swissprot.generate(30_000, 2);
        let mean = d.length_stats().mean;
        assert!((mean - 360.0).abs() < 25.0, "mean = {mean}");
    }

    #[test]
    fn tair_has_thinnest_tail() {
        let fracs: Vec<f64> = PaperDb::all()
            .iter()
            .map(|d| d.paper_fraction_over_threshold())
            .collect();
        let tair = PaperDb::Tair.paper_fraction_over_threshold();
        assert!(fracs.iter().all(|&f| f >= tair));
    }

    #[test]
    fn query_lengths_span_paper_range() {
        let q = paper_query_lengths();
        assert_eq!(q[0], 144);
        assert_eq!(*q.last().unwrap(), 5478);
        assert!(q.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn presets_are_deterministic_and_distinct() {
        let a = PaperDb::Swissprot.generate(50, 1);
        let b = PaperDb::Swissprot.generate(50, 1);
        assert_eq!(a.sequences(), b.sequences());
        let c = PaperDb::Tair.generate(50, 1);
        assert_ne!(a.sequences(), c.sequences());
    }
}
