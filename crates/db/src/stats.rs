//! Length statistics and log-normal fitting.
//!
//! "The distribution of sequence lengths in a typical protein database,
//! such as Swissprot, resembles a log-normal distribution" (§II-C). The
//! experiments parameterize databases by mean/σ of lengths and by the
//! fraction of sequences over the kernel threshold, so this module
//! provides both directions: measure statistics from data, and derive
//! log-normal `(μ, σ)` parameters from target statistics.

/// Summary statistics of a length distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthStats {
    /// Number of sequences.
    pub count: usize,
    /// Mean length.
    pub mean: f64,
    /// Population standard deviation of lengths.
    pub std_dev: f64,
    /// Shortest sequence.
    pub min: usize,
    /// Longest sequence.
    pub max: usize,
}

impl LengthStats {
    /// Compute statistics from an iterator of lengths.
    pub fn from_lengths(lengths: impl IntoIterator<Item = usize>) -> Self {
        let mut count = 0usize;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        let mut min = usize::MAX;
        let mut max = 0usize;
        for len in lengths {
            count += 1;
            sum += len as f64;
            sum_sq += (len as f64) * (len as f64);
            min = min.min(len);
            max = max.max(len);
        }
        if count == 0 {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0,
                max: 0,
            };
        }
        let mean = sum / count as f64;
        let var = (sum_sq / count as f64 - mean * mean).max(0.0);
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Parameters of a log-normal distribution (of the underlying normal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalParams {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`.
    pub sigma: f64,
}

impl LogNormalParams {
    /// Parameters whose log-normal has the given mean and standard
    /// deviation of `X` itself.
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        let cv2 = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        Self {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// Parameters with a fixed median (`exp(μ)`) whose log-normal reaches a
    /// target standard deviation — the construction behind Figure 2, where
    /// σ of lengths is swept while the median stays put (the paper: "we set
    /// the standard deviation between 100 and 4000; because we used a
    /// log-normal distribution the mean varies from 1000 to 2000").
    pub fn from_median_and_std(median: f64, std_dev: f64) -> Self {
        assert!(median > 0.0 && std_dev > 0.0);
        // std² = e^{2μ}·s·(s−1) with s = e^{σ²} and μ = ln median.
        let e2mu = median * median;
        let s = (1.0 + (1.0 + 4.0 * std_dev * std_dev / e2mu).sqrt()) / 2.0;
        Self {
            mu: median.ln(),
            sigma: s.ln().sqrt(),
        }
    }

    /// Parameters that put `fraction_over` of the mass above `threshold`
    /// while keeping mean length `mean` — the construction behind the
    /// Table II database presets (each paper database is characterized by
    /// its %-over-threshold and a typical protein mean length).
    ///
    /// Solves `P(X > t) = fraction` ⟺ `μ = ln t − σ·z` together with
    /// `mean = exp(μ + σ²/2)` for σ (quadratic), taking the smaller root
    /// (realistic protein σ).
    pub fn from_tail_and_mean(threshold: f64, fraction_over: f64, mean: f64) -> Self {
        assert!(threshold > 0.0 && mean > 0.0);
        assert!(
            (0.0..0.5).contains(&fraction_over) && fraction_over > 0.0,
            "fraction must be in (0, 0.5)"
        );
        let z = inverse_normal_cdf(1.0 - fraction_over);
        // σ²/2 − zσ + (ln t − ln mean) = 0
        let c = threshold.ln() - mean.ln();
        let disc = z * z - 2.0 * c;
        assert!(
            disc >= 0.0,
            "no log-normal satisfies threshold={threshold}, fraction={fraction_over}, mean={mean}"
        );
        let sigma = z - disc.sqrt();
        assert!(sigma > 0.0, "degenerate sigma");
        Self {
            mu: threshold.ln() - sigma * z,
            sigma,
        }
    }

    /// Mean of the log-normal itself.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Standard deviation of the log-normal itself.
    pub fn std_dev(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (self.mean() * self.mean() * (s2.exp() - 1.0)).sqrt()
    }

    /// Median (`exp(μ)`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// `P(X > t)`.
    pub fn fraction_over(&self, threshold: f64) -> f64 {
        1.0 - normal_cdf((threshold.ln() - self.mu) / self.sigma)
    }
}

/// Standard normal CDF via `erf` (Abramowitz & Stegun 7.1.26, |err| < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative err| < 1.15e-9).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_lengths() {
        let s = LengthStats::from_lengths([2usize, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn empty_stats() {
        let s = LengthStats::from_lengths(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn normal_cdf_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn inverse_cdf_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let z = inverse_normal_cdf(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn lognormal_from_mean_std_roundtrip() {
        let p = LogNormalParams::from_mean_std(360.0, 300.0);
        assert!((p.mean() - 360.0).abs() < 1e-6);
        assert!((p.std_dev() - 300.0).abs() < 1e-6);
    }

    #[test]
    fn lognormal_from_median_and_std() {
        let p = LogNormalParams::from_median_and_std(1000.0, 2000.0);
        assert!((p.median() - 1000.0).abs() < 1e-6);
        assert!((p.std_dev() - 2000.0).abs() < 1e-3);
        // Mean exceeds median for a log-normal.
        assert!(p.mean() > 1000.0);
    }

    #[test]
    fn lognormal_from_tail_and_mean() {
        // Swissprot-like: 0.12% over 3072, mean 360.
        let p = LogNormalParams::from_tail_and_mean(3072.0, 0.0012, 360.0);
        assert!((p.mean() - 360.0).abs() < 1e-6);
        assert!(
            (p.fraction_over(3072.0) - 0.0012).abs() < 1e-5,
            "tail = {}",
            p.fraction_over(3072.0)
        );
        assert!(p.sigma > 0.3 && p.sigma < 1.5, "sigma = {}", p.sigma);
    }

    #[test]
    fn fig2_sweep_means_stay_in_paper_band() {
        // §II-C: σ from 100 to 4000 with median 1000 keeps mean in [1000, 2000+].
        let lo = LogNormalParams::from_median_and_std(1000.0, 100.0);
        let hi = LogNormalParams::from_median_and_std(1000.0, 4000.0);
        assert!(lo.mean() >= 1000.0 && lo.mean() < 1100.0);
        assert!(
            hi.mean() > 1500.0 && hi.mean() < 3500.0,
            "mean = {}",
            hi.mean()
        );
    }
}
