//! FASTA parsing and writing.
//!
//! The real CUDASW++ consumes FASTA protein databases (Swissprot etc.).
//! This module provides a strict, streaming parser over any `BufRead`
//! plus a writer, so users can run the reproduction against their own
//! FASTA files.

use crate::database::{Database, Sequence};
use std::fmt;
use std::io::{self, BufRead, Write};
use sw_align::Alphabet;

/// FASTA-level errors.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Residue characters outside the alphabet.
    BadResidue {
        /// 1-based line number.
        line: usize,
        /// Offending character.
        ch: char,
    },
    /// Sequence data before any `>` header.
    MissingHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A header with no sequence lines following it.
    EmptyRecord {
        /// The record's id.
        id: String,
    },
    /// A `>` header with no id at all (anonymous records would collide
    /// in any downstream index keyed by id).
    EmptyId {
        /// 1-based line number of the header.
        line: usize,
    },
    /// Two records share the same id.
    DuplicateId {
        /// The repeated id.
        id: String,
        /// 1-based line number of the second header.
        line: usize,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::BadResidue { line, ch } => {
                write!(f, "invalid residue {ch:?} on line {line}")
            }
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before any '>' header on line {line}")
            }
            FastaError::EmptyRecord { id } => write!(f, "record {id:?} has no residues"),
            FastaError::EmptyId { line } => {
                write!(f, "header on line {line} has no id")
            }
            FastaError::DuplicateId { id, line } => {
                write!(f, "duplicate record id {id:?} on line {line}")
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parse a FASTA stream into sequences encoded over `alphabet`.
///
/// The parser is strict about record identity — every record must carry a
/// unique, non-empty id ([`FastaError::EmptyId`],
/// [`FastaError::DuplicateId`]) — and lenient about line endings: CRLF
/// files parse identically to LF files.
pub fn parse_fasta(reader: impl BufRead, alphabet: Alphabet) -> Result<Vec<Sequence>, FastaError> {
    let mut sequences = Vec::new();
    let mut seen_ids = std::collections::HashSet::new();
    let mut current: Option<Sequence> = None;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        // `lines()` strips the `\n`; dropping trailing whitespace here
        // also strips the `\r` of CRLF files.
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            if let Some(done) = current.take() {
                if done.is_empty() {
                    return Err(FastaError::EmptyRecord { id: done.id });
                }
                sequences.push(done);
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            if id.is_empty() {
                return Err(FastaError::EmptyId { line: line_no });
            }
            if !seen_ids.insert(id.clone()) {
                return Err(FastaError::DuplicateId { id, line: line_no });
            }
            let description = parts.next().unwrap_or("").trim().to_string();
            current = Some(Sequence {
                id,
                description,
                residues: Vec::new(),
            });
        } else {
            let seq = current
                .as_mut()
                .ok_or(FastaError::MissingHeader { line: line_no })?;
            for ch in trimmed.chars() {
                if ch.is_ascii_whitespace() {
                    continue;
                }
                match alphabet.encode_char(ch) {
                    Some(code) => seq.residues.push(code),
                    None => return Err(FastaError::BadResidue { line: line_no, ch }),
                }
            }
        }
    }
    if let Some(done) = current.take() {
        if done.is_empty() {
            return Err(FastaError::EmptyRecord { id: done.id });
        }
        sequences.push(done);
    }
    Ok(sequences)
}

/// Parse a FASTA string into a [`Database`].
pub fn database_from_fasta_str(
    name: impl Into<String>,
    text: &str,
    alphabet: Alphabet,
) -> Result<Database, FastaError> {
    let sequences = parse_fasta(text.as_bytes(), alphabet)?;
    Ok(Database::new(name, alphabet, sequences))
}

/// Write sequences in FASTA format (60 columns per line).
pub fn write_fasta(
    mut writer: impl Write,
    sequences: &[Sequence],
    alphabet: Alphabet,
) -> io::Result<()> {
    for seq in sequences {
        if seq.description.is_empty() {
            writeln!(writer, ">{}", seq.id)?;
        } else {
            writeln!(writer, ">{} {}", seq.id, seq.description)?;
        }
        for chunk in seq.residues.chunks(60) {
            let line: String = chunk.iter().map(|&c| alphabet.decode_code(c)).collect();
            writeln!(writer, "{line}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
>sp|P1|FIRST first protein
MKVLAW
GGSC
>sp|P2|SECOND
WWWW
";

    #[test]
    fn parses_two_records() {
        let seqs = parse_fasta(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id, "sp|P1|FIRST");
        assert_eq!(seqs[0].description, "first protein");
        assert_eq!(seqs[0].len(), 10);
        assert_eq!(seqs[1].id, "sp|P2|SECOND");
        assert_eq!(seqs[1].description, "");
        assert_eq!(seqs[1].len(), 4);
    }

    #[test]
    fn roundtrip_through_writer() {
        let seqs = parse_fasta(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        let mut out = Vec::new();
        write_fasta(&mut out, &seqs, Alphabet::Protein).unwrap();
        let reparsed = parse_fasta(out.as_slice(), Alphabet::Protein).unwrap();
        assert_eq!(seqs, reparsed);
    }

    #[test]
    fn long_sequence_wraps_at_60() {
        let seq = Sequence::new("long", vec![0u8; 150]);
        let mut out = Vec::new();
        write_fasta(&mut out, &[seq], Alphabet::Protein).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 60 + 60 + 30
        assert_eq!(lines[1].len(), 60);
        assert_eq!(lines[3].len(), 30);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_fasta("MKVLAW\n".as_bytes(), Alphabet::Protein).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn bad_residue_rejected_with_line() {
        let text = ">x\nMKO\n";
        let err = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap_err();
        match err {
            FastaError::BadResidue { line, ch } => {
                assert_eq!(line, 2);
                assert_eq!(ch, 'O');
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn empty_record_rejected() {
        let text = ">x\n>y\nMK\n";
        let err = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { .. }));
        let text2 = ">only\n";
        assert!(matches!(
            parse_fasta(text2.as_bytes(), Alphabet::Protein),
            Err(FastaError::EmptyRecord { .. })
        ));
    }

    #[test]
    fn blank_lines_and_case_tolerated() {
        let text = ">x\n\nmkv\n  \nLAW\n";
        let seqs = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs[0].len(), 6);
    }

    #[test]
    fn database_from_str_sorts() {
        let db = database_from_fasta_str("sample", SAMPLE, Alphabet::Protein).unwrap();
        assert_eq!(db.len(), 2);
        assert!(db.sequences()[0].len() <= db.sequences()[1].len());
    }

    #[test]
    fn empty_id_rejected() {
        for text in [">\nMK\n", "> described but anonymous\nMK\n"] {
            let err = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap_err();
            assert!(matches!(err, FastaError::EmptyId { line: 1 }), "{text:?}");
        }
    }

    #[test]
    fn duplicate_id_rejected_with_line() {
        let text = ">a\nMK\n>b\nVL\n>a other copy\nAW\n";
        let err = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap_err();
        match err {
            FastaError::DuplicateId { id, line } => {
                assert_eq!(id, "a");
                assert_eq!(line, 5);
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        let crlf = SAMPLE.replace('\n', "\r\n");
        let seqs = parse_fasta(crlf.as_bytes(), Alphabet::Protein).unwrap();
        let lf = parse_fasta(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs, lf);
        assert_eq!(seqs[0].description, "first protein");
    }

    #[test]
    fn dna_alphabet_supported() {
        let text = ">d\nACGTN\n";
        let seqs = parse_fasta(text.as_bytes(), Alphabet::Dna).unwrap();
        assert_eq!(seqs[0].residues, vec![0, 1, 2, 3, 4]);
    }
}
