//! FASTA parsing and writing.
//!
//! The real CUDASW++ consumes FASTA protein databases (Swissprot etc.).
//! This module provides a strict, streaming parser over any `BufRead`
//! plus a writer, so users can run the reproduction against their own
//! FASTA files.
//!
//! The parser treats its input as **hostile**: it reads bytes (not
//! `String` lines), accepts LF / CRLF / lone-CR line endings, bounds
//! every line at [`MAX_LINE_BYTES`] so a malformed multi-gigabyte
//! "line" cannot exhaust memory, and turns every malformed shape —
//! truncated records, non-UTF-8 headers, non-ASCII residue bytes, empty
//! input — into a typed [`FastaError`]. It never panics.

use crate::database::{Database, Sequence};
use std::fmt;
use std::io::{self, BufRead, Write};
use sw_align::Alphabet;

/// Upper bound on one logical line, bytes (1 MiB). Real FASTA wraps at
/// 60–120 columns; a line beyond this is a malformed or adversarial
/// file, and the parser refuses it *without buffering it first*.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// FASTA-level errors.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Residue characters outside the alphabet.
    BadResidue {
        /// 1-based line number.
        line: usize,
        /// Offending character.
        ch: char,
    },
    /// A residue byte outside ASCII (no protein/DNA alphabet has any;
    /// binary or multi-byte-encoded input lands here with the byte
    /// preserved, where a lossy `char` decode would mangle it).
    NonAsciiResidue {
        /// 1-based line number.
        line: usize,
        /// Offending byte.
        byte: u8,
    },
    /// A header line that is not valid UTF-8 (ids and descriptions are
    /// `String`s downstream).
    InvalidUtf8 {
        /// 1-based line number.
        line: usize,
    },
    /// A line longer than [`MAX_LINE_BYTES`] — malformed or adversarial
    /// input; the parser stops before buffering the whole line.
    LineTooLong {
        /// 1-based line number.
        line: usize,
        /// The enforced bound, bytes.
        limit: usize,
    },
    /// The input contained no records at all (empty file, or whitespace
    /// only). Explicit because an accidentally empty database path
    /// otherwise surfaces much later as a mysteriously empty result.
    EmptyInput,
    /// Sequence data before any `>` header.
    MissingHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A header with no sequence lines following it.
    EmptyRecord {
        /// The record's id.
        id: String,
    },
    /// A `>` header with no id at all (anonymous records would collide
    /// in any downstream index keyed by id).
    EmptyId {
        /// 1-based line number of the header.
        line: usize,
    },
    /// Two records share the same id.
    DuplicateId {
        /// The repeated id.
        id: String,
        /// 1-based line number of the second header.
        line: usize,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::BadResidue { line, ch } => {
                write!(f, "invalid residue {ch:?} on line {line}")
            }
            FastaError::NonAsciiResidue { line, byte } => {
                write!(f, "non-ASCII residue byte 0x{byte:02x} on line {line}")
            }
            FastaError::InvalidUtf8 { line } => {
                write!(f, "header on line {line} is not valid UTF-8")
            }
            FastaError::LineTooLong { line, limit } => {
                write!(f, "line {line} exceeds the {limit}-byte limit")
            }
            FastaError::EmptyInput => write!(f, "input contains no FASTA records"),
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before any '>' header on line {line}")
            }
            FastaError::EmptyRecord { id } => write!(f, "record {id:?} has no residues"),
            FastaError::EmptyId { line } => {
                write!(f, "header on line {line} has no id")
            }
            FastaError::DuplicateId { id, line } => {
                write!(f, "duplicate record id {id:?} on line {line}")
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Read one logical line (terminated by LF, CRLF, or a lone CR) into
/// `buf` without its terminator. Returns `false` at end of input with
/// nothing read. The line cap is enforced *while* reading, so an
/// adversarial terminator-free stream fails fast instead of being
/// buffered whole.
fn read_logical_line(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    line_no: usize,
) -> Result<bool, FastaError> {
    buf.clear();
    let mut saw_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(saw_any);
        }
        saw_any = true;
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n' || b == b'\r') {
            if buf.len() + pos > MAX_LINE_BYTES {
                return Err(FastaError::LineTooLong {
                    line: line_no,
                    limit: MAX_LINE_BYTES,
                });
            }
            let is_cr = chunk[pos] == b'\r';
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            if is_cr {
                // CRLF: the LF is the same terminator, not a blank line.
                let next = reader.fill_buf()?;
                if next.first() == Some(&b'\n') {
                    reader.consume(1);
                }
            }
            return Ok(true);
        }
        let len = chunk.len();
        if buf.len() + len > MAX_LINE_BYTES {
            return Err(FastaError::LineTooLong {
                line: line_no,
                limit: MAX_LINE_BYTES,
            });
        }
        buf.extend_from_slice(chunk);
        reader.consume(len);
    }
}

/// Parse a FASTA stream into sequences encoded over `alphabet`.
///
/// The parser is strict about record identity — every record must carry a
/// unique, non-empty id ([`FastaError::EmptyId`],
/// [`FastaError::DuplicateId`]) — and lenient about line endings: LF,
/// CRLF, and classic-Mac lone-CR files all parse identically. Input with
/// no records at all is refused ([`FastaError::EmptyInput`]).
pub fn parse_fasta(
    mut reader: impl BufRead,
    alphabet: Alphabet,
) -> Result<Vec<Sequence>, FastaError> {
    let mut sequences = Vec::new();
    let mut seen_ids = std::collections::HashSet::new();
    let mut current: Option<Sequence> = None;
    let mut buf = Vec::new();
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        if !read_logical_line(&mut reader, &mut buf, line_no)? {
            break;
        }
        let trimmed = trim_ascii_end(&buf);
        if trimmed.is_empty() {
            continue;
        }
        if trimmed[0] == b'>' {
            if let Some(done) = current.take() {
                if done.is_empty() {
                    return Err(FastaError::EmptyRecord { id: done.id });
                }
                sequences.push(done);
            }
            // Headers become `String`s downstream, so they must be UTF-8;
            // residue lines below are byte-validated instead.
            let header = std::str::from_utf8(&trimmed[1..])
                .map_err(|_| FastaError::InvalidUtf8 { line: line_no })?;
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            if id.is_empty() {
                return Err(FastaError::EmptyId { line: line_no });
            }
            if !seen_ids.insert(id.clone()) {
                return Err(FastaError::DuplicateId { id, line: line_no });
            }
            let description = parts.next().unwrap_or("").trim().to_string();
            current = Some(Sequence {
                id,
                description,
                residues: Vec::new(),
            });
        } else {
            let seq = current
                .as_mut()
                .ok_or(FastaError::MissingHeader { line: line_no })?;
            for &b in trimmed {
                if b.is_ascii_whitespace() {
                    continue;
                }
                if !b.is_ascii() {
                    return Err(FastaError::NonAsciiResidue {
                        line: line_no,
                        byte: b,
                    });
                }
                let ch = b as char;
                match alphabet.encode_char(ch) {
                    Some(code) => seq.residues.push(code),
                    None => return Err(FastaError::BadResidue { line: line_no, ch }),
                }
            }
        }
    }
    if let Some(done) = current.take() {
        if done.is_empty() {
            return Err(FastaError::EmptyRecord { id: done.id });
        }
        sequences.push(done);
    }
    if sequences.is_empty() {
        return Err(FastaError::EmptyInput);
    }
    Ok(sequences)
}

/// `&[u8]` analogue of `str::trim_end` over ASCII whitespace.
fn trim_ascii_end(bytes: &[u8]) -> &[u8] {
    let mut end = bytes.len();
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    &bytes[..end]
}

/// Parse a FASTA string into a [`Database`].
pub fn database_from_fasta_str(
    name: impl Into<String>,
    text: &str,
    alphabet: Alphabet,
) -> Result<Database, FastaError> {
    let sequences = parse_fasta(text.as_bytes(), alphabet)?;
    Ok(Database::new(name, alphabet, sequences))
}

/// Write sequences in FASTA format (60 columns per line).
pub fn write_fasta(
    mut writer: impl Write,
    sequences: &[Sequence],
    alphabet: Alphabet,
) -> io::Result<()> {
    for seq in sequences {
        if seq.description.is_empty() {
            writeln!(writer, ">{}", seq.id)?;
        } else {
            writeln!(writer, ">{} {}", seq.id, seq.description)?;
        }
        for chunk in seq.residues.chunks(60) {
            let line: String = chunk.iter().map(|&c| alphabet.decode_code(c)).collect();
            writeln!(writer, "{line}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
>sp|P1|FIRST first protein
MKVLAW
GGSC
>sp|P2|SECOND
WWWW
";

    #[test]
    fn parses_two_records() {
        let seqs = parse_fasta(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id, "sp|P1|FIRST");
        assert_eq!(seqs[0].description, "first protein");
        assert_eq!(seqs[0].len(), 10);
        assert_eq!(seqs[1].id, "sp|P2|SECOND");
        assert_eq!(seqs[1].description, "");
        assert_eq!(seqs[1].len(), 4);
    }

    #[test]
    fn roundtrip_through_writer() {
        let seqs = parse_fasta(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        let mut out = Vec::new();
        write_fasta(&mut out, &seqs, Alphabet::Protein).unwrap();
        let reparsed = parse_fasta(out.as_slice(), Alphabet::Protein).unwrap();
        assert_eq!(seqs, reparsed);
    }

    #[test]
    fn long_sequence_wraps_at_60() {
        let seq = Sequence::new("long", vec![0u8; 150]);
        let mut out = Vec::new();
        write_fasta(&mut out, &[seq], Alphabet::Protein).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 60 + 60 + 30
        assert_eq!(lines[1].len(), 60);
        assert_eq!(lines[3].len(), 30);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_fasta("MKVLAW\n".as_bytes(), Alphabet::Protein).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn bad_residue_rejected_with_line() {
        let text = ">x\nMKO\n";
        let err = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap_err();
        match err {
            FastaError::BadResidue { line, ch } => {
                assert_eq!(line, 2);
                assert_eq!(ch, 'O');
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn empty_record_rejected() {
        let text = ">x\n>y\nMK\n";
        let err = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { .. }));
        let text2 = ">only\n";
        assert!(matches!(
            parse_fasta(text2.as_bytes(), Alphabet::Protein),
            Err(FastaError::EmptyRecord { .. })
        ));
    }

    #[test]
    fn blank_lines_and_case_tolerated() {
        let text = ">x\n\nmkv\n  \nLAW\n";
        let seqs = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs[0].len(), 6);
    }

    #[test]
    fn database_from_str_sorts() {
        let db = database_from_fasta_str("sample", SAMPLE, Alphabet::Protein).unwrap();
        assert_eq!(db.len(), 2);
        assert!(db.sequences()[0].len() <= db.sequences()[1].len());
    }

    #[test]
    fn empty_id_rejected() {
        for text in [">\nMK\n", "> described but anonymous\nMK\n"] {
            let err = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap_err();
            assert!(matches!(err, FastaError::EmptyId { line: 1 }), "{text:?}");
        }
    }

    #[test]
    fn duplicate_id_rejected_with_line() {
        let text = ">a\nMK\n>b\nVL\n>a other copy\nAW\n";
        let err = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap_err();
        match err {
            FastaError::DuplicateId { id, line } => {
                assert_eq!(id, "a");
                assert_eq!(line, 5);
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        let crlf = SAMPLE.replace('\n', "\r\n");
        let seqs = parse_fasta(crlf.as_bytes(), Alphabet::Protein).unwrap();
        let lf = parse_fasta(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs, lf);
        assert_eq!(seqs[0].description, "first protein");
    }

    #[test]
    fn dna_alphabet_supported() {
        let text = ">d\nACGTN\n";
        let seqs = parse_fasta(text.as_bytes(), Alphabet::Dna).unwrap();
        assert_eq!(seqs[0].residues, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lone_cr_line_endings_parse_like_lf() {
        let cr = SAMPLE.replace('\n', "\r");
        let seqs = parse_fasta(cr.as_bytes(), Alphabet::Protein).unwrap();
        let lf = parse_fasta(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs, lf);
    }

    #[test]
    fn mixed_line_endings_parse() {
        let text = ">a one\r\nMKV\rLAW\n>b\rWW\r\n";
        let seqs = parse_fasta(text.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].len(), 6);
        assert_eq!(seqs[1].len(), 2);
    }

    #[test]
    fn missing_final_newline_parses() {
        let seqs = parse_fasta(">x\nMKVL".as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(seqs[0].len(), 4);
    }

    #[test]
    fn empty_and_whitespace_only_input_rejected() {
        for text in ["", "\n", "  \n\t\n", "\r\n\r\n"] {
            assert!(
                matches!(
                    parse_fasta(text.as_bytes(), Alphabet::Protein),
                    Err(FastaError::EmptyInput)
                ),
                "{text:?}"
            );
        }
    }

    #[test]
    fn non_ascii_residue_byte_rejected_with_position() {
        let bytes = b">x\nMK\xc3\xa9VL\n";
        match parse_fasta(&bytes[..], Alphabet::Protein).unwrap_err() {
            FastaError::NonAsciiResidue { line, byte } => {
                assert_eq!(line, 2);
                assert_eq!(byte, 0xc3);
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn non_utf8_header_rejected() {
        let bytes = b">id\xff junk\nMK\n";
        assert!(matches!(
            parse_fasta(&bytes[..], Alphabet::Protein),
            Err(FastaError::InvalidUtf8 { line: 1 })
        ));
    }

    #[test]
    fn oversized_line_rejected_without_buffering_it() {
        let mut text = b">x\n".to_vec();
        text.extend(std::iter::repeat_n(b'A', MAX_LINE_BYTES + 10));
        text.push(b'\n');
        match parse_fasta(&text[..], Alphabet::Protein).unwrap_err() {
            FastaError::LineTooLong { line, limit } => {
                assert_eq!(line, 2);
                assert_eq!(limit, MAX_LINE_BYTES);
            }
            other => panic!("unexpected: {other}"),
        }
        // An oversized *terminator-free* stream (no newline at all) must
        // also fail at the cap, not attempt to buffer the input whole.
        let headerless = vec![b'A'; MAX_LINE_BYTES * 2];
        assert!(matches!(
            parse_fasta(&headerless[..], Alphabet::Protein),
            Err(FastaError::LineTooLong { line: 1, .. })
        ));
    }

    #[test]
    fn binary_garbage_yields_typed_errors_never_panics() {
        // Deterministic pseudo-random byte soup, various shapes. The
        // assertion is the absence of panics plus every outcome being a
        // typed error (garbage cannot form a valid record).
        let mut state = 0x9E3779B97F4A7C15u64;
        for len in [0usize, 1, 7, 64, 511, 4096] {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            let r = parse_fasta(&bytes[..], Alphabet::Protein);
            assert!(r.is_err(), "len={len} parsed as FASTA?");
        }
    }

    #[test]
    fn truncated_header_at_eof_rejected() {
        // A file ending right after a header (truncated download).
        for text in [">last", ">a\nMK\n>last", ">a\nMK\n>last\n \n"] {
            assert!(
                matches!(
                    parse_fasta(text.as_bytes(), Alphabet::Protein),
                    Err(FastaError::EmptyRecord { .. })
                ),
                "{text:?}"
            );
        }
    }
}
