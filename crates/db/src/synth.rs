//! Seeded synthetic database generation.
//!
//! Residues are drawn from the Robinson–Robinson background amino-acid
//! frequencies; lengths are drawn from a log-normal distribution (the
//! paper's own model for protein databases). Everything is seeded, so a
//! given configuration always produces the same database.

use crate::database::{Database, Sequence};
use crate::stats::LogNormalParams;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::LogNormal;
use sw_align::alphabet::AMINO_ACID_FREQUENCIES;
use sw_align::Alphabet;

/// Configuration for a synthetic database.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Database name.
    pub name: String,
    /// Number of sequences.
    pub num_seqs: usize,
    /// Log-normal length parameters.
    pub lengths: LogNormalParams,
    /// Shortest admissible length (paper query range starts ~144; database
    /// floors around 10–30 residues in practice).
    pub min_len: usize,
    /// Longest admissible length (Swissprot tops out near 36,000 — the
    /// value the paper raises the threshold to in §II-C).
    pub max_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// A config with workspace defaults for length bounds.
    pub fn new(
        name: impl Into<String>,
        num_seqs: usize,
        lengths: LogNormalParams,
        seed: u64,
    ) -> Self {
        Self {
            name: name.into(),
            num_seqs,
            lengths,
            min_len: 20,
            max_len: 36_000,
            seed,
        }
    }

    /// Generate the database.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let len_dist = LogNormal::new(self.lengths.mu, self.lengths.sigma)
            .expect("sigma validated by LogNormalParams");
        let residue_dist = WeightedIndex::new(AMINO_ACID_FREQUENCIES)
            .expect("frequencies are positive for standard residues");
        let mut sequences = Vec::with_capacity(self.num_seqs);
        for i in 0..self.num_seqs {
            let len =
                (len_dist.sample(&mut rng).round() as usize).clamp(self.min_len, self.max_len);
            let residues: Vec<u8> = (0..len)
                .map(|_| residue_dist.sample(&mut rng) as u8)
                .collect();
            sequences.push(Sequence::new(format!("synth|{}|{i}", self.name), residues));
        }
        Database::new(self.name.clone(), Alphabet::Protein, sequences)
    }
}

/// Sample `n` sequence *lengths* from a log-normal distribution, sorted
/// ascending — the cheap input format of the analytic performance models,
/// which lets experiments run at full paper scale (Swissprot has ~500k
/// sequences) without materializing residues.
pub fn sample_lengths(
    n: usize,
    params: LogNormalParams,
    min_len: usize,
    max_len: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4C454E); // "LEN"
    let dist = LogNormal::new(params.mu, params.sigma).expect("validated sigma");
    let mut lengths: Vec<usize> = (0..n)
        .map(|_| (dist.sample(&mut rng).round() as usize).clamp(min_len, max_len))
        .collect();
    lengths.sort_unstable();
    lengths
}

/// Generate a random query of exactly `len` residues (realistic
/// composition, seeded).
pub fn make_query(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51_5545_5259); // "QUERY"
    let residue_dist =
        WeightedIndex::new(AMINO_ACID_FREQUENCIES).expect("frequencies are positive");
    (0..len)
        .map(|_| residue_dist.sample(&mut rng) as u8)
        .collect()
}

/// A database where every sequence has exactly the lengths given —
/// useful for tests that need precise control.
pub fn database_with_lengths(name: &str, lengths: &[usize], seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let residue_dist =
        WeightedIndex::new(AMINO_ACID_FREQUENCIES).expect("frequencies are positive");
    let sequences = lengths
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let residues: Vec<u8> = (0..len)
                .map(|_| residue_dist.sample(&mut rng) as u8)
                .collect();
            Sequence::new(format!("fixed|{name}|{i}"), residues)
        })
        .collect();
    Database::new(name, Alphabet::Protein, sequences)
}

/// Convenience: `n` sequences uniformly random in `[lo, hi]` lengths.
pub fn uniform_database(name: &str, n: usize, lo: usize, hi: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let lengths: Vec<usize> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
    database_with_lengths(name, &lengths, seed.wrapping_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::new("det", 50, LogNormalParams::from_mean_std(300.0, 200.0), 42);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.sequences(), b.sequences());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            SynthConfig::new("s", 20, LogNormalParams::from_mean_std(300.0, 200.0), seed).generate()
        };
        assert_ne!(mk(1).sequences(), mk(2).sequences());
    }

    #[test]
    fn lengths_match_target_distribution() {
        let target = LogNormalParams::from_mean_std(360.0, 300.0);
        let cfg = SynthConfig::new("dist", 20_000, target, 7);
        let db = cfg.generate();
        let stats = db.length_stats();
        assert!((stats.mean - 360.0).abs() < 20.0, "mean = {}", stats.mean);
        assert!(
            (stats.std_dev - 300.0).abs() < 40.0,
            "std = {}",
            stats.std_dev
        );
    }

    #[test]
    fn length_bounds_respected() {
        let mut cfg = SynthConfig::new(
            "bounds",
            500,
            LogNormalParams::from_mean_std(100.0, 400.0),
            3,
        );
        cfg.min_len = 50;
        cfg.max_len = 200;
        let db = cfg.generate();
        let stats = db.length_stats();
        assert!(stats.min >= 50);
        assert!(stats.max <= 200);
    }

    #[test]
    fn residues_are_standard_codes() {
        let cfg = SynthConfig::new("codes", 10, LogNormalParams::from_mean_std(100.0, 50.0), 9);
        for seq in cfg.generate().sequences() {
            assert!(seq.residues.iter().all(|&c| c < 20));
        }
    }

    #[test]
    fn residue_composition_is_realistic() {
        let q = make_query(200_000, 11);
        let leu = q.iter().filter(|&&c| c == 10).count() as f64 / q.len() as f64;
        let trp = q.iter().filter(|&&c| c == 17).count() as f64 / q.len() as f64;
        // Leucine ~9%, tryptophan ~1.3%.
        assert!((leu - 0.09).abs() < 0.01, "leu = {leu}");
        assert!((trp - 0.013).abs() < 0.005, "trp = {trp}");
    }

    #[test]
    fn make_query_exact_length_and_deterministic() {
        let a = make_query(567, 5);
        let b = make_query(567, 5);
        assert_eq!(a.len(), 567);
        assert_eq!(a, b);
        assert_ne!(a, make_query(567, 6));
    }

    #[test]
    fn fixed_lengths_database() {
        let db = database_with_lengths("fix", &[10, 5, 20], 1);
        let lens: Vec<usize> = db.sequences().iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![5, 10, 20]);
    }

    #[test]
    fn sampled_lengths_sorted_and_bounded() {
        let params = LogNormalParams::from_mean_std(360.0, 300.0);
        let lens = sample_lengths(10_000, params, 20, 5000, 3);
        assert_eq!(lens.len(), 10_000);
        assert!(lens.windows(2).all(|w| w[0] <= w[1]));
        assert!(*lens.first().unwrap() >= 20);
        assert!(*lens.last().unwrap() <= 5000);
        let mean: f64 = lens.iter().map(|&l| l as f64).sum::<f64>() / 10_000.0;
        assert!((mean - 360.0).abs() < 30.0, "mean = {mean}");
        // Deterministic.
        assert_eq!(lens, sample_lengths(10_000, params, 20, 5000, 3));
    }

    #[test]
    fn uniform_database_bounds() {
        let db = uniform_database("u", 100, 10, 20, 2);
        let stats = db.length_stats();
        assert!(stats.min >= 10 && stats.max <= 20);
        assert_eq!(db.len(), 100);
    }
}
