//! End-to-end service contracts:
//!
//! * every admitted request is answered exactly once;
//! * served scores are bit-identical to a standalone resilient search —
//!   with and without injected faults, including a dead shard;
//! * a wave of compatible queries stages the database once (asserted on
//!   the `cudasw.gpu_sim.h2d.calls` transfer counter);
//! * overload sheds explicitly instead of queueing without bound;
//! * repeated queries hit the profile cache.

use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, RecoveryPolicy};
use gpu_sim::{DeviceSpec, FaultPlan, FaultRates, FaultSite};
use sw_align::SwParams;
use sw_db::synth::{database_with_lengths, make_query};
use sw_db::Database;
use sw_serve::{
    AdmissionConfig, BatchPolicy, SearchRequest, SearchService, ServeConfig, TraceConfig,
};

fn spec() -> DeviceSpec {
    DeviceSpec::tesla_c1060()
}

fn search_config() -> CudaSwConfig {
    CudaSwConfig {
        threshold: 100,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        ..CudaSwConfig::improved()
    }
}

fn serve_config(devices: usize) -> ServeConfig {
    ServeConfig {
        devices,
        search: search_config(),
        ..ServeConfig::default()
    }
}

fn test_db() -> Database {
    // Mixed lengths across the threshold: both kernels and both staging
    // image kinds are exercised on every shard.
    database_with_lengths(
        "serve-db",
        &[20, 35, 45, 60, 80, 95, 110, 120, 150, 300],
        71,
    )
}

/// Reference scores: a standalone resilient search on a clean device.
fn standalone_scores(query: &[u8], db: &Database) -> Vec<i32> {
    let mut driver = CudaSwDriver::new(spec(), search_config());
    driver
        .search_resilient(query, db, &RecoveryPolicy::default())
        .expect("clean standalone search")
        .result
        .scores
}

fn assert_exactly_once(report: &sw_serve::ServeReport, expected_ids: &[u64]) {
    let mut ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    let mut expected = expected_ids.to_vec();
    expected.sort_unstable();
    assert_eq!(ids, expected, "each admitted request answered exactly once");
}

#[test]
fn clean_run_answers_every_request_bit_identically() {
    let db = test_db();
    let trace = TraceConfig::small(12, 9).generate();
    let mut service = SearchService::new(&spec(), &serve_config(2), &db, &[]);
    let report = service.run_trace(&trace).unwrap();

    assert!(report.sheds.is_empty(), "no overload in a small trace");
    assert_exactly_once(&report, &trace.iter().map(|r| r.id).collect::<Vec<_>>());
    assert!(report.gcups() > 0.0);
    assert!(report.queries_per_second() > 0.0);
    assert!(!report.recovery.degraded);

    for resp in &report.responses {
        let req = trace.iter().find(|r| r.id == resp.id).unwrap();
        assert_eq!(
            resp.scores,
            standalone_scores(&req.query, &db),
            "request {} scores must match a standalone resilient search",
            resp.id
        );
        assert!(resp.latency_seconds >= 0.0);
    }
}

#[test]
fn wave_of_compatible_queries_stages_database_once() {
    let db = test_db();
    let devices = 2;
    let n = 6;
    let mut cfg = serve_config(devices);
    // One wave: room for all requests, generous linger.
    cfg.batch = BatchPolicy {
        max_wave: n,
        max_linger_seconds: 1.0,
        ..BatchPolicy::default()
    };
    let trace = TraceConfig {
        mean_interarrival_seconds: 1.0e-6,
        ..TraceConfig::small(n, 13)
    }
    .generate();

    // Expected staging H2D calls: one per inter-task group image plus one
    // per intra-task sequence image, per shard.
    let group_size = CudaSwDriver::new(spec(), search_config()).group_size();
    let staging_calls: usize = cudasw_core::multi_gpu::shard_database(&db, devices)
        .iter()
        .map(|shard| {
            let p = shard.partition(search_config().threshold);
            p.short.len().div_ceil(group_size.max(1)) + p.long.len()
        })
        .sum();

    let ((), obs_run) = obs::capture(|| {
        let mut service = SearchService::new(&spec(), &cfg, &db, &[]);
        let report = service.run_trace(&trace).unwrap();
        assert_eq!(report.waves, 1, "everything coalesced into one wave");
        assert_exactly_once(&report, &trace.iter().map(|r| r.id).collect::<Vec<_>>());
    });

    let h2d = obs_run.metrics.counter_sum("cudasw.gpu_sim.h2d.calls", &[]);
    // Per staged search exactly two H2D transfers: the packed profile and
    // the packed query residues. The database went up once per lane.
    let expected = staging_calls + devices * n * 2;
    assert_eq!(h2d as usize, expected, "database staged once per lane");
    assert_eq!(
        obs_run.metrics.counter_sum("cudasw.serve.db_stagings", &[]) as usize,
        devices
    );
}

#[test]
fn staged_database_survives_across_waves() {
    let db = test_db();
    let devices = 2;
    let cfg = serve_config(devices);
    let trace_a = TraceConfig::small(4, 21).generate();
    let trace_b = TraceConfig::small(3, 22).generate();

    let ((), obs_run) = obs::capture(|| {
        let mut service = SearchService::new(&spec(), &cfg, &db, &[]);
        service.run_trace(&trace_a).unwrap();
        let before = obs::snapshot_metrics();
        let report = service.run_trace(&trace_b).unwrap();
        let delta = obs::snapshot_metrics().diff(&before);
        // No re-staging for the second trace: per-query transfers only.
        assert_eq!(
            delta.counter_sum("cudasw.serve.db_stagings", &[]),
            0.0,
            "the resident database is reused across traces"
        );
        assert_eq!(
            delta.counter_sum("cudasw.gpu_sim.h2d.calls", &[]) as usize,
            devices * report.responses.len() * 2
        );
    });
    assert_eq!(
        obs_run.metrics.counter_sum("cudasw.serve.db_stagings", &[]) as usize,
        devices
    );
}

#[test]
fn faults_and_a_dead_shard_leave_scores_bit_identical() {
    let db = test_db();
    let devices = 3;
    let mut cfg = serve_config(devices);
    cfg.recovery = RecoveryPolicy {
        watchdog_cycles: Some(50_000_000),
        ..RecoveryPolicy::default()
    };
    // Lane 0 dies on its third launch; lane 1 suffers seeded random
    // transient/corruption faults; lane 2 is healthy.
    let plans = vec![
        FaultPlan::none().with_device_loss(FaultSite::Launch, 2),
        FaultPlan::random(0xFA17, FaultRates::default()),
        FaultPlan::none(),
    ];
    let trace = TraceConfig::small(8, 17).generate();

    let mut service = SearchService::new(&spec(), &cfg, &db, &plans);
    let report = service.run_trace(&trace).unwrap();

    assert_exactly_once(&report, &trace.iter().map(|r| r.id).collect::<Vec<_>>());
    assert!(service.lanes_alive() < devices, "lane 0 must be dead");
    assert!(
        report.recovery.shard_redispatches > 0 || report.recovery.cpu_fallback_seqs > 0,
        "the dead shard's work was taken over"
    );
    for resp in &report.responses {
        let req = trace.iter().find(|r| r.id == resp.id).unwrap();
        assert_eq!(
            resp.scores,
            standalone_scores(&req.query, &db),
            "request {} scores must survive faults bit-identically",
            resp.id
        );
    }
}

#[test]
fn overload_sheds_explicitly_and_serves_the_rest() {
    let db = test_db();
    let mut cfg = serve_config(2);
    cfg.admission = AdmissionConfig {
        queue_capacity: 3,
        tenant_quota: 2,
    };
    // A burst far faster than the service: most of it must shed.
    let trace = TraceConfig {
        mean_interarrival_seconds: 1.0e-9,
        ..TraceConfig::small(24, 29)
    }
    .generate();

    let mut service = SearchService::new(&spec(), &cfg, &db, &[]);
    let report = service.run_trace(&trace).unwrap();

    assert!(!report.sheds.is_empty(), "burst must shed");
    assert_eq!(report.responses.len() + report.sheds.len(), trace.len());
    assert!(report.shed_rate() > 0.0 && report.shed_rate() < 1.0);
    // Shed and served sets are disjoint and every shed has a reason.
    let served: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
    for shed in &report.sheds {
        assert!(!served.contains(&shed.id));
    }
    // Served requests are still bit-identical.
    let resp = &report.responses[0];
    let req = trace.iter().find(|r| r.id == resp.id).unwrap();
    assert_eq!(resp.scores, standalone_scores(&req.query, &db));
}

#[test]
fn repeated_queries_hit_the_profile_cache() {
    let db = test_db();
    let cfg = serve_config(2);
    let params = SwParams::cudasw_default();
    let query = make_query(40, 5);
    // Four requests, two distinct queries: two cache hits expected.
    let trace: Vec<SearchRequest> = (0..4)
        .map(|id| SearchRequest {
            id,
            tenant: "t".to_string(),
            query: if id % 2 == 0 {
                query.clone()
            } else {
                make_query(52, 6)
            },
            params: params.clone(),
            arrival_seconds: id as f64 * 1.0e-4,
            deadline_seconds: id as f64 * 1.0e-4 + 1.0,
        })
        .collect();

    let mut service = SearchService::new(&spec(), &cfg, &db, &[]);
    let report = service.run_trace(&trace).unwrap();
    assert_exactly_once(&report, &[0, 1, 2, 3]);
    assert!(
        service.cache_hit_rate() > 0.0,
        "repeated queries must hit the cache (rate {})",
        service.cache_hit_rate()
    );
    // Hits return the same profile, so scores stay identical.
    let (a, b) = (
        report.responses.iter().find(|r| r.id == 0).unwrap(),
        report.responses.iter().find(|r| r.id == 2).unwrap(),
    );
    assert_eq!(a.scores, b.scores);
}

#[test]
fn deadline_misses_are_flagged_not_dropped() {
    let db = test_db();
    let cfg = serve_config(1);
    let params = SwParams::cudasw_default();
    // An impossible deadline: still served, flagged missed.
    let trace = vec![SearchRequest {
        id: 0,
        tenant: "t".to_string(),
        query: make_query(30, 3),
        params,
        arrival_seconds: 0.0,
        deadline_seconds: 0.0,
    }];
    let mut service = SearchService::new(&spec(), &cfg, &db, &[]);
    let report = service.run_trace(&trace).unwrap();
    assert_eq!(report.responses.len(), 1);
    assert!(report.responses[0].deadline_missed);
    assert!((report.deadline_miss_rate() - 1.0).abs() < 1e-12);
    assert_eq!(
        report.responses[0].scores,
        standalone_scores(&trace[0].query, &db)
    );
}
