//! Property tests for the service's resilience layer.
//!
//! Two contracts the breaker/hedging machinery must never break:
//!
//! * **Exactly one terminal outcome.** Whatever faults hit the lanes —
//!   random transient storms, bursts, device loss with or without a
//!   revival schedule — every offered request ends up answered exactly
//!   once or shed exactly once, never both, never lost, and answered
//!   requests carry full-database, bit-identical scores.
//! * **No spontaneous breaker trips.** A lane's breaker moves
//!   `Closed → Open` only in the same observation as a failure signal
//!   (a faulted wave or a lane death). Clean waves, latency samples,
//!   admission checks, and revivals never open a closed breaker.

use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, RecoveryPolicy};
use gpu_sim::{DeviceSpec, FaultPlan, FaultRates, FaultSite};
use proptest::prelude::*;
use sw_db::synth::database_with_lengths;
use sw_serve::{
    BreakerState, HealthPolicy, HealthTracker, SearchService, ServeConfig, TraceConfig,
};

fn spec() -> DeviceSpec {
    DeviceSpec::tesla_c1060()
}

fn search_config() -> CudaSwConfig {
    CudaSwConfig {
        threshold: 100,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        ..CudaSwConfig::improved()
    }
}

fn site(i: u64) -> FaultSite {
    match i % 4 {
        0 => FaultSite::Alloc,
        1 => FaultSite::Launch,
        2 => FaultSite::HostToDevice,
        _ => FaultSite::DeviceToHost,
    }
}

/// One lane's randomized fault schedule from raw generated parts.
fn plan(raw: (u8, u64, u64, u8)) -> FaultPlan {
    let (kind, seed, idx, probes) = raw;
    match kind % 5 {
        0 => FaultPlan::none(),
        1 => FaultPlan::random(seed, FaultRates::default()),
        2 => FaultPlan::none().with_device_loss(site(idx), idx % 6),
        3 => FaultPlan::none().with_device_loss_recovery(site(idx), idx % 6, u32::from(probes % 3)),
        _ => FaultPlan::random(seed, FaultRates::default()).with_fault_burst(
            idx % 32,
            idx % 32 + 40,
            FaultRates {
                transient: 0.3,
                launch_hang: 0.0,
                corruption: 0.05,
            },
            seed ^ 0x5eed,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Every offered request gets exactly one terminal outcome, and every
    // answer is bit-identical to a clean standalone search, under
    // arbitrary per-lane fault schedules (breaker trips, revival probes,
    // hedges, budget denials and all).
    #[test]
    fn every_request_gets_exactly_one_terminal_outcome(
        n_requests in 1usize..=5,
        trace_seed in 0u64..1000,
        devices in 1usize..=3,
        lane_raw in proptest::collection::vec((0u8..=4, 0u64..10_000, 0u64..32, 0u8..3), 3),
    ) {
        let db = database_with_lengths(
            "props-db",
            &[20, 35, 45, 60, 80, 95, 110, 120, 150, 300],
            71,
        );
        let cfg = ServeConfig {
            devices,
            search: search_config(),
            recovery: RecoveryPolicy {
                watchdog_cycles: Some(50_000_000),
                ..RecoveryPolicy::default()
            },
            ..ServeConfig::default()
        };
        let plans: Vec<FaultPlan> = lane_raw.iter().take(devices).map(|&r| plan(r)).collect();
        let trace = TraceConfig::small(n_requests, trace_seed).generate();

        let report = obs::capture(|| {
            let mut service = SearchService::new(&spec(), &cfg, &db, &plans);
            service.run_trace(&trace).unwrap()
        }).0;

        // Terminal outcomes partition the trace: each id exactly once.
        let mut outcomes: Vec<u64> = report
            .responses
            .iter()
            .map(|r| r.id)
            .chain(report.sheds.iter().map(|s| s.id))
            .collect();
        outcomes.sort_unstable();
        let mut expected: Vec<u64> = trace.iter().map(|r| r.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(&outcomes, &expected, "one terminal outcome per request");

        // Answered requests carry complete, bit-identical scores.
        for resp in &report.responses {
            prop_assert_eq!(resp.scores.len(), db.len());
            let req = trace.iter().find(|r| r.id == resp.id).unwrap();
            let reference = obs::capture(|| {
                let mut driver = CudaSwDriver::new(spec(), search_config());
                driver
                    .search_resilient(&req.query, &db, &RecoveryPolicy::default())
                    .unwrap()
                    .result
                    .scores
            }).0;
            prop_assert_eq!(&resp.scores, &reference, "request {} scores", resp.id);
        }
    }

    // The breaker never moves `Closed → Open` without a failure signal in
    // the same observation, across arbitrary op interleavings.
    #[test]
    fn breaker_never_opens_from_closed_without_a_failure(
        ops in proptest::collection::vec((0u8..=5, 0.0f64..0.1), 1..120),
    ) {
        obs::capture(|| {
            let mut t = HealthTracker::new(2, HealthPolicy::default());
            let mut now = 0.0;
            for &(op, dt) in &ops {
                now += dt;
                for lane in 0..2 {
                    let before = t.lane(lane).state;
                    let failure = match op {
                        0 => {
                            t.observe_wave(lane, false, now);
                            false
                        }
                        1 => {
                            t.observe_wave(lane, true, now);
                            true
                        }
                        2 => {
                            t.observe_death(lane, now);
                            true
                        }
                        3 => {
                            t.admits(lane, now);
                            false
                        }
                        4 => {
                            t.observe_latency(lane, dt);
                            false
                        }
                        _ => {
                            t.note_revival(lane, now);
                            false
                        }
                    };
                    let after = t.lane(lane).state;
                    if before == BreakerState::Closed && after == BreakerState::Open {
                        assert!(failure, "closed breaker opened on a non-failure op {op}");
                    }
                }
            }
        });
    }
}
