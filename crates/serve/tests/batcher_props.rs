//! Batcher scheduling invariants over arbitrary arrival traces:
//!
//! * **no starvation** — a drained scheduler loop dispatches every
//!   admitted request;
//! * **no duplicate dispatch** — each request appears in exactly one
//!   wave, exactly once;
//! * **wave homogeneity** — every wave holds one parameter class;
//! * **tenant FIFO at equal deadlines** — two same-tenant, same-class
//!   requests with equal deadlines dispatch in arrival (then id) order.

use proptest::prelude::*;
use sw_align::{ScoringMatrix, SwParams};
use sw_serve::{AdmissionConfig, AdmissionQueue, BatchPolicy, Batcher, SearchRequest, Wave};

fn params_class(class: u8) -> SwParams {
    if class == 0 {
        SwParams::cudasw_default()
    } else {
        SwParams {
            matrix: ScoringMatrix::blosum50(),
            ..SwParams::cudasw_default()
        }
    }
}

/// Build a request from raw generated parts.
fn build_request(id: u64, raw: (u8, u64, u64, usize, u8)) -> SearchRequest {
    let (tenant, arrival_ticks, slack_ticks, query_len, class) = raw;
    let arrival = arrival_ticks as f64 * 1.0e-4;
    SearchRequest {
        id,
        tenant: format!("tenant-{tenant}"),
        query: vec![(id % 20) as u8; query_len],
        params: params_class(class),
        arrival_seconds: arrival,
        deadline_seconds: arrival + slack_ticks as f64 * 1.0e-4,
    }
}

/// Drive the batcher through the scheduler's discrete-event loop with a
/// fixed per-wave service time; return the dispatched waves in order.
fn drive(requests: Vec<SearchRequest>, policy: BatchPolicy) -> Vec<Wave> {
    let mut pending = requests;
    pending.sort_by(|a, b| {
        a.arrival_seconds
            .total_cmp(&b.arrival_seconds)
            .then(a.id.cmp(&b.id))
    });
    let mut pending = std::collections::VecDeque::from(pending);
    // Capacity above any generated trace: admission never sheds here, so
    // "admitted" means every generated request.
    let mut queue = AdmissionQueue::new(AdmissionConfig {
        queue_capacity: 10_000,
        tenant_quota: 10_000,
    });
    let batcher = Batcher::new(policy);
    let mut now = pending.front().map_or(0.0, |r| r.arrival_seconds);
    let mut waves = Vec::new();
    loop {
        while pending.front().is_some_and(|r| r.arrival_seconds <= now) {
            queue.offer(pending.pop_front().unwrap()).unwrap();
        }
        let flush = pending.is_empty();
        if let Some(wave) = batcher.next_wave(&mut queue, now, flush) {
            waves.push(wave);
            now += 5.0e-4; // fixed wave service time
        } else if let Some(next) = pending.front() {
            let arrival = next.arrival_seconds;
            now = match batcher.next_dispatch_at(&queue, now) {
                Some(linger) => linger.min(arrival).max(now),
                None => arrival,
            };
        } else if queue.is_empty() {
            return waves;
        }
    }
}

proptest! {
    #[test]
    fn batcher_dispatches_everything_exactly_once_in_tenant_fifo_order(
        raw in proptest::collection::vec(
            (0u8..3, 0u64..40, 0u64..4, 1usize..24, 0u8..2),
            0..24,
        ),
        max_wave in 1usize..6,
        linger_ticks in 0u64..8,
    ) {
        let requests: Vec<SearchRequest> = raw
            .into_iter()
            .enumerate()
            .map(|(i, r)| build_request(i as u64, r))
            .collect();
        let n = requests.len();
        let by_id: std::collections::HashMap<u64, SearchRequest> =
            requests.iter().map(|r| (r.id, r.clone())).collect();
        let policy = BatchPolicy {
            max_wave,
            max_linger_seconds: linger_ticks as f64 * 1.0e-4,
            ..BatchPolicy::default()
        };
        let waves = drive(requests, policy);

        // Exactly-once, no starvation: the flattened dispatch covers every
        // request once.
        let flat: Vec<u64> = waves
            .iter()
            .flat_map(|w| w.requests.iter().map(|r| r.id))
            .collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), flat.len(), "duplicate dispatch");
        prop_assert_eq!(flat.len(), n, "starved request");

        for wave in &waves {
            // Homogeneity: one parameter class per wave, within size.
            prop_assert!(wave.requests.len() <= max_wave);
            prop_assert!(!wave.requests.is_empty());
            for r in &wave.requests {
                prop_assert_eq!(&r.params_key(), &wave.key);
            }
            // The execution order is a length-sorted permutation of the
            // wave.
            let mut seen = vec![false; wave.requests.len()];
            for &i in &wave.exec_order {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            prop_assert!(wave
                .exec_order
                .windows(2)
                .all(|w| wave.requests[w[0]].query.len() <= wave.requests[w[1]].query.len()));
        }

        // Tenant FIFO at equal deadlines (same parameter class): arrival
        // order, then id order, is preserved in the flattened dispatch.
        let position: std::collections::HashMap<u64, usize> =
            flat.iter().enumerate().map(|(p, &id)| (id, p)).collect();
        for a in by_id.values() {
            for b in by_id.values() {
                if a.id == b.id
                    || a.tenant != b.tenant
                    || a.params_key() != b.params_key()
                    || a.deadline_seconds != b.deadline_seconds
                {
                    continue;
                }
                let a_first = (a.arrival_seconds, a.id) < (b.arrival_seconds, b.id);
                if a_first {
                    prop_assert!(
                        position[&a.id] < position[&b.id],
                        "tenant FIFO violated: {} before {}",
                        b.id,
                        a.id
                    );
                }
            }
        }
    }
}
