//! The wave batcher: deadline-aware coalescing of compatible queries.
//!
//! A wave is the unit of dispatch: a set of queued requests with equal
//! [`ParamsKey`] that one scheduler round runs against the device farm,
//! reusing a single device-resident database staging for all of them.
//!
//! Ordering is earliest-deadline-first with FIFO (arrival, then id)
//! tie-breaking — the *logical* order, which fixes both which requests a
//! wave contains (the head's parameter class, in EDF order, truncated to
//! [`BatchPolicy::max_wave`]) and the order responses are accounted in.
//! Execution additionally reorders each wave's queries by length
//! ([`sw_db::sort_by_length`]) so a lane walks its shard with
//! length-uniform work — the SaLoBa observation — without perturbing the
//! logical order (results are keyed by request id).

use crate::admission::AdmissionQueue;
use crate::request::{ParamsKey, SearchRequest};
use sw_db::sort_by_length;

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Maximum requests per wave.
    pub max_wave: usize,
    /// How long the head request may wait for companions before the wave
    /// dispatches anyway (seconds from the head's arrival).
    pub max_linger_seconds: f64,
    /// When > 0: a head whose deadline slack (`deadline − now`) is below
    /// this dispatches immediately in a short wave (quarter size) instead
    /// of lingering for companions — urgent work skips the coalescing
    /// bet. `0.0` (the default) disables the fast path.
    pub urgent_slack_seconds: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_wave: 16,
            max_linger_seconds: 5.0e-3,
            urgent_slack_seconds: 0.0,
        }
    }
}

/// A dispatched batch of parameter-compatible requests.
#[derive(Debug, Clone)]
pub struct Wave {
    /// The shared parameter class.
    pub key: ParamsKey,
    /// Requests in logical (EDF, FIFO-tie-broken) order.
    pub requests: Vec<SearchRequest>,
    /// Execution order: `exec_order[k]` is the index into `requests` of
    /// the `k`-th query to run (length-ascending, stable).
    pub exec_order: Vec<usize>,
}

impl Wave {
    fn new(key: ParamsKey, requests: Vec<SearchRequest>) -> Self {
        let lengths: Vec<usize> = requests.iter().map(|r| r.query.len()).collect();
        let exec_order = sort_by_length(&lengths).order().to_vec();
        Self {
            key,
            requests,
            exec_order,
        }
    }
}

/// The wave batcher. Stateless between calls: everything it needs is in
/// the queue and the clock.
#[derive(Debug, Default)]
pub struct Batcher {
    policy: BatchPolicy,
}

impl Batcher {
    /// A batcher with `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        Self { policy }
    }

    /// The batching policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Earliest simulated instant at which [`Batcher::next_wave`] will
    /// dispatch without `flush`, given the current queue — `None` when
    /// the queue is empty. The scheduler uses this to advance its clock
    /// instead of spinning.
    pub fn next_dispatch_at(&self, queue: &AdmissionQueue, now: f64) -> Option<f64> {
        let head = head_index(queue)?;
        let head_arrival = queue.requests()[head].arrival_seconds;
        let mut at = head_arrival + self.policy.max_linger_seconds;
        if self.policy.urgent_slack_seconds > 0.0 {
            // The head turns urgent when its slack drops below the
            // threshold; nudge past the boundary so `<` sees it.
            let urgent_at =
                queue.requests()[head].deadline_seconds - self.policy.urgent_slack_seconds;
            at = at.min(urgent_at + f64::EPSILON.max(urgent_at.abs() * f64::EPSILON));
        }
        Some(at.max(now))
    }

    /// Form the next wave, or decline (queue empty, or the head is still
    /// lingering for companions and `flush` is false).
    ///
    /// With `flush` true a non-empty queue *always* yields a wave — the
    /// no-starvation guarantee the scheduler relies on to drain.
    pub fn next_wave(&self, queue: &mut AdmissionQueue, now: f64, flush: bool) -> Option<Wave> {
        let head = head_index(queue)?;
        let key = queue.requests()[head].params_key();
        // Queue indices of the head's parameter class, EDF order.
        let mut member_indices: Vec<usize> = (0..queue.requests().len())
            .filter(|&i| queue.requests()[i].params_key() == key)
            .collect();
        member_indices.sort_by(|&a, &b| edf_rank(&queue.requests()[a], &queue.requests()[b]));
        member_indices.truncate(self.policy.max_wave);

        let head_arrival = queue.requests()[head].arrival_seconds;
        let linger_expired = now >= head_arrival + self.policy.max_linger_seconds;
        let full = member_indices.len() >= self.policy.max_wave;
        let urgent = self.policy.urgent_slack_seconds > 0.0
            && queue.requests()[head].deadline_seconds - now < self.policy.urgent_slack_seconds;
        if !(flush || full || linger_expired || urgent) {
            return None;
        }
        if urgent && !(full || linger_expired) {
            // Urgent fast path: dispatch a short wave now rather than
            // betting the head's remaining slack on more companions.
            member_indices.truncate((self.policy.max_wave / 4).max(1));
            obs::counter_add("cudasw.serve.urgent_waves", &[], 1.0);
        }

        member_indices.sort_unstable();
        let mut requests = queue.take(&member_indices);
        requests.sort_by(edf_rank);
        obs::counter_add("cudasw.serve.waves", &[], 1.0);
        obs::counter_add("cudasw.serve.wave_requests", &[], requests.len() as f64);
        Some(Wave::new(key, requests))
    }
}

/// EDF with FIFO tie-breaking: (deadline, arrival, id).
fn edf_rank(a: &SearchRequest, b: &SearchRequest) -> std::cmp::Ordering {
    a.deadline_seconds
        .total_cmp(&b.deadline_seconds)
        .then(a.arrival_seconds.total_cmp(&b.arrival_seconds))
        .then(a.id.cmp(&b.id))
}

/// Queue index of the globally most-urgent request.
fn head_index(queue: &AdmissionQueue) -> Option<usize> {
    (0..queue.requests().len())
        .min_by(|&a, &b| edf_rank(&queue.requests()[a], &queue.requests()[b]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use sw_align::{ScoringMatrix, SwParams};

    fn req(id: u64, arrival: f64, deadline: f64, qlen: usize, params: SwParams) -> SearchRequest {
        SearchRequest {
            id,
            tenant: "t".to_string(),
            query: vec![1u8; qlen],
            params,
            arrival_seconds: arrival,
            deadline_seconds: deadline,
        }
    }

    fn queue_with(reqs: Vec<SearchRequest>) -> AdmissionQueue {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        for r in reqs {
            q.offer(r).unwrap();
        }
        q
    }

    #[test]
    fn coalesces_only_compatible_params() {
        let b62 = SwParams::cudasw_default();
        let b50 = SwParams {
            matrix: ScoringMatrix::blosum50(),
            ..SwParams::cudasw_default()
        };
        let mut q = queue_with(vec![
            req(0, 0.0, 1.0, 10, b62.clone()),
            req(1, 0.0, 1.0, 10, b50.clone()),
            req(2, 0.0, 1.0, 10, b62.clone()),
        ]);
        let batcher = Batcher::new(BatchPolicy::default());
        let w = batcher.next_wave(&mut q, 0.0, true).unwrap();
        assert_eq!(w.key, ParamsKey::of(&b62));
        assert_eq!(w.requests.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 2]);
        let w2 = batcher.next_wave(&mut q, 0.0, true).unwrap();
        assert_eq!(w2.key, ParamsKey::of(&b50));
        assert_eq!(w2.requests[0].id, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn earliest_deadline_first_with_fifo_ties() {
        let p = SwParams::cudasw_default();
        let mut q = queue_with(vec![
            req(0, 0.0, 9.0, 10, p.clone()),
            req(1, 0.1, 5.0, 10, p.clone()),
            req(2, 0.2, 5.0, 10, p.clone()),
            req(3, 0.0, 5.0, 10, p.clone()),
        ]);
        let batcher = Batcher::new(BatchPolicy::default());
        let w = batcher.next_wave(&mut q, 1.0, true).unwrap();
        // Deadline 5.0 first; among those, arrival order 3 (0.0), 1 (0.1),
        // 2 (0.2); deadline 9.0 last.
        assert_eq!(
            w.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [3, 1, 2, 0]
        );
    }

    #[test]
    fn lingers_until_full_or_expired() {
        let p = SwParams::cudasw_default();
        let policy = BatchPolicy {
            max_wave: 2,
            max_linger_seconds: 1.0,
            ..BatchPolicy::default()
        };
        let batcher = Batcher::new(policy);
        let mut q = queue_with(vec![req(0, 0.0, 10.0, 10, p.clone())]);
        // Not full, linger not expired, no flush: declines.
        assert!(batcher.next_wave(&mut q, 0.5, false).is_none());
        assert_eq!(batcher.next_dispatch_at(&q, 0.5), Some(1.0));
        // Linger expired: dispatches the singleton.
        assert!(batcher.next_wave(&mut q, 1.0, false).is_some());

        let mut q = queue_with(vec![
            req(0, 0.0, 10.0, 10, p.clone()),
            req(1, 0.0, 10.0, 10, p.clone()),
        ]);
        // Full wave dispatches immediately.
        let w = batcher.next_wave(&mut q, 0.0, false).unwrap();
        assert_eq!(w.requests.len(), 2);
    }

    #[test]
    fn wave_respects_max_size() {
        let p = SwParams::cudasw_default();
        let batcher = Batcher::new(BatchPolicy {
            max_wave: 3,
            max_linger_seconds: 0.0,
            ..BatchPolicy::default()
        });
        let mut q = queue_with((0..7).map(|i| req(i, 0.0, 1.0, 10, p.clone())).collect());
        let w = batcher.next_wave(&mut q, 0.0, false).unwrap();
        assert_eq!(w.requests.len(), 3);
        assert_eq!(q.depth(), 4);
    }

    #[test]
    fn urgent_head_dispatches_a_short_wave_immediately() {
        let p = SwParams::cudasw_default();
        let batcher = Batcher::new(BatchPolicy {
            max_wave: 8,
            max_linger_seconds: 10.0,
            urgent_slack_seconds: 0.5,
        });
        // Head deadline 1.0; at now = 0.6 its slack (0.4) is under the
        // 0.5 threshold, so it must not keep lingering.
        let mut q = queue_with(vec![
            req(0, 0.0, 1.0, 10, p.clone()),
            req(1, 0.0, 9.0, 10, p.clone()),
            req(2, 0.0, 9.0, 10, p.clone()),
        ]);
        assert!(batcher.next_wave(&mut q, 0.3, false).is_none());
        let w = batcher.next_wave(&mut q, 0.6, false).unwrap();
        // Quarter of max_wave = 2: the urgent head plus one companion.
        assert_eq!(w.requests.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(q.depth(), 1);
        // next_dispatch_at reflects the urgency boundary (0.5), not the
        // 10-second linger expiry.
        let q2 = queue_with(vec![req(3, 0.0, 1.0, 10, p.clone())]);
        let at = batcher.next_dispatch_at(&q2, 0.0).unwrap();
        assert!((at - 0.5).abs() < 1e-9, "dispatch at {at}");
    }

    #[test]
    fn exec_order_is_length_sorted_and_stable() {
        let p = SwParams::cudasw_default();
        let mut q = queue_with(vec![
            req(0, 0.0, 1.0, 30, p.clone()),
            req(1, 0.0, 1.0, 10, p.clone()),
            req(2, 0.0, 1.0, 30, p.clone()),
        ]);
        let batcher = Batcher::new(BatchPolicy::default());
        let w = batcher.next_wave(&mut q, 0.0, true).unwrap();
        // Logical order is FIFO 0, 1, 2; execution order is length-sorted
        // with ties in logical order.
        assert_eq!(w.exec_order, vec![1, 0, 2]);
        let lens: Vec<usize> = w
            .exec_order
            .iter()
            .map(|&i| w.requests[i].query.len())
            .collect();
        assert!(lens.windows(2).all(|x| x[0] <= x[1]));
    }
}
