//! Per-lane health tracking and circuit breaking.
//!
//! PR 1/PR 4 gave every *query* a recovery ladder; this module gives the
//! *service* cross-query memory about each device lane. A
//! [`HealthTracker`] keeps, per lane, an EWMA fault score fed by wave
//! outcomes, an EWMA service latency, and a circuit breaker:
//!
//! ```text
//!             consecutive failures ≥ open_after_consecutive
//!             or fault score ≥ open_fault_score, or lane death
//!   ┌────────┐ ──────────────────────────────────────────▶ ┌────────┐
//!   │ Closed │                                             │  Open  │
//!   └────────┘ ◀──┐                                        └────────┘
//!        ▲        │ close_after_probes                          │
//!        │        │ probe successes             cooldown_seconds│
//!        │        │                             elapse          ▼
//!        │   ┌──────────┐ ◀───────────────────────────── (next admit)
//!        └── │ HalfOpen │
//!            └──────────┘ ── probe failure ──▶ back to Open
//! ```
//!
//! While a lane's breaker is open the executor stops routing wave work
//! to it (the owed/redispatch machinery covers its shard); after
//! [`HealthPolicy::cooldown_seconds`] of service time the breaker
//! half-opens and the lane earns re-admission with
//! [`HealthPolicy::close_after_probes`] clean probe waves. A revived
//! device (see [`gpu_sim`] device-loss recovery) re-enters through
//! half-open too — it must prove itself before the batcher trusts it.
//!
//! The tracker also powers **hedged dispatch**: per-query lane latencies
//! feed a global histogram, and [`HealthTracker::should_hedge`] flags a
//! lane whose latency EWMA exceeds `hedge_factor ×` the global
//! `hedge_quantile` — the executor then speculatively re-issues the
//! query on the host SIMD engine, first result wins (exactly once).
//!
//! The breaker never moves `Closed → Open` without a failure signal in
//! the same observation — pinned by `tests/resilience_props.rs`.
//!
//! All timing here is **service time** (the discrete-event scheduler's
//! clock), passed in as `now`; the tracker never reads the global
//! simulated clock.

/// Health/breaker/hedging knobs.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// EWMA smoothing factor for the fault score and latency, in (0, 1];
    /// higher weighs recent waves more.
    pub ewma_alpha: f64,
    /// Consecutive failed waves that open the breaker.
    pub open_after_consecutive: u32,
    /// Fault-score level (EWMA of 0/1 wave outcomes) that opens the
    /// breaker even without a consecutive run.
    pub open_fault_score: f64,
    /// Service seconds an open breaker waits before half-opening.
    pub cooldown_seconds: f64,
    /// Clean probe waves a half-open lane must serve to close.
    pub close_after_probes: u32,
    /// Master switch for hedged dispatch.
    pub hedging: bool,
    /// Global latency quantile the hedge threshold is derived from. The
    /// default is the **median**: a persistently slow lane contributes
    /// `1/lanes` of the pooled samples, so a high quantile would chase
    /// the outlier's own tail and never fire.
    pub hedge_quantile: f64,
    /// A lane hedges when its latency EWMA exceeds
    /// `hedge_factor × quantile`.
    pub hedge_factor: f64,
    /// Minimum latency samples (global) before hedging can trigger —
    /// keeps cold starts and tiny traces hedge-free.
    pub hedge_min_samples: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            ewma_alpha: 0.3,
            open_after_consecutive: 3,
            open_fault_score: 0.6,
            cooldown_seconds: 2.0e-2,
            close_after_probes: 2,
            hedging: true,
            hedge_quantile: 0.5,
            hedge_factor: 4.0,
            hedge_min_samples: 8,
        }
    }
}

/// Circuit-breaker state of one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: waves route here.
    Closed,
    /// Quarantined: no waves until the cooldown elapses.
    Open,
    /// Probing: waves route here, but one failure re-opens and
    /// [`HealthPolicy::close_after_probes`] successes close.
    HalfOpen,
}

impl BreakerState {
    /// Metric-label form.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    fn gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        }
    }
}

/// Health state of one lane.
#[derive(Debug, Clone)]
pub struct LaneHealth {
    /// Breaker state.
    pub state: BreakerState,
    /// EWMA of wave outcomes (0 = clean, 1 = faulted); starts clean.
    pub fault_score: f64,
    /// EWMA of per-query service latency, seconds (0 until sampled).
    pub latency_ewma: f64,
    /// Failed waves since the last clean one.
    pub consecutive_failures: u32,
    /// Service instant the breaker last opened.
    opened_at: f64,
    /// Clean probes served while half-open.
    probe_successes: u32,
}

impl LaneHealth {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            fault_score: 0.0,
            latency_ewma: 0.0,
            consecutive_failures: 0,
            opened_at: 0.0,
            probe_successes: 0,
        }
    }
}

/// Latency-histogram bounds for the hedge quantile, seconds. Finer than
/// the service report's buckets because per-query lane times are small.
const HEDGE_LATENCY_BOUNDS: &[f64] = &[
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
];

/// Cross-query health memory for a farm of lanes.
#[derive(Debug)]
pub struct HealthTracker {
    policy: HealthPolicy,
    lanes: Vec<LaneHealth>,
    /// Global per-query lane latency distribution (all lanes pooled) —
    /// the baseline [`HealthTracker::should_hedge`] compares against.
    latencies: obs::Histogram,
}

impl HealthTracker {
    /// A tracker for `lanes` lanes, all starting closed and clean.
    pub fn new(lanes: usize, policy: HealthPolicy) -> Self {
        Self {
            policy,
            lanes: (0..lanes).map(|_| LaneHealth::new()).collect(),
            latencies: obs::Histogram::new(HEDGE_LATENCY_BOUNDS),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Health state of lane `s`.
    pub fn lane(&self, s: usize) -> &LaneHealth {
        &self.lanes[s]
    }

    /// Whether lane `s` may receive wave work at service instant `now`.
    /// An open breaker whose cooldown has elapsed half-opens here (the
    /// admission check is the only place the clock can move it).
    pub fn admits(&mut self, s: usize, now: f64) -> bool {
        if self.lanes[s].state == BreakerState::Open
            && now - self.lanes[s].opened_at >= self.policy.cooldown_seconds
        {
            self.transition(s, BreakerState::HalfOpen);
            self.lanes[s].probe_successes = 0;
        }
        self.lanes[s].state != BreakerState::Open
    }

    /// Record one wave served by lane `s`: `faulted` when any fault fired
    /// on the lane's device during the wave (fault-stats delta), clean
    /// otherwise. Drives the EWMA fault score and the breaker.
    pub fn observe_wave(&mut self, s: usize, faulted: bool, now: f64) {
        let a = self.policy.ewma_alpha;
        let lane = &mut self.lanes[s];
        lane.fault_score = (1.0 - a) * lane.fault_score + a * f64::from(u8::from(faulted));
        obs::gauge_set(
            "cudasw.serve.health.fault_score",
            &[("lane", &s.to_string())],
            lane.fault_score,
        );
        if faulted {
            lane.consecutive_failures += 1;
            let trip = lane.consecutive_failures >= self.policy.open_after_consecutive
                || lane.fault_score >= self.policy.open_fault_score;
            match lane.state {
                // A half-open lane re-opens on its first failed probe.
                BreakerState::HalfOpen => self.open(s, now),
                BreakerState::Closed if trip => self.open(s, now),
                _ => {}
            }
        } else {
            lane.consecutive_failures = 0;
            if lane.state == BreakerState::HalfOpen {
                lane.probe_successes += 1;
                if lane.probe_successes >= self.policy.close_after_probes {
                    self.transition(s, BreakerState::Closed);
                }
            }
        }
    }

    /// Record a lane death (device lost mid-wave): opens the breaker
    /// immediately — the cooldown then paces revival probes.
    pub fn observe_death(&mut self, s: usize, now: f64) {
        self.lanes[s].consecutive_failures += 1;
        self.lanes[s].fault_score = 1.0;
        if self.lanes[s].state != BreakerState::Open {
            self.open(s, now);
        } else {
            // Re-arm the cooldown: a failed revival probe starts a new wait.
            self.lanes[s].opened_at = now;
        }
    }

    /// Record one query's service latency on lane `s` (kernel + transfer
    /// + backoff seconds): feeds the lane EWMA and the global histogram.
    pub fn observe_latency(&mut self, s: usize, seconds: f64) {
        let a = self.policy.ewma_alpha;
        let lane = &mut self.lanes[s];
        lane.latency_ewma = if lane.latency_ewma == 0.0 {
            seconds
        } else {
            (1.0 - a) * lane.latency_ewma + a * seconds
        };
        self.latencies.observe(seconds);
        obs::gauge_set(
            "cudasw.serve.health.latency_ewma",
            &[("lane", &s.to_string())],
            self.lanes[s].latency_ewma,
        );
    }

    /// Whether a query on lane `s` should be hedged on the host engine:
    /// the lane's latency EWMA exceeds `hedge_factor ×` the global
    /// `hedge_quantile`, with enough global samples to trust the
    /// baseline.
    pub fn should_hedge(&self, s: usize) -> bool {
        if !self.policy.hedging || self.latencies.count < self.policy.hedge_min_samples {
            return false;
        }
        let baseline = self.latencies.quantile(self.policy.hedge_quantile);
        baseline > 0.0 && self.lanes[s].latency_ewma > self.policy.hedge_factor * baseline
    }

    /// Record a successful device revival on lane `s`: the lane re-enters
    /// through half-open (it must earn `Closed` with clean probes), with
    /// its failure run cleared.
    pub fn note_revival(&mut self, s: usize, _now: f64) {
        self.lanes[s].consecutive_failures = 0;
        self.lanes[s].probe_successes = 0;
        self.transition(s, BreakerState::HalfOpen);
    }

    /// The healthiest admitted lane other than `except` (lowest fault
    /// score, ties to the lowest index): where owed work should go first.
    pub fn preferred(&self, alive: &[bool], except: usize) -> Option<usize> {
        (0..self.lanes.len())
            .filter(|&s| {
                s != except
                    && alive.get(s).copied().unwrap_or(false)
                    && self.lanes[s].state != BreakerState::Open
            })
            .min_by(|&a, &b| {
                self.lanes[a]
                    .fault_score
                    .total_cmp(&self.lanes[b].fault_score)
            })
    }

    fn open(&mut self, s: usize, now: f64) {
        self.lanes[s].opened_at = now;
        self.lanes[s].probe_successes = 0;
        self.transition(s, BreakerState::Open);
    }

    fn transition(&mut self, s: usize, to: BreakerState) {
        if self.lanes[s].state == to {
            return;
        }
        self.lanes[s].state = to;
        let lane = s.to_string();
        obs::counter_add(
            "cudasw.serve.health.breaker_transitions",
            &[("lane", &lane), ("to", to.as_str())],
            1.0,
        );
        obs::gauge_set(
            "cudasw.serve.health.breaker",
            &[("lane", &lane)],
            to.gauge(),
        );
        obs::instant("breaker", "serve", &[("lane", &lane), ("to", to.as_str())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(lanes: usize) -> HealthTracker {
        HealthTracker::new(lanes, HealthPolicy::default())
    }

    #[test]
    fn clean_waves_keep_the_breaker_closed() {
        let mut t = tracker(2);
        for i in 0..50 {
            let now = i as f64;
            assert!(t.admits(0, now));
            t.observe_wave(0, false, now);
        }
        assert_eq!(t.lane(0).state, BreakerState::Closed);
        assert_eq!(t.lane(0).fault_score, 0.0);
    }

    #[test]
    fn consecutive_failures_open_then_cooldown_half_opens() {
        let mut t = tracker(1);
        let p = t.policy().clone();
        for i in 0..p.open_after_consecutive {
            assert!(t.admits(0, 0.0));
            t.observe_wave(0, true, 0.0);
            if i + 1 < p.open_after_consecutive {
                assert_eq!(t.lane(0).state, BreakerState::Closed);
            }
        }
        assert_eq!(t.lane(0).state, BreakerState::Open);
        // Quarantined until the cooldown elapses...
        assert!(!t.admits(0, p.cooldown_seconds / 2.0));
        // ...then half-open probes are admitted.
        assert!(t.admits(0, p.cooldown_seconds));
        assert_eq!(t.lane(0).state, BreakerState::HalfOpen);
        // One failed probe re-opens with a fresh cooldown.
        t.observe_wave(0, true, p.cooldown_seconds);
        assert_eq!(t.lane(0).state, BreakerState::Open);
        assert!(!t.admits(0, p.cooldown_seconds * 1.5));
        // After another cooldown, clean probes earn re-admission.
        let now = p.cooldown_seconds * 2.5;
        assert!(t.admits(0, now));
        for _ in 0..p.close_after_probes {
            t.observe_wave(0, false, now);
        }
        assert_eq!(t.lane(0).state, BreakerState::Closed);
    }

    #[test]
    fn fault_rate_threshold_opens_without_a_consecutive_run() {
        let mut t = HealthTracker::new(
            1,
            HealthPolicy {
                ewma_alpha: 0.5,
                open_after_consecutive: 100,
                open_fault_score: 0.6,
                ..HealthPolicy::default()
            },
        );
        // Alternating failures never build a consecutive run, but the
        // EWMA climbs past the threshold.
        let mut opened = false;
        for i in 0..20 {
            let now = i as f64 * 1e-3;
            if !t.admits(0, now) {
                opened = true;
                break;
            }
            t.observe_wave(0, i % 3 != 2, now);
            if t.lane(0).state == BreakerState::Open {
                opened = true;
                break;
            }
        }
        assert!(opened, "fault score {:.2}", t.lane(0).fault_score);
    }

    #[test]
    fn death_opens_immediately_and_revival_half_opens() {
        let mut t = tracker(3);
        t.observe_death(1, 5.0);
        assert_eq!(t.lane(1).state, BreakerState::Open);
        assert!(!t.admits(1, 5.0));
        t.note_revival(1, 6.0);
        assert_eq!(t.lane(1).state, BreakerState::HalfOpen);
        assert!(t.admits(1, 6.0));
        // The revived lane still has to earn Closed.
        t.observe_wave(1, false, 6.0);
        assert_eq!(t.lane(1).state, BreakerState::HalfOpen);
        t.observe_wave(1, false, 6.0);
        assert_eq!(t.lane(1).state, BreakerState::Closed);
    }

    #[test]
    fn hedging_triggers_only_for_outlier_lanes_with_enough_samples() {
        let mut t = tracker(2);
        assert!(!t.should_hedge(0), "no samples, no hedge");
        for _ in 0..20 {
            t.observe_latency(0, 1.0e-4);
        }
        assert!(!t.should_hedge(0), "lane at the baseline");
        // Lane 1 runs far past hedge_factor × p90.
        for _ in 0..10 {
            t.observe_latency(1, 5.0e-2);
        }
        assert!(t.should_hedge(1), "ewma {:.5}", t.lane(1).latency_ewma);
        assert!(!t.should_hedge(0));
    }

    #[test]
    fn preferred_picks_the_cleanest_admitted_survivor() {
        let mut t = tracker(3);
        t.observe_wave(1, true, 0.0);
        assert_eq!(t.preferred(&[true, true, true], 0), Some(2));
        // Lane 2 dead (alive=false): fall back to the faulted lane 1.
        assert_eq!(t.preferred(&[true, true, false], 0), Some(1));
        // The open lane is never preferred.
        t.observe_death(1, 0.0);
        assert_eq!(t.preferred(&[true, true, false], 0), None);
    }

    #[test]
    fn breaker_metrics_are_emitted() {
        let ((), run) = obs::capture(|| {
            let mut t = tracker(1);
            for _ in 0..3 {
                t.observe_wave(0, true, 0.0);
            }
            assert_eq!(t.lane(0).state, BreakerState::Open);
        });
        assert_eq!(
            run.metrics.counter_sum(
                "cudasw.serve.health.breaker_transitions",
                &[("lane", "0"), ("to", "open")],
            ),
            1.0
        );
        assert_eq!(
            run.metrics
                .gauge("cudasw.serve.health.breaker", &[("lane", "0")]),
            1.0
        );
    }
}
