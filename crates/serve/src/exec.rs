//! Wave execution over resilient multi-GPU shard lanes.
//!
//! One [`Lane`] per simulated device, each owning one round-robin shard
//! of the database ([`cudasw_core::multi_gpu::shard_database`] layout:
//! shard `s` position `j` is database sequence `s + j·k`). The fast path
//! keeps the shard device-resident ([`StagedDatabase`]) so a wave of `N`
//! compatible queries stages the database **once** and pays only two
//! per-query H2D transfers each; every fault path inherits the resilient
//! driver's recovery ladder:
//!
//! * a fault inside a staged search drops the handle and reruns the
//!   query through [`CudaSwDriver::search_resilient`] (retry, backoff,
//!   OOM re-chunking, quarantine);
//! * a lane whose device dies has its shard re-dispatched to a survivor;
//! * with no survivors left the shard is computed on the host SIMD
//!   oracle (when the policy allows CPU fallback).
//!
//! On top of the per-query ladder sits cross-query service resilience
//! (see [`crate::health`]):
//!
//! * every lane carries a circuit breaker fed by its wave-level fault
//!   deltas — an open breaker routes the lane's shard work through the
//!   owed machinery instead of paying the retry ladder every wave;
//! * a *dead* lane's breaker paces revival probes
//!   ([`gpu_sim::GpuDevice::try_revive`]); a revived lane restages and
//!   re-earns trust through half-open;
//! * a straggling lane (latency EWMA past the hedge threshold) has its
//!   queries speculatively re-issued on the host SIMD engine —
//!   first-result-wins, committed exactly once;
//! * with deadline propagation on, every device dispatch carries the
//!   query's remaining EDF budget ([`RecoveryPolicy::deadline_seconds`])
//!   so retries and redispatches degrade instead of overrunning it.
//!
//! Scores are exact integer Smith-Waterman scores on every path, so a
//! served result is bit-identical to a standalone resilient search no
//! matter which ladder rung produced it.

use crate::batch::Wave;
use crate::cache::ProfileCache;
use crate::health::{HealthPolicy, HealthTracker};
use crate::request::SearchRequest;
use cudasw_core::multi_gpu::shard_database;
use cudasw_core::{
    CudaSwConfig, CudaSwDriver, RecoveryEvent, RecoveryPolicy, RecoveryReport, StagedDatabase,
};
use gpu_sim::{DeviceSpec, FaultPlan, GpuError};
use sw_db::Database;
use sw_simd::{search_uncancelled, HostFaultPlan, PoolConfig, Precision, QueryEngine};

/// One device lane: a driver bound to one database shard.
struct Lane {
    device: usize,
    driver: CudaSwDriver,
    shard: Database,
    staged: Option<StagedDatabase>,
    alive: bool,
}

/// Host SIMD throughput the hedge cost model assumes, cells/second. The
/// hedge only needs a *relative* cost to decide the first finisher, and
/// a fixed constant keeps replays deterministic.
const HEDGE_HOST_CUPS: f64 = 1.0e9;

/// A speculative host-side result for one query's shard work.
struct HedgeResult {
    /// Shard-order scores from the host SIMD engine.
    scores: Vec<i32>,
    /// Modelled host completion time, service seconds.
    seconds: f64,
}

/// What one wave took to serve.
#[derive(Debug, Clone)]
pub struct WaveOutcome {
    /// Per-request full-database scores, indexed like `wave.requests`
    /// (logical order); scores within follow `db.sequences()` order.
    pub scores: Vec<Vec<i32>>,
    /// Aggregated recovery story (all lanes, redispatch and CPU fallback
    /// included).
    pub recovery: RecoveryReport,
    /// Simulated wall-clock the wave occupied the farm: the slowest
    /// lane's staging + kernel + transfer + backoff seconds (lanes run
    /// concurrently).
    pub service_seconds: f64,
    /// DP cells computed on devices during the wave.
    pub total_cells: u64,
}

/// The scheduler's execution backend: a farm of resilient shard lanes.
pub struct WaveExecutor {
    lanes: Vec<Lane>,
    policy: RecoveryPolicy,
    db_len: usize,
    health: HealthTracker,
    propagate_deadlines: bool,
    /// Seeded fault schedule for host-lane work (hedges, fallbacks):
    /// inert in production, a storm in the chaos soak. Host lanes run in
    /// the crash-only SIMD pool, so injected panics/stalls/alloc failures
    /// are absorbed without changing a score.
    host_faults: HostFaultPlan,
}

impl WaveExecutor {
    /// Bring up `devices` lanes of `spec` over round-robin shards of
    /// `db`, installing `plans[i]` on lane `i` (missing entries get
    /// [`FaultPlan::none`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec: &DeviceSpec,
        config: &CudaSwConfig,
        db: &Database,
        devices: usize,
        plans: &[FaultPlan],
        policy: &RecoveryPolicy,
        health: &HealthPolicy,
        propagate_deadlines: bool,
        host_faults: &HostFaultPlan,
    ) -> Self {
        let devices = devices.max(1);
        let shards = shard_database(db, devices);
        let lanes: Vec<Lane> = shards
            .into_iter()
            .enumerate()
            .map(|(device, shard)| {
                let mut driver = CudaSwDriver::new(spec.clone(), config.clone());
                driver
                    .dev
                    .inject_faults(plans.get(device).cloned().unwrap_or_else(FaultPlan::none));
                driver.dev.set_integrity_checks(policy.integrity_checks);
                driver.dev.set_watchdog_cycles(policy.watchdog_cycles);
                Lane {
                    device,
                    driver,
                    shard,
                    staged: None,
                    alive: true,
                }
            })
            .collect();
        let health = HealthTracker::new(lanes.len(), health.clone());
        Self {
            lanes,
            policy: policy.clone(),
            db_len: db.len(),
            health,
            propagate_deadlines,
            host_faults: host_faults.clone(),
        }
    }

    /// Pool config for host-lane work: single worker (the service loop is
    /// a deterministic discrete-event simulation), full fault domain.
    fn host_pool_config(&self) -> PoolConfig {
        PoolConfig::new(1, Precision::Adaptive).with_fault_plan(self.host_faults.clone())
    }

    /// Number of lanes still alive.
    pub fn lanes_alive(&self) -> usize {
        self.lanes.iter().filter(|l| l.alive).count()
    }

    /// Number of lanes the executor started with.
    pub fn lanes_total(&self) -> usize {
        self.lanes.len()
    }

    /// The cross-query health tracker (breaker states, fault scores).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The absolute simulated-clock deadline for a device dispatch that
    /// starts `service_elapsed` seconds into the wave: the query's
    /// remaining EDF budget mapped onto the device clock. `None` when
    /// deadline propagation is off or the request carries no meaningful
    /// budget.
    fn query_deadline(&self, req: &SearchRequest, service_elapsed: f64) -> Option<f64> {
        if !self.propagate_deadlines {
            return None;
        }
        Some(obs::now() + (req.deadline_seconds - service_elapsed).max(0.0))
    }

    /// Serve every request of `wave` (single parameter class, enforced by
    /// the batcher) and return full-database scores per request. `now` is
    /// the service clock at dispatch — it drives breaker cooldowns,
    /// revival probes and deadline budgets.
    ///
    /// `Err` is reserved for unrecoverable conditions: a non-recoverable
    /// device error (a program bug), or every lane dead with CPU fallback
    /// disabled by the policy.
    pub fn execute_wave(
        &mut self,
        wave: &Wave,
        cache: &mut ProfileCache,
        now: f64,
    ) -> Result<WaveOutcome, GpuError> {
        let n = wave.requests.len();
        if n == 0 {
            return Ok(WaveOutcome {
                scores: Vec::new(),
                recovery: RecoveryReport::default(),
                service_seconds: 0.0,
                total_cells: 0,
            });
        }
        let sp = obs::span("wave", "serve");
        let k = self.lanes.len();
        let params = wave.requests[0].params.clone();
        // One profile per request, cache-shared across all lanes.
        let profiles: Vec<_> = wave
            .requests
            .iter()
            .map(|r| cache.get_or_build(&params.matrix, &r.query))
            .collect();

        let mut scores = vec![vec![0i32; self.db_len]; n];
        let mut recovery = RecoveryReport::default();
        let mut lane_seconds = vec![0.0f64; k];
        let mut total_cells = 0u64;
        // (lane, request-index) pairs whose shard scores are still owed
        // because the lane died mid-wave, was already dead, or is
        // quarantined by its breaker.
        let mut owed: Vec<(usize, usize)> = Vec::new();

        for (s, seconds) in lane_seconds.iter_mut().enumerate() {
            if !self.lanes[s].alive {
                // The breaker paces revival probes against the dead
                // device; until one succeeds the shard work is owed.
                if self.health.admits(s, now) && !self.try_revive_lane(s, now) {
                    self.health.observe_death(s, now);
                }
                if !self.lanes[s].alive {
                    owed.extend(wave.exec_order.iter().map(|&q| (s, q)));
                    continue;
                }
            } else if !self.health.admits(s, now) {
                // Quarantined: route around the lane, no device traffic.
                obs::counter_add("cudasw.serve.breaker_skips", &[], 1.0);
                owed.extend(wave.exec_order.iter().map(|&q| (s, q)));
                continue;
            }
            let faults_before = self.lanes[s].driver.dev.fault_stats().total();
            let prev_lane = obs::set_lane(self.lanes[s].device as u32 + 1);
            let outcome = self.run_lane_wave(
                s,
                wave,
                now,
                &params,
                &profiles,
                &mut scores,
                &mut recovery,
                seconds,
                &mut total_cells,
                &mut owed,
            );
            obs::set_lane(prev_lane);
            outcome?;
            if self.lanes[s].alive {
                let faulted = self.lanes[s].driver.dev.fault_stats().total() > faults_before;
                self.health.observe_wave(s, faulted, now);
            } else {
                self.health.observe_death(s, now);
            }
        }

        self.settle_owed(
            wave,
            now,
            &params,
            owed,
            &mut scores,
            &mut recovery,
            &mut lane_seconds,
            &mut total_cells,
        )?;

        let service_seconds = lane_seconds.iter().cloned().fold(0.0, f64::max);
        sp.end_with(&[
            ("requests", &n.to_string()),
            ("lanes", &self.lanes_alive().to_string()),
        ]);
        Ok(WaveOutcome {
            scores,
            recovery,
            service_seconds,
            total_cells,
        })
    }

    /// One revival probe against dead lane `s`: on success the lane comes
    /// back alive with no staged handle (the reset wiped device memory)
    /// and re-enters the breaker through half-open.
    fn try_revive_lane(&mut self, s: usize, now: f64) -> bool {
        if self.lanes[s].driver.dev.try_revive() {
            self.lanes[s].alive = true;
            self.lanes[s].staged = None;
            self.health.note_revival(s, now);
            obs::counter_add("cudasw.serve.lane_revivals", &[], 1.0);
            true
        } else {
            false
        }
    }

    /// Run every wave query on lane `s`, staged fast path first. Pushes
    /// un-served (lane died) work onto `owed`. Queries on a straggling
    /// lane are hedged on the host SIMD engine, first-result-wins.
    #[allow(clippy::too_many_arguments)]
    fn run_lane_wave(
        &mut self,
        s: usize,
        wave: &Wave,
        now: f64,
        params: &sw_align::SwParams,
        profiles: &[std::rc::Rc<sw_align::PackedProfile>],
        scores: &mut [Vec<i32>],
        recovery: &mut RecoveryReport,
        lane_seconds: &mut f64,
        total_cells: &mut u64,
        owed: &mut Vec<(usize, usize)>,
    ) -> Result<(), GpuError> {
        let k = self.lanes.len();
        self.lanes[s].driver.config.params = params.clone();
        if self.lanes[s].staged.is_none() {
            self.stage_lane(s, wave, now, recovery, lane_seconds)?;
        }
        for (pos, &q) in wave.exec_order.iter().enumerate() {
            let req = &wave.requests[q];
            // Hedged dispatch: a straggling lane gets a speculative host
            // twin for this query before the device attempt, budgeted
            // against the query's remaining deadline.
            let hedge = self.issue_hedge(s, req, params, now + *lane_seconds, recovery);
            let gpu_start = *lane_seconds;
            let mut served_secs: Option<f64> = None;
            // Fast path: the resident shard plus the cached profile.
            if let Some(staged) = self.lanes[s].staged.clone() {
                match self.lanes[s].driver.search_staged_with_profile(
                    &req.query,
                    &profiles[q],
                    &staged,
                ) {
                    Ok(r) => {
                        for (j, &v) in r.scores.iter().enumerate() {
                            scores[q][s + j * k] = v;
                        }
                        served_secs = Some(r.kernel_seconds() + r.transfer_seconds);
                        *total_cells += r.total_cells();
                    }
                    Err(e) if e.is_recoverable() => {
                        // The handle may have been invalidated by recovery
                        // machinery; drop it and take the resilient path.
                        self.lanes[s].staged = None;
                        obs::counter_add("cudasw.serve.staged_faults", &[], 1.0);
                    }
                    Err(e) => return Err(e),
                }
            }
            if served_secs.is_none() {
                // Resilient path: full recovery ladder on this lane's
                // shard, bounded by the query's remaining deadline budget.
                let shard = self.lanes[s].shard.clone();
                let policy = RecoveryPolicy {
                    deadline_seconds: self.query_deadline(req, now + *lane_seconds),
                    ..self.lane_policy()
                };
                match self.lanes[s]
                    .driver
                    .search_resilient(&req.query, &shard, &policy)
                {
                    Ok(rr) => {
                        for (j, &v) in rr.result.scores.iter().enumerate() {
                            scores[q][s + j * k] = v;
                        }
                        served_secs = Some(
                            rr.result.kernel_seconds()
                                + rr.result.transfer_seconds
                                + rr.recovery.backoff_seconds,
                        );
                        *total_cells += rr.result.total_cells();
                        recovery.merge(&rr.recovery);
                    }
                    Err(e) if e.is_recoverable() => {
                        // Lane is gone. If a hedge is in flight it covers
                        // this query; the rest of the wave is owed to the
                        // survivors either way.
                        self.lanes[s].alive = false;
                        obs::counter_add("cudasw.serve.lane_deaths", &[], 1.0);
                        let rest = if let Some(h) = hedge {
                            self.commit_hedge(s, q, &h, scores, recovery);
                            *lane_seconds = gpu_start + h.seconds;
                            pos + 1
                        } else {
                            pos
                        };
                        owed.extend(wave.exec_order[rest..].iter().map(|&qq| (s, qq)));
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                }
            }
            // Exactly-once commitment: the first finisher's result stands.
            // Scores are bit-identical on both paths, so "which won" only
            // decides the lane's clock (and the degraded flag).
            // Unreachable fallback: every path above either set
            // `served_secs` or returned.
            let Some(gpu_secs) = served_secs else {
                continue;
            };
            match hedge {
                Some(h) if h.seconds < gpu_secs => {
                    self.commit_hedge(s, q, &h, scores, recovery);
                    *lane_seconds = gpu_start + h.seconds;
                }
                Some(_) => {
                    obs::counter_add("cudasw.serve.hedge.wins", &[("winner", "lane")], 1.0);
                    *lane_seconds = gpu_start + gpu_secs;
                }
                None => *lane_seconds = gpu_start + gpu_secs,
            }
            self.health.observe_latency(s, *lane_seconds - gpu_start);
        }
        Ok(())
    }

    /// Speculatively compute `req`'s shard scores on the host SIMD engine
    /// when lane `s` is straggling. Returns `None` when the hedge trigger
    /// is quiet — or when the modelled host cost would overrun the
    /// query's remaining deadline budget (a hedge that cannot finish in
    /// budget only burns CPU; the denial is the host-lane twin of the
    /// device ladder's `BudgetDenied`).
    fn issue_hedge(
        &mut self,
        s: usize,
        req: &SearchRequest,
        params: &sw_align::SwParams,
        service_elapsed: f64,
        recovery: &mut RecoveryReport,
    ) -> Option<HedgeResult> {
        if !self.health.should_hedge(s) || self.lanes[s].shard.is_empty() {
            return None;
        }
        let shard = &self.lanes[s].shard;
        let seconds = shard.total_cells(req.query.len()) as f64 / HEDGE_HOST_CUPS;
        if self.propagate_deadlines {
            let left = req.deadline_seconds - service_elapsed;
            if seconds > left {
                recovery.note_host_budget_denied(seconds, left);
                return None;
            }
        }
        obs::counter_add("cudasw.serve.hedge.issued", &[], 1.0);
        // The hedge runs inside the crash-only pool: panic quarantine,
        // admission, and any injected host faults, bit-identical scores.
        let engine = QueryEngine::new(params.clone(), &req.query);
        let r = search_uncancelled(&engine, shard.sequences(), &self.host_pool_config());
        sw_simd::record_stats(engine.kind(), &r.stats);
        Some(HedgeResult {
            scores: r.scores,
            seconds,
        })
    }

    /// Commit a winning hedge for query `q` on lane `s`'s shard slots.
    fn commit_hedge(
        &mut self,
        s: usize,
        q: usize,
        hedge: &HedgeResult,
        scores: &mut [Vec<i32>],
        recovery: &mut RecoveryReport,
    ) {
        let k = self.lanes.len();
        for (j, &v) in hedge.scores.iter().enumerate() {
            scores[q][s + j * k] = v;
        }
        recovery.degraded = true;
        obs::counter_add("cudasw.serve.hedge.wins", &[("winner", "host")], 1.0);
    }

    /// Stage lane `s`'s shard, retrying transient faults with backoff.
    /// On persistent failure the lane either dies (device loss / retries
    /// exhausted) or falls back to un-staged per-query searches (OOM and
    /// everything else) — both leave `staged` as `None`. Staging retries
    /// are budgeted against the wave's most urgent deadline: a denied
    /// retry serves the wave un-staged instead of backing off.
    fn stage_lane(
        &mut self,
        s: usize,
        wave: &Wave,
        now: f64,
        recovery: &mut RecoveryReport,
        lane_seconds: &mut f64,
    ) -> Result<(), GpuError> {
        let mut attempt = 0u32;
        // The wave is EDF-sorted, so requests[0] carries the tightest
        // deadline — the budget staging must respect.
        let deadline = self.query_deadline(&wave.requests[0], now);
        loop {
            let shard = self.lanes[s].shard.clone();
            match self.lanes[s].driver.stage_database(&shard) {
                Ok(staged) => {
                    *lane_seconds += staged.staging_seconds();
                    self.lanes[s].staged = Some(staged);
                    obs::counter_add("cudasw.serve.db_stagings", &[], 1.0);
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    let backoff =
                        self.policy.backoff_base_seconds * f64::from(1u32 << attempt.min(20));
                    if deadline.is_some_and(|d| obs::now() + backoff > d) {
                        // Budget exhausted: no more staging retries — the
                        // wave runs un-staged (per-query searches still
                        // respect their own budgets).
                        recovery.budget_denied_retries += 1;
                        recovery.events.push(RecoveryEvent::BudgetDenied {
                            error: e.to_string(),
                        });
                        obs::counter_add("cudasw.serve.budget_denied_stagings", &[], 1.0);
                        obs::counter_add("cudasw.serve.staging_fallbacks", &[], 1.0);
                        return Ok(());
                    }
                    attempt += 1;
                    recovery.retries += 1;
                    recovery.backoff_seconds += backoff;
                    recovery.events.push(RecoveryEvent::Retry {
                        error: e.to_string(),
                        attempt,
                    });
                    *lane_seconds += backoff;
                    obs::counter_add("cudasw.serve.staging_retries", &[], 1.0);
                    obs::advance(backoff);
                }
                Err(GpuError::DeviceLost) => {
                    self.lanes[s].alive = false;
                    obs::counter_add("cudasw.serve.lane_deaths", &[], 1.0);
                    return Ok(());
                }
                Err(e) if e.is_recoverable() => {
                    // OOM or retries exhausted: serve this wave un-staged
                    // (search_resilient re-chunks around OOM itself).
                    obs::counter_add("cudasw.serve.staging_fallbacks", &[], 1.0);
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Serve shard work owed by dead or quarantined lanes: re-dispatch to
    /// the healthiest admitted survivor, falling back to the host SIMD
    /// oracle when no lane is left (or the deadline budget is spent).
    #[allow(clippy::too_many_arguments)]
    fn settle_owed(
        &mut self,
        wave: &Wave,
        now: f64,
        params: &sw_align::SwParams,
        owed: Vec<(usize, usize)>,
        scores: &mut [Vec<i32>],
        recovery: &mut RecoveryReport,
        lane_seconds: &mut [f64],
        total_cells: &mut u64,
    ) -> Result<(), GpuError> {
        let k = self.lanes.len();
        for (dead, q) in owed {
            let req = &wave.requests[q];
            let shard = self.lanes[dead].shard.clone();
            if shard.is_empty() {
                continue;
            }
            let mut served = false;
            // Absolute budget for this query; once spent, stop burning
            // device time on redispatch and degrade straight to the host.
            let budget = if self.policy.cpu_fallback {
                self.query_deadline(req, now)
            } else {
                None
            };
            while !budget.is_some_and(|d| obs::now() >= d) {
                // The health tracker ranks survivors by fault score;
                // lanes with open breakers only take owed work when
                // nothing healthier remains (better a suspect device
                // than a guaranteed host-speed answer).
                let alive: Vec<bool> = self.lanes.iter().map(|l| l.alive).collect();
                let Some(t) = self
                    .health
                    .preferred(&alive, dead)
                    .or_else(|| (0..k).find(|&t| t != dead && self.lanes[t].alive))
                else {
                    break;
                };
                let prev_lane = obs::set_lane(self.lanes[t].device as u32 + 1);
                let policy = RecoveryPolicy {
                    deadline_seconds: self.query_deadline(req, now + lane_seconds[t]),
                    ..self.lane_policy()
                };
                self.lanes[t].driver.config.params = params.clone();
                let attempt = self.lanes[t]
                    .driver
                    .search_resilient(&req.query, &shard, &policy);
                obs::set_lane(prev_lane);
                match attempt {
                    Ok(rr) => {
                        // search_resilient reset the survivor's allocator.
                        self.lanes[t].staged = None;
                        for (j, &v) in rr.result.scores.iter().enumerate() {
                            scores[q][dead + j * k] = v;
                        }
                        lane_seconds[t] += rr.result.kernel_seconds()
                            + rr.result.transfer_seconds
                            + rr.recovery.backoff_seconds;
                        *total_cells += rr.result.total_cells();
                        recovery.merge(&rr.recovery);
                        recovery.shard_redispatches += 1;
                        recovery.events.push(RecoveryEvent::ShardRedispatch {
                            from_device: self.lanes[dead].device,
                            to_device: self.lanes[t].device,
                            sequences: shard.len(),
                        });
                        obs::counter_add("cudasw.serve.redispatches", &[], 1.0);
                        served = true;
                        break;
                    }
                    Err(e) if e.is_recoverable() => {
                        self.lanes[t].alive = false;
                        obs::counter_add("cudasw.serve.lane_deaths", &[], 1.0);
                        self.health.observe_death(t, now);
                    }
                    Err(e) => return Err(e),
                }
            }
            if served {
                continue;
            }
            // No survivors (or no budget left for device work): host SIMD
            // oracle, if the policy allows it.
            if !self.policy.cpu_fallback {
                return Err(GpuError::DeviceLost);
            }
            // One dispatched engine per owed shard: profiles are built
            // once and reused across the shard's sequences. The fallback
            // runs in the crash-only pool — the service's last line of
            // defence must itself survive panics and pressure.
            let engine = QueryEngine::new(params.clone(), &req.query);
            let r = search_uncancelled(&engine, shard.sequences(), &self.host_pool_config());
            for (j, &v) in r.scores.iter().enumerate() {
                scores[q][dead + j * k] = v;
            }
            sw_simd::record_stats(engine.kind(), &r.stats);
            recovery.cpu_fallback_seqs += shard.len() as u64;
            recovery.degraded = true;
            recovery.events.push(RecoveryEvent::CpuFallback {
                sequences: shard.len(),
            });
            obs::counter_add("cudasw.serve.cpu_fallback_seqs", &[], shard.len() as f64);
        }
        Ok(())
    }

    /// The per-lane recovery policy: like the service policy, but a dead
    /// device surfaces as `Err` so the executor can re-dispatch the shard
    /// instead of silently computing it on the CPU.
    fn lane_policy(&self) -> RecoveryPolicy {
        RecoveryPolicy {
            cpu_fallback: false,
            ..self.policy.clone()
        }
    }
}
