//! The query-profile LRU cache.
//!
//! Building a [`PackedProfile`] walks `alphabet × query` once per search;
//! in a serving workload the same query (same residues, same matrix)
//! recurs — popular proteins, retried requests, multi-tenant fan-in. The
//! cache is keyed by `(matrix name, query residues)`: that pair fully
//! determines the profile, so a hit is exact, and every lane of a wave
//! shares the one cached profile.

use std::rc::Rc;
use sw_align::{PackedProfile, ScoringMatrix};

/// Cache key: matrix name + query residues (together they determine the
/// profile bit-for-bit).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProfileKey {
    matrix: String,
    query: Vec<u8>,
}

/// An LRU cache of packed query profiles.
///
/// Counters: `cudasw.serve.cache.hits` / `.misses` / `.evictions`.
#[derive(Debug)]
pub struct ProfileCache {
    capacity: usize,
    /// Most-recently-used first. Linear scan is fine at serving-cache
    /// sizes (tens of entries); no external LRU dependency exists in the
    /// offline build.
    entries: Vec<(ProfileKey, Rc<PackedProfile>)>,
    hits: u64,
    misses: u64,
}

impl ProfileCache {
    /// An empty cache holding at most `capacity` profiles. A capacity of
    /// zero disables caching (every lookup is a miss, nothing is kept).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Profiles currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that built a profile.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction so far (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The profile of `query` under `matrix`, from cache or freshly
    /// built (and cached, evicting the least-recently-used entry if the
    /// cache is full).
    pub fn get_or_build(&mut self, matrix: &ScoringMatrix, query: &[u8]) -> Rc<PackedProfile> {
        let key = ProfileKey {
            matrix: matrix.name().to_string(),
            query: query.to_vec(),
        };
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            obs::counter_add("cudasw.serve.cache.hits", &[], 1.0);
            let entry = self.entries.remove(pos);
            let profile = Rc::clone(&entry.1);
            self.entries.insert(0, entry);
            return profile;
        }
        self.misses += 1;
        obs::counter_add("cudasw.serve.cache.misses", &[], 1.0);
        let profile = Rc::new(PackedProfile::build(matrix, query));
        if self.capacity == 0 {
            return profile;
        }
        if self.entries.len() >= self.capacity {
            self.entries.pop();
            obs::counter_add("cudasw.serve.cache.evictions", &[], 1.0);
        }
        self.entries.insert(0, (key, Rc::clone(&profile)));
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ScoringMatrix {
        ScoringMatrix::blosum62()
    }

    #[test]
    fn repeated_query_hits() {
        let mut c = ProfileCache::new(4);
        let q = vec![1u8, 2, 3];
        let a = c.get_or_build(&matrix(), &q);
        let b = c.get_or_build(&matrix(), &q);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_matrix_is_a_different_entry() {
        let mut c = ProfileCache::new(4);
        let q = vec![1u8, 2, 3];
        let a = c.get_or_build(&ScoringMatrix::blosum62(), &q);
        let b = c.get_or_build(&ScoringMatrix::blosum50(), &q);
        assert!(!Rc::ptr_eq(&a, &b));
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ProfileCache::new(2);
        let (q1, q2, q3) = (vec![1u8], vec![2u8], vec![3u8]);
        c.get_or_build(&matrix(), &q1);
        c.get_or_build(&matrix(), &q2);
        c.get_or_build(&matrix(), &q1); // q1 now most recent
        c.get_or_build(&matrix(), &q3); // evicts q2
        assert_eq!(c.len(), 2);
        c.get_or_build(&matrix(), &q1);
        assert_eq!(c.hits(), 2, "q1 stayed cached");
        c.get_or_build(&matrix(), &q2);
        assert_eq!(c.misses(), 4, "q2 was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ProfileCache::new(0);
        let q = vec![1u8, 2];
        c.get_or_build(&matrix(), &q);
        c.get_or_build(&matrix(), &q);
        assert_eq!((c.hits(), c.misses()), (0, 2));
        assert!(c.is_empty());
    }
}
