//! Admission control: a bounded queue with per-tenant quotas and
//! explicit backpressure.
//!
//! An open-loop arrival stream does not slow down when the device farm
//! falls behind, so the service must either bound its queue or let
//! latency grow without limit. [`AdmissionQueue`] makes the bound (and
//! per-tenant fairness) explicit: every arrival is either admitted or
//! shed with a [`ShedReason`] the caller can surface to the client.

use crate::request::SearchRequest;
use std::collections::HashMap;

/// Admission-control knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum requests queued at once (waves in flight excluded: a
    /// dispatched request has left the queue).
    pub queue_capacity: usize,
    /// Maximum requests one tenant may have queued at once.
    pub tenant_quota: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            tenant_quota: 64,
        }
    }
}

/// Why a request was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue is at [`AdmissionConfig::queue_capacity`].
    QueueFull,
    /// The tenant is at [`AdmissionConfig::tenant_quota`].
    TenantQuota,
    /// The request's deadline passed while it was still queued
    /// (load-shedding mode only — see `ServeConfig::shed_expired`).
    DeadlineExpired,
}

impl ShedReason {
    /// Metric-label form.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::TenantQuota => "tenant_quota",
            ShedReason::DeadlineExpired => "deadline_expired",
        }
    }
}

/// The bounded request queue behind the admission controller.
///
/// Emits `cudasw.serve.admitted` / `cudasw.serve.shed{reason}` counters
/// and keeps the `cudasw.serve.queue_depth` gauge current.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    queued: Vec<SearchRequest>,
    per_tenant: HashMap<String, usize>,
}

impl AdmissionQueue {
    /// An empty queue under `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            queued: Vec::new(),
            per_tenant: HashMap::new(),
        }
    }

    /// Requests currently queued.
    pub fn depth(&self) -> usize {
        self.queued.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }

    /// The queued requests, admission order.
    pub fn requests(&self) -> &[SearchRequest] {
        &self.queued
    }

    /// Admit `request`, or shed it with a reason.
    pub fn offer(&mut self, request: SearchRequest) -> Result<(), ShedReason> {
        if self.queued.len() >= self.config.queue_capacity {
            self.note_shed(ShedReason::QueueFull);
            return Err(ShedReason::QueueFull);
        }
        let tenant_depth = self.per_tenant.get(&request.tenant).copied().unwrap_or(0);
        if tenant_depth >= self.config.tenant_quota {
            self.note_shed(ShedReason::TenantQuota);
            return Err(ShedReason::TenantQuota);
        }
        *self.per_tenant.entry(request.tenant.clone()).or_insert(0) += 1;
        self.queued.push(request);
        obs::counter_add("cudasw.serve.admitted", &[], 1.0);
        self.note_depth();
        Ok(())
    }

    /// Remove and return the queued requests at `indices` (ascending,
    /// deduplicated by the caller — the batcher), preserving the relative
    /// order of what remains.
    pub fn take(&mut self, indices: &[usize]) -> Vec<SearchRequest> {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "ascending indices");
        let mut taken = Vec::with_capacity(indices.len());
        for &i in indices.iter().rev() {
            let req = self.queued.remove(i);
            if let Some(n) = self.per_tenant.get_mut(&req.tenant) {
                *n -= 1;
            }
            taken.push(req);
        }
        taken.reverse();
        self.note_depth();
        taken
    }

    /// Remove and return every queued request whose deadline is at or
    /// before `now`, releasing tenant quotas and emitting shed counters.
    /// The service calls this each scheduler step when load-shedding is
    /// enabled; with it off (the default) expired requests are served
    /// late and flagged instead.
    pub fn take_expired(&mut self, now: f64) -> Vec<SearchRequest> {
        let mut expired = Vec::new();
        let mut i = 0;
        while i < self.queued.len() {
            if self.queued[i].deadline_seconds <= now {
                let req = self.queued.remove(i);
                if let Some(n) = self.per_tenant.get_mut(&req.tenant) {
                    *n -= 1;
                }
                self.note_shed(ShedReason::DeadlineExpired);
                expired.push(req);
            } else {
                i += 1;
            }
        }
        if !expired.is_empty() {
            self.note_depth();
        }
        expired
    }

    fn note_shed(&self, reason: ShedReason) {
        obs::counter_add("cudasw.serve.shed", &[("reason", reason.as_str())], 1.0);
    }

    fn note_depth(&self) {
        obs::gauge_set("cudasw.serve.queue_depth", &[], self.queued.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::SwParams;

    fn req(id: u64, tenant: &str) -> SearchRequest {
        SearchRequest {
            id,
            tenant: tenant.to_string(),
            query: vec![0, 1, 2],
            params: SwParams::cudasw_default(),
            arrival_seconds: id as f64,
            deadline_seconds: id as f64 + 1.0,
        }
    }

    #[test]
    fn queue_capacity_sheds() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            queue_capacity: 2,
            tenant_quota: 10,
        });
        assert!(q.offer(req(0, "a")).is_ok());
        assert!(q.offer(req(1, "b")).is_ok());
        assert_eq!(q.offer(req(2, "c")), Err(ShedReason::QueueFull));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn tenant_quota_sheds_only_the_noisy_tenant() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            queue_capacity: 10,
            tenant_quota: 1,
        });
        assert!(q.offer(req(0, "noisy")).is_ok());
        assert_eq!(q.offer(req(1, "noisy")), Err(ShedReason::TenantQuota));
        assert!(q.offer(req(2, "quiet")).is_ok());
    }

    #[test]
    fn take_removes_by_index() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            queue_capacity: 10,
            tenant_quota: 10,
        });
        for id in 0..5 {
            q.offer(req(id, "t")).unwrap();
        }
        let taken = q.take(&[1, 3]);
        assert_eq!(taken.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(
            q.requests().iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        // Quota was released: two more fit under a quota of 10 anyway,
        // but per-tenant accounting must reflect the removal.
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn take_expired_sheds_only_past_deadlines_and_frees_quota() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            queue_capacity: 10,
            tenant_quota: 2,
        });
        // req(id, _) has deadline id + 1.0.
        q.offer(req(0, "t")).unwrap();
        q.offer(req(5, "t")).unwrap();
        let expired = q.take_expired(2.0);
        assert_eq!(expired.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0]);
        assert_eq!(q.requests().iter().map(|r| r.id).collect::<Vec<_>>(), [5]);
        // Quota released: tenant "t" can queue another request.
        assert!(q.offer(req(7, "t")).is_ok());
        // Nothing else expires at the same instant.
        assert!(q.take_expired(2.0).is_empty());
    }

    #[test]
    fn quota_frees_after_take() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            queue_capacity: 10,
            tenant_quota: 1,
        });
        q.offer(req(0, "t")).unwrap();
        assert_eq!(q.offer(req(1, "t")), Err(ShedReason::TenantQuota));
        q.take(&[0]);
        assert!(q.offer(req(2, "t")).is_ok());
    }
}
