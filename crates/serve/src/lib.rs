//! `sw-serve`: a deterministic query-serving subsystem over the
//! resilient CUDASW++ driver.
//!
//! The paper's kernels answer one query; a production deployment answers
//! a *stream*. This crate adds the layer between the two, entirely on
//! the simulated clock so every run is reproducible:
//!
//! * [`admission`] — a bounded request queue with per-tenant quotas and
//!   explicit shed reasons (backpressure an open-loop arrival stream can
//!   observe);
//! * [`batch`] — the deadline-aware batcher: earliest-deadline-first
//!   waves of parameter-compatible queries, length-sorted for execution
//!   ([`sw_db::sort_by_length`]);
//! * [`cache`] — an LRU cache of packed query profiles keyed by
//!   `(matrix, query)`;
//! * [`exec`] — wave execution over per-device shard lanes that keep the
//!   database device-resident
//!   ([`cudasw_core::CudaSwDriver::stage_database`]) and inherit the
//!   resilient driver's full recovery ladder, shard re-dispatch and host
//!   fallback included;
//! * [`service`] — the discrete-event scheduler tying them together and
//!   replaying seeded arrival traces ([`request::TraceConfig`]).
//!
//! Metrics (`cudasw.serve.*`): `admitted`, `shed{reason}`, `queue_depth`
//! (gauge), `waves`, `wave_requests`, `completed`, `latency_seconds`
//! (histogram), `cache.hits/misses/evictions`, `db_stagings`,
//! `staging_retries`, `staging_fallbacks`, `staged_faults`,
//! `lane_deaths`, `redispatches`, `cpu_fallback_seqs`. Spans:
//! `run_trace`, `wave` (category `serve`). See DESIGN.md §11.

pub mod admission;
pub mod batch;
pub mod cache;
pub mod exec;
pub mod request;
pub mod service;

pub use admission::{AdmissionConfig, AdmissionQueue, ShedReason};
pub use batch::{BatchPolicy, Batcher, Wave};
pub use cache::ProfileCache;
pub use exec::{WaveExecutor, WaveOutcome};
pub use request::{ParamsKey, SearchRequest, TraceConfig};
pub use service::{Response, SearchService, ServeConfig, ServeReport, Shed};
