//! `sw-serve`: a deterministic query-serving subsystem over the
//! resilient CUDASW++ driver.
//!
//! The paper's kernels answer one query; a production deployment answers
//! a *stream*. This crate adds the layer between the two, entirely on
//! the simulated clock so every run is reproducible:
//!
//! * [`admission`] — a bounded request queue with per-tenant quotas and
//!   explicit shed reasons (backpressure an open-loop arrival stream can
//!   observe);
//! * [`batch`] — the deadline-aware batcher: earliest-deadline-first
//!   waves of parameter-compatible queries, length-sorted for execution
//!   ([`sw_db::sort_by_length`]);
//! * [`cache`] — an LRU cache of packed query profiles keyed by
//!   `(matrix, query)`;
//! * [`clock`] — the [`clock::ServiceClock`] timebase abstraction:
//!   the discrete-event [`clock::SimulatedClock`] (this crate's native
//!   mode) and the monotonic [`clock::WallClock`] the `sw-gateway`
//!   crate serves real time on;
//! * [`exec`] — wave execution over per-device shard lanes that keep the
//!   database device-resident
//!   ([`cudasw_core::CudaSwDriver::stage_database`]) and inherit the
//!   resilient driver's full recovery ladder, shard re-dispatch and host
//!   fallback included;
//! * [`health`] — cross-query lane health: EWMA fault/latency scores,
//!   per-lane circuit breakers (closed → open → half-open → closed),
//!   dead-lane revival probes, and the hedged-dispatch trigger;
//! * [`service`] — the discrete-event scheduler tying them together and
//!   replaying seeded arrival traces ([`request::TraceConfig`]).
//!
//! Metrics (`cudasw.serve.*`): `admitted`, `shed{reason}`, `queue_depth`
//! (gauge), `waves`, `wave_requests`, `completed`, `latency_seconds`
//! (histogram), `cache.hits/misses/evictions`, `db_stagings`,
//! `staging_retries`, `staging_fallbacks`, `staged_faults`,
//! `lane_deaths`, `lane_revivals`, `redispatches`, `cpu_fallback_seqs`,
//! `recovery.degraded{cause}`, `budget_denied_stagings`,
//! `breaker_skips`, `hedge.issued`, `hedge.wins{winner}`,
//! `health.fault_score{lane}` / `health.latency_ewma{lane}` /
//! `health.breaker{lane}` (gauges),
//! `health.breaker_transitions{lane,to}`. Spans: `run_trace`, `wave`
//! (category `serve`). See DESIGN.md §11 and §13.
// Crash-only discipline: library code may not panic through `unwrap` /
// `expect` — every fallible path must recover or return a typed error.
// (Unit tests, compiled with `cfg(test)`, are exempt.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod batch;
pub mod cache;
pub mod clock;
pub mod exec;
pub mod health;
pub mod request;
pub mod service;

pub use admission::{AdmissionConfig, AdmissionQueue, ShedReason};
pub use batch::{BatchPolicy, Batcher, Wave};
pub use cache::ProfileCache;
pub use clock::{ServiceClock, SimulatedClock, WallClock};
pub use exec::{WaveExecutor, WaveOutcome};
pub use health::{BreakerState, HealthPolicy, HealthTracker, LaneHealth};
pub use request::{ParamsKey, SearchRequest, TraceConfig};
pub use service::{Response, SearchService, ServeConfig, ServeReport, Shed};
