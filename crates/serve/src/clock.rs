//! The service clock: one timebase abstraction for both execution modes.
//!
//! Everything above wave execution — admission, the EDF batcher, deadline
//! budgets, breaker cooldowns, hedging triggers — reasons about time as
//! `f64` seconds. [`ServiceClock`] makes the *source* of those seconds
//! pluggable:
//!
//! * [`SimulatedClock`] — the discrete-event timebase the pinned serve /
//!   soak contracts run on. `advance` jumps the clock by a modeled
//!   duration; `wait_until` jumps it to the next event. Runs are
//!   bit-reproducible because no wall time is ever read.
//! * [`WallClock`] — monotonic real time ([`std::time::Instant`]) for the
//!   `sw-gateway` wall-clock mode. `advance` is a no-op (the modeled
//!   duration already elapsed for real while the work ran) and
//!   `wait_until` sleeps the calling thread.
//!
//! The trait is object-safe and `Send + Sync` so one clock can be shared
//! by a dispatcher thread and its lane workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic source of service-time seconds.
///
/// Implementations must be monotone: `now()` never decreases, `advance`
/// and `wait_until` never move time backwards.
pub trait ServiceClock: Send + Sync {
    /// Seconds elapsed on this clock.
    fn now(&self) -> f64;

    /// Account a modeled duration of `seconds`. The simulated clock
    /// jumps; the wall clock does nothing (real time already passed
    /// while the modeled work executed).
    fn advance(&self, seconds: f64);

    /// Block (wall) or jump (simulated) until `instant`; instants in the
    /// past are a no-op. Returns immediately on the simulated clock.
    fn wait_until(&self, instant: f64);

    /// True for real wall time — callers that would busy-spin on a
    /// simulated clock (e.g. bounded condvar waits) can branch on this.
    fn is_wall(&self) -> bool {
        false
    }
}

/// The discrete-event clock: an `f64` stored as atomic bits so a shared
/// reference is enough to drive it (the trait takes `&self`).
#[derive(Debug, Default)]
pub struct SimulatedClock {
    bits: AtomicU64,
}

impl SimulatedClock {
    /// A simulated clock at `t = 0`.
    pub fn new() -> Self {
        Self::starting_at(0.0)
    }

    /// A simulated clock already advanced to `start` seconds.
    pub fn starting_at(start: f64) -> Self {
        Self {
            bits: AtomicU64::new(start.to_bits()),
        }
    }

    fn store(&self, t: f64) {
        self.bits.store(t.to_bits(), Ordering::SeqCst);
    }
}

impl ServiceClock for SimulatedClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }

    fn advance(&self, seconds: f64) {
        self.store(self.now() + seconds);
    }

    fn wait_until(&self, instant: f64) {
        // `max` keeps monotonicity bit-for-bit identical to the
        // pre-trait scheduler's `target.max(now)` arithmetic.
        self.store(instant.max(self.now()));
    }
}

/// Monotonic wall time, measured from the clock's construction.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose second `0.0` is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceClock for WallClock {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn advance(&self, _seconds: f64) {
        // Real time elapsed while the modeled work ran; nothing to do.
    }

    fn wait_until(&self, instant: f64) {
        let now = self.now();
        if instant > now {
            std::thread::sleep(Duration::from_secs_f64(instant - now));
        }
    }

    fn is_wall(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_clock_jumps_and_stays_monotone() {
        let c = SimulatedClock::starting_at(2.0);
        assert_eq!(c.now(), 2.0);
        c.advance(0.5);
        assert_eq!(c.now(), 2.5);
        c.wait_until(4.0);
        assert_eq!(c.now(), 4.0);
        // Instants in the past never move the clock backwards.
        c.wait_until(1.0);
        assert_eq!(c.now(), 4.0);
        assert!(!c.is_wall());
    }

    #[test]
    fn simulated_clock_is_bit_exact() {
        // Arbitrary f64s must round-trip through the atomic bits exactly:
        // the pinned soak contract depends on it.
        let c = SimulatedClock::new();
        let t = 0.1f64 + 0.2f64; // famously not 0.3
        c.wait_until(t);
        assert_eq!(c.now().to_bits(), t.to_bits());
    }

    #[test]
    fn wall_clock_moves_forward_and_sleeps() {
        let c = WallClock::new();
        let a = c.now();
        c.wait_until(a + 0.01);
        let b = c.now();
        assert!(b - a >= 0.009, "wait_until slept {}s", b - a);
        // advance is a no-op on wall time.
        c.advance(1000.0);
        assert!(c.now() < a + 10.0);
        assert!(c.is_wall());
    }

    #[test]
    fn clock_is_object_safe_and_shareable() {
        let c: std::sync::Arc<dyn ServiceClock> = std::sync::Arc::new(SimulatedClock::new());
        let c2 = c.clone();
        let h = std::thread::spawn(move || c2.advance(1.0));
        h.join().unwrap();
        assert_eq!(c.now(), 1.0);
    }
}
