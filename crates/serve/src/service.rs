//! The search service: admission → batching → wave execution, on the
//! simulated clock.
//!
//! [`SearchService::run_trace`] is a deterministic discrete-event loop
//! over an open-loop arrival trace: arrivals are admitted (or shed) the
//! instant the clock passes them, the batcher forms waves, and each
//! dispatched wave advances the clock by its service time. Every
//! admitted request is answered exactly once; a request's latency is
//! `completion − arrival` on the simulated clock.

use crate::admission::{AdmissionConfig, AdmissionQueue, ShedReason};
use crate::batch::{BatchPolicy, Batcher};
use crate::cache::ProfileCache;
use crate::clock::{ServiceClock, SimulatedClock};
use crate::exec::WaveExecutor;
use crate::health::{HealthPolicy, HealthTracker};
use crate::request::SearchRequest;
use cudasw_core::{CudaSwConfig, RecoveryPolicy, RecoveryReport};
use gpu_sim::{DeviceSpec, FaultPlan, GpuError};
use sw_db::Database;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated devices to shard the database over.
    pub devices: usize,
    /// Admission-control bounds.
    pub admission: AdmissionConfig,
    /// Wave-forming policy.
    pub batch: BatchPolicy,
    /// Query-profile cache capacity (entries).
    pub cache_capacity: usize,
    /// Recovery policy inherited by every lane.
    pub recovery: RecoveryPolicy,
    /// Driver configuration (threshold, kernel choice, launch shapes).
    pub search: CudaSwConfig,
    /// Lane-health policy: circuit breakers, revival pacing, hedging.
    pub health: HealthPolicy,
    /// Derive per-query deadline budgets and pass them down the recovery
    /// ladder (retries/stagings/redispatch degrade instead of overrun).
    pub propagate_deadlines: bool,
    /// Shed queued requests whose deadline has already passed instead of
    /// serving them late. Off by default: the pinned contract is that
    /// deadline misses are flagged, not dropped.
    pub shed_expired: bool,
    /// Seeded fault schedule for host-lane work (hedges, CPU fallbacks):
    /// inert by default, a storm in the chaos soak. Host lanes run inside
    /// the crash-only SIMD pool, so injected faults are absorbed without
    /// changing any served score.
    pub host_faults: sw_simd::HostFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            devices: 2,
            admission: AdmissionConfig::default(),
            batch: BatchPolicy::default(),
            cache_capacity: 32,
            recovery: RecoveryPolicy::default(),
            search: CudaSwConfig::improved(),
            health: HealthPolicy::default(),
            propagate_deadlines: true,
            shed_expired: false,
            host_faults: sw_simd::HostFaultPlan::none(),
        }
    }
}

/// One answered request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// The tenant it belonged to.
    pub tenant: String,
    /// Full-database scores, `db.sequences()` order.
    pub scores: Vec<i32>,
    /// `completion − arrival`, simulated seconds.
    pub latency_seconds: f64,
    /// True when the response missed its deadline (served anyway).
    pub deadline_missed: bool,
    /// True when part of this response's wave was served off-device
    /// (CPU fallback, quarantine recompute, or a winning host hedge).
    pub degraded: bool,
}

/// One shed request.
#[derive(Debug, Clone)]
pub struct Shed {
    /// The request id.
    pub id: u64,
    /// The tenant it belonged to.
    pub tenant: String,
    /// Why admission refused it.
    pub reason: crate::admission::ShedReason,
}

/// Everything a trace replay produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Answered requests, completion order.
    pub responses: Vec<Response>,
    /// Refused requests, arrival order.
    pub sheds: Vec<Shed>,
    /// Waves dispatched.
    pub waves: u64,
    /// DP cells computed across all waves.
    pub total_cells: u64,
    /// Simulated time from first arrival processing to last completion.
    pub makespan_seconds: f64,
    /// Aggregated recovery story across all waves.
    pub recovery: RecoveryReport,
}

impl ServeReport {
    /// Aggregate device throughput over the makespan, GCUPS.
    pub fn gcups(&self) -> f64 {
        if self.makespan_seconds <= 0.0 {
            0.0
        } else {
            self.total_cells as f64 / self.makespan_seconds / 1.0e9
        }
    }

    /// Completed queries per simulated second of makespan.
    pub fn queries_per_second(&self) -> f64 {
        if self.makespan_seconds <= 0.0 {
            0.0
        } else {
            self.responses.len() as f64 / self.makespan_seconds
        }
    }

    /// Fraction of offered requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.responses.len() + self.sheds.len();
        if offered == 0 {
            0.0
        } else {
            self.sheds.len() as f64 / offered as f64
        }
    }

    /// Latency at percentile `p` ∈ [0, 100] (nearest-rank on exact
    /// simulated latencies; 0 when nothing completed).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.responses.iter().map(|r| r.latency_seconds).collect();
        lat.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.clamp(1, lat.len()) - 1]
    }

    /// Fraction of answered requests that missed their deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let missed = self.responses.iter().filter(|r| r.deadline_missed).count();
        missed as f64 / self.responses.len() as f64
    }

    /// Answered requests whose wave was partly served off-device.
    pub fn degraded_responses(&self) -> usize {
        self.responses.iter().filter(|r| r.degraded).count()
    }

    /// Fraction of answered requests that were degraded.
    pub fn degraded_rate(&self) -> f64 {
        if self.responses.is_empty() {
            0.0
        } else {
            self.degraded_responses() as f64 / self.responses.len() as f64
        }
    }
}

/// The serving subsystem: admission queue, batcher, profile cache, and
/// the lane executor, advanced by a discrete-event scheduler.
pub struct SearchService {
    queue: AdmissionQueue,
    batcher: Batcher,
    cache: ProfileCache,
    executor: WaveExecutor,
    shed_expired: bool,
}

impl SearchService {
    /// Bring up the service over `db` on `cfg.devices` simulated devices
    /// of `spec`, installing `plans[i]` on device `i`.
    pub fn new(spec: &DeviceSpec, cfg: &ServeConfig, db: &Database, plans: &[FaultPlan]) -> Self {
        Self {
            queue: AdmissionQueue::new(cfg.admission.clone()),
            batcher: Batcher::new(cfg.batch.clone()),
            cache: ProfileCache::new(cfg.cache_capacity),
            executor: WaveExecutor::new(
                spec,
                &cfg.search,
                db,
                cfg.devices,
                plans,
                &cfg.recovery,
                &cfg.health,
                cfg.propagate_deadlines,
                &cfg.host_faults,
            ),
            shed_expired: cfg.shed_expired,
        }
    }

    /// Profile-cache hit fraction so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Lanes still alive.
    pub fn lanes_alive(&self) -> usize {
        self.executor.lanes_alive()
    }

    /// Cross-query lane health (breaker states, EWMA scores).
    pub fn health(&self) -> &HealthTracker {
        self.executor.health()
    }

    /// Replay `trace` (sorted by arrival; [`crate::request::TraceConfig`]
    /// generates it that way) to completion and report, on the
    /// discrete-event [`SimulatedClock`]. This is the pinned-contract
    /// entry point: bit-identical to the pre-[`ServiceClock`] scheduler.
    pub fn run_trace(&mut self, trace: &[SearchRequest]) -> Result<ServeReport, GpuError> {
        let clock = SimulatedClock::starting_at(trace.first().map_or(0.0, |r| r.arrival_seconds));
        self.run_trace_on(&clock, trace)
    }

    /// Replay `trace` to completion on an explicit [`ServiceClock`].
    ///
    /// On [`SimulatedClock`] this is the deterministic discrete-event
    /// loop (`wait_until` jumps to the next event). On a wall clock the
    /// same loop blocks in real time — correct but single-threaded; the
    /// `sw-gateway` crate provides the concurrent wall-clock executor.
    pub fn run_trace_on(
        &mut self,
        clock: &dyn ServiceClock,
        trace: &[SearchRequest],
    ) -> Result<ServeReport, GpuError> {
        debug_assert!(
            trace
                .windows(2)
                .all(|w| w[0].arrival_seconds <= w[1].arrival_seconds),
            "trace must be arrival-sorted"
        );
        let sp = obs::span("run_trace", "serve");
        let mut pending = trace
            .iter()
            .cloned()
            .collect::<std::collections::VecDeque<_>>();
        let start = clock.now();
        let mut responses = Vec::new();
        let mut sheds = Vec::new();
        let mut waves = 0u64;
        let mut total_cells = 0u64;
        let mut recovery = RecoveryReport::default();

        loop {
            let now = clock.now();
            // Admit everything that has arrived by `now`.
            while pending.front().is_some_and(|r| r.arrival_seconds <= now) {
                let Some(req) = pending.pop_front() else {
                    break;
                };
                if let Err(reason) = self.queue.offer(req.clone()) {
                    sheds.push(Shed {
                        id: req.id,
                        tenant: req.tenant,
                        reason,
                    });
                }
            }
            // Optionally shed queued work whose deadline already passed
            // (load-shedding mode; off by default — see `shed_expired`).
            if self.shed_expired {
                for req in self.queue.take_expired(now) {
                    sheds.push(Shed {
                        id: req.id,
                        tenant: req.tenant,
                        reason: ShedReason::DeadlineExpired,
                    });
                }
            }
            let flush = pending.is_empty();
            if let Some(wave) = self.batcher.next_wave(&mut self.queue, now, flush) {
                let outcome = self.executor.execute_wave(&wave, &mut self.cache, now)?;
                clock.advance(outcome.service_seconds);
                let now = clock.now();
                waves += 1;
                total_cells += outcome.total_cells;
                if outcome.recovery.degraded {
                    // Label by the dominant cause so dashboards can tell
                    // budget-driven degradation from fault-driven.
                    let cause = if outcome.recovery.cpu_fallback_seqs > 0 {
                        "cpu_fallback"
                    } else if outcome.recovery.quarantined_chunks > 0 {
                        "quarantine"
                    } else {
                        "hedge"
                    };
                    obs::counter_add("cudasw.serve.recovery.degraded", &[("cause", cause)], 1.0);
                }
                recovery.merge(&outcome.recovery);
                for (req, scores) in wave.requests.iter().zip(outcome.scores) {
                    let latency = now - req.arrival_seconds;
                    obs::observe_latency("cudasw.serve.latency_seconds", &[], latency);
                    obs::counter_add("cudasw.serve.completed", &[], 1.0);
                    responses.push(Response {
                        id: req.id,
                        tenant: req.tenant.clone(),
                        scores,
                        latency_seconds: latency,
                        deadline_missed: now > req.deadline_seconds,
                        degraded: outcome.recovery.degraded,
                    });
                }
            } else if let Some(next) = pending.front() {
                // Nothing dispatchable yet: wait for the next event — the
                // next arrival or the head's linger expiry, whichever is
                // sooner. (On the simulated clock this is the
                // `linger.min(arrival).max(now)` jump of the original
                // scheduler, bit for bit.)
                let arrival = next.arrival_seconds;
                match self.batcher.next_dispatch_at(&self.queue, now) {
                    Some(linger) => clock.wait_until(linger.min(arrival)),
                    None => clock.wait_until(arrival),
                }
            } else if self.queue.is_empty() {
                break;
            }
        }

        let makespan = (clock.now() - start).max(0.0);
        sp.end_with(&[
            ("responses", &responses.len().to_string()),
            ("sheds", &sheds.len().to_string()),
        ]);
        Ok(ServeReport {
            responses,
            sheds,
            waves,
            total_cells,
            makespan_seconds: makespan,
            recovery,
        })
    }
}
