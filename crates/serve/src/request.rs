//! Requests, parameter compatibility, and seeded open-loop arrival traces.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sw_align::SwParams;
use sw_db::synth::make_query;

/// The batching-compatibility key of a request's scoring parameters.
///
/// Two requests can share a wave (and therefore one device-resident
/// database staging and one driver configuration) iff their keys are
/// equal. Matrices are keyed by name: every [`sw_align::ScoringMatrix`]
/// constructor produces one fixed, named table, so the name identifies
/// the scores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamsKey {
    /// Substitution-matrix name (e.g. `"BLOSUM62"`).
    pub matrix: String,
    /// Gap-open penalty.
    pub open: i32,
    /// Gap-extension penalty.
    pub extend: i32,
}

impl ParamsKey {
    /// The key of `params`.
    pub fn of(params: &SwParams) -> Self {
        Self {
            matrix: params.matrix.name().to_string(),
            open: params.gaps.open,
            extend: params.gaps.extend,
        }
    }
}

/// One search request as the admission controller sees it.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// Unique request id (assigned by the trace generator / caller).
    pub id: u64,
    /// Tenant the request belongs to (quota accounting).
    pub tenant: String,
    /// Query residues.
    pub query: Vec<u8>,
    /// Scoring parameters; requests batch only with equal [`ParamsKey`].
    pub params: SwParams,
    /// Arrival time on the simulated clock, seconds.
    pub arrival_seconds: f64,
    /// Latency deadline (absolute simulated time). The scheduler orders
    /// earliest-deadline-first; a missed deadline is flagged, not dropped.
    pub deadline_seconds: f64,
}

impl SearchRequest {
    /// The request's batching-compatibility key.
    pub fn params_key(&self) -> ParamsKey {
        ParamsKey::of(&self.params)
    }
}

/// Configuration of a seeded open-loop arrival trace.
///
/// Open-loop means arrivals are independent of service: the trace fixes
/// every arrival instant up front (exponential interarrival times, the
/// Poisson-process model of aggregate user traffic), and the service
/// either keeps up or sheds.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// Tenant names to draw from (uniformly).
    pub tenants: Vec<String>,
    /// Mean interarrival gap in simulated seconds.
    pub mean_interarrival_seconds: f64,
    /// Query lengths are drawn uniformly from this inclusive range.
    pub query_len: (usize, usize),
    /// Deadline slack added to the arrival time, drawn uniformly from
    /// this range of seconds.
    pub deadline_slack_seconds: (f64, f64),
    /// Parameter classes to draw from (uniformly). Requests with
    /// different classes never share a wave.
    pub param_classes: Vec<SwParams>,
    /// RNG seed; equal configs generate identical traces.
    pub seed: u64,
}

impl TraceConfig {
    /// A small default trace: one tenant, one parameter class.
    pub fn small(requests: usize, seed: u64) -> Self {
        Self {
            requests,
            tenants: vec!["tenant-a".to_string()],
            mean_interarrival_seconds: 1.0e-3,
            query_len: (24, 64),
            deadline_slack_seconds: (0.5, 1.0),
            param_classes: vec![SwParams::cudasw_default()],
            seed,
        }
    }

    /// Generate the trace, sorted by arrival time, ids `0..requests`.
    pub fn generate(&self) -> Vec<SearchRequest> {
        assert!(!self.tenants.is_empty(), "need at least one tenant");
        assert!(!self.param_classes.is_empty(), "need a parameter class");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5345_5256); // "SERV"
        let mut now = 0.0f64;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            // Exponential interarrival: -mean · ln(1 - U), U ∈ [0, 1).
            let u: f64 = rng.gen_range(0.0..1.0);
            now += -self.mean_interarrival_seconds * (1.0 - u).ln();
            let tenant = self.tenants[rng.gen_range(0..self.tenants.len())].clone();
            let params = self.param_classes[rng.gen_range(0..self.param_classes.len())].clone();
            let (lo, hi) = self.query_len;
            let len = rng.gen_range(lo..=hi);
            let (slo, shi) = self.deadline_slack_seconds;
            let slack = if shi > slo {
                rng.gen_range(slo..shi)
            } else {
                slo
            };
            out.push(SearchRequest {
                id,
                tenant,
                query: make_query(len, self.seed ^ id),
                params,
                arrival_seconds: now,
                deadline_seconds: now + slack,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::ScoringMatrix;

    #[test]
    fn params_key_separates_matrices_and_gaps() {
        let a = SwParams::cudasw_default();
        let b = SwParams {
            matrix: ScoringMatrix::blosum50(),
            ..SwParams::cudasw_default()
        };
        let mut c = SwParams::cudasw_default();
        c.gaps.extend = 1;
        assert_eq!(ParamsKey::of(&a), ParamsKey::of(&a.clone()));
        assert_ne!(ParamsKey::of(&a), ParamsKey::of(&b));
        assert_ne!(ParamsKey::of(&a), ParamsKey::of(&c));
    }

    #[test]
    fn trace_is_deterministic_and_arrival_sorted() {
        let cfg = TraceConfig::small(50, 7);
        let t1 = cfg.generate();
        let t2 = cfg.generate();
        assert_eq!(t1.len(), 50);
        for (a, b) in t1.iter().zip(&t2) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.query, b.query);
            assert_eq!(a.arrival_seconds, b.arrival_seconds);
        }
        assert!(t1
            .windows(2)
            .all(|w| w[0].arrival_seconds <= w[1].arrival_seconds));
        assert!(t1.iter().all(|r| r.deadline_seconds > r.arrival_seconds));
        let (lo, hi) = cfg.query_len;
        assert!(t1.iter().all(|r| (lo..=hi).contains(&r.query.len())));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceConfig::small(10, 1).generate();
        let b = TraceConfig::small(10, 2).generate();
        assert!(a.iter().zip(&b).any(|(x, y)| x.query != y.query));
    }
}
