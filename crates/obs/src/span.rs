//! The span timeline: nested durations and instant events on the
//! simulated clock.
//!
//! Spans are opened and closed against a monotonically advancing
//! simulated-seconds clock (never the wall clock — determinism is the
//! whole point of the simulator). Nesting is structural: the trace keeps
//! a stack of open spans, and a new span's parent is whatever is open at
//! the time. Closing a span also closes any still-open descendants, so an
//! error path that unwinds out of a phase cannot corrupt the stack.

/// Identifier of a span within one [`Trace`]. `SpanId(0)` is the "not
/// recorded" sentinel returned while tracing is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The sentinel for spans that were not recorded.
    pub const NONE: SpanId = SpanId(0);

    fn index(self) -> Option<usize> {
        (self.0 > 0).then(|| self.0 as usize - 1)
    }
}

/// One completed (or still-open) duration on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Event name (kernel name, phase name, ...).
    pub name: String,
    /// Category (`"kernel"`, `"transfer"`, `"phase"`, ...).
    pub cat: String,
    /// Simulated seconds at open.
    pub start: f64,
    /// Simulated seconds at close; `< start` while still open.
    pub end: f64,
    /// Chrome-trace thread lane (one per device).
    pub tid: u32,
    /// Free-form key/value annotations.
    pub args: Vec<(String, String)>,
}

impl Span {
    /// True once the span has been closed.
    pub fn is_closed(&self) -> bool {
        self.end >= self.start
    }

    /// Duration in simulated seconds (0 while open).
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// A zero-duration event (fault injections, recovery actions).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Simulated seconds at which it happened.
    pub at: f64,
    /// Chrome-trace thread lane.
    pub tid: u32,
    /// Free-form key/value annotations.
    pub args: Vec<(String, String)>,
}

/// The recorded timeline of one scope.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, in open order.
    pub spans: Vec<Span>,
    /// All instant events, in emit order.
    pub instants: Vec<InstantEvent>,
    open: Vec<SpanId>,
}

impl Trace {
    /// Open a span at `now`; its parent is the innermost open span.
    pub fn begin(&mut self, name: &str, cat: &str, now: f64, tid: u32) -> SpanId {
        let id = SpanId(self.spans.len() as u32 + 1);
        self.spans.push(Span {
            id,
            parent: self.open.last().copied(),
            name: name.to_string(),
            cat: cat.to_string(),
            start: now,
            end: f64::NEG_INFINITY,
            tid,
            args: Vec::new(),
        });
        self.open.push(id);
        id
    }

    /// Close `id` at `now`, attaching `args`. Any open descendants are
    /// closed too (error-path unwinding); closing an unknown or already
    /// closed id is a no-op.
    pub fn end(&mut self, id: SpanId, now: f64, args: &[(&str, &str)]) {
        let Some(idx) = id.index() else { return };
        if !self.open.contains(&id) {
            return;
        }
        while let Some(top) = self.open.pop() {
            if let Some(i) = top.index() {
                if !self.spans[i].is_closed() {
                    self.spans[i].end = now;
                }
            }
            if top == id {
                break;
            }
        }
        self.spans[idx]
            .args
            .extend(args.iter().map(|(k, v)| (k.to_string(), v.to_string())));
    }

    /// Record an instant event at `now`.
    pub fn instant(&mut self, name: &str, cat: &str, now: f64, tid: u32, args: &[(&str, &str)]) {
        self.instants.push(InstantEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            at: now,
            tid,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// All spans with this exact name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// All spans in this category.
    pub fn spans_in_cat<'a>(&'a self, cat: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.cat == cat)
    }

    /// All instant events with this exact name.
    pub fn instants_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a InstantEvent> {
        self.instants.iter().filter(move |s| s.name == name)
    }

    /// True when `inner` is a strict descendant of `outer` in the span
    /// tree.
    pub fn is_descendant(&self, inner: SpanId, outer: SpanId) -> bool {
        let mut cur = inner.index().and_then(|i| self.spans[i].parent);
        while let Some(p) = cur {
            if p == outer {
                return true;
            }
            cur = p.index().and_then(|i| self.spans[i].parent);
        }
        false
    }

    /// Number of spans still open (0 after a clean run).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_tracks_the_open_stack() {
        let mut t = Trace::default();
        let outer = t.begin("search", "phase", 0.0, 0);
        let inner = t.begin("inter_task", "kernel", 1.0, 0);
        t.end(inner, 2.0, &[("cells", "10")]);
        t.end(outer, 3.0, &[]);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[1].parent, Some(outer));
        assert!(t.is_descendant(inner, outer));
        assert!(!t.is_descendant(outer, inner));
        assert_eq!(
            t.spans[1].args,
            vec![("cells".to_string(), "10".to_string())]
        );
        assert_eq!(t.open_count(), 0);
    }

    #[test]
    fn ending_a_parent_closes_abandoned_children() {
        let mut t = Trace::default();
        let outer = t.begin("search", "phase", 0.0, 0);
        let child = t.begin("inter", "phase", 1.0, 0);
        // Error path: `child` is never ended explicitly.
        t.end(outer, 5.0, &[]);
        assert!(t.spans[child.index().unwrap()].is_closed());
        assert_eq!(t.spans[child.index().unwrap()].end, 5.0);
        assert_eq!(t.open_count(), 0);
    }

    #[test]
    fn double_end_is_a_noop() {
        let mut t = Trace::default();
        let s = t.begin("a", "c", 0.0, 0);
        t.end(s, 1.0, &[]);
        t.end(s, 9.0, &[]);
        assert_eq!(t.spans[0].end, 1.0);
        assert_eq!(t.spans[0].duration(), 1.0);
    }

    #[test]
    fn sentinel_id_is_ignored() {
        let mut t = Trace::default();
        t.end(SpanId::NONE, 1.0, &[]);
        assert!(t.spans.is_empty());
    }
}
