//! Assertion harness over captured metrics and traces.
//!
//! Tests phrase paper claims as declarative checks
//! (`ratio_ge("…original…", "…improved…", 40.0)`,
//! `span_within("intra_task", "search")`) and call
//! [`MetricsAssert::check`] / [`TraceAssert::check`] once; every failed
//! check is reported together instead of stopping at the first.

use crate::metrics::MetricsRegistry;
use crate::span::Trace;

/// A named counter lookup: counter name plus a label subset it must match.
#[derive(Debug, Clone)]
pub struct CounterSel {
    /// Counter name.
    pub name: String,
    /// Label subset (every listed pair must be present).
    pub labels: Vec<(String, String)>,
}

impl CounterSel {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        Self {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn value(&self, reg: &MetricsRegistry) -> f64 {
        let labels: Vec<(&str, &str)> = self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        reg.counter_sum(&self.name, &labels)
    }
}

enum MetricCheck {
    Ge(CounterSel, f64),
    Le(CounterSel, f64),
    EqApprox(CounterSel, f64, f64),
    RatioGe(CounterSel, CounterSel, f64),
    SumEq(Vec<CounterSel>, CounterSel, f64),
}

/// Collects metric checks, then evaluates them all against one registry.
#[derive(Default)]
pub struct MetricsAssert {
    checks: Vec<MetricCheck>,
}

impl MetricsAssert {
    /// An empty assertion set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Require `counter >= min`.
    pub fn counter_ge(mut self, name: &str, labels: &[(&str, &str)], min: f64) -> Self {
        self.checks
            .push(MetricCheck::Ge(CounterSel::new(name, labels), min));
        self
    }

    /// Require `counter <= max`.
    pub fn counter_le(mut self, name: &str, labels: &[(&str, &str)], max: f64) -> Self {
        self.checks
            .push(MetricCheck::Le(CounterSel::new(name, labels), max));
        self
    }

    /// Require `|counter - expected| <= tol`.
    pub fn counter_eq(
        mut self,
        name: &str,
        labels: &[(&str, &str)],
        expected: f64,
        tol: f64,
    ) -> Self {
        self.checks.push(MetricCheck::EqApprox(
            CounterSel::new(name, labels),
            expected,
            tol,
        ));
        self
    }

    /// Require `numerator / denominator >= min` (fails if the denominator
    /// is zero). This is how Table I's "at least N:1 reduction" claims
    /// are written.
    pub fn ratio_ge(
        mut self,
        num_name: &str,
        num_labels: &[(&str, &str)],
        den_name: &str,
        den_labels: &[(&str, &str)],
        min: f64,
    ) -> Self {
        self.checks.push(MetricCheck::RatioGe(
            CounterSel::new(num_name, num_labels),
            CounterSel::new(den_name, den_labels),
            min,
        ));
        self
    }

    /// Require the values of `parts` to sum to the value of `whole`
    /// within `tol` — phase accounting must not lose work.
    pub fn parts_sum_to(
        mut self,
        parts: &[(&str, &[(&str, &str)])],
        whole_name: &str,
        whole_labels: &[(&str, &str)],
        tol: f64,
    ) -> Self {
        self.checks.push(MetricCheck::SumEq(
            parts.iter().map(|(n, l)| CounterSel::new(n, l)).collect(),
            CounterSel::new(whole_name, whole_labels),
            tol,
        ));
        self
    }

    /// Evaluate every check; `Err` lists all failures.
    pub fn check(&self, reg: &MetricsRegistry) -> Result<(), String> {
        let mut failures = Vec::new();
        for check in &self.checks {
            match check {
                MetricCheck::Ge(sel, min) => {
                    let v = sel.value(reg);
                    if v < *min {
                        failures.push(format!("{} = {v}, expected >= {min}", sel.name));
                    }
                }
                MetricCheck::Le(sel, max) => {
                    let v = sel.value(reg);
                    if v > *max {
                        failures.push(format!("{} = {v}, expected <= {max}", sel.name));
                    }
                }
                MetricCheck::EqApprox(sel, expected, tol) => {
                    let v = sel.value(reg);
                    if (v - expected).abs() > *tol {
                        failures.push(format!("{} = {v}, expected {expected} (±{tol})", sel.name));
                    }
                }
                MetricCheck::RatioGe(num, den, min) => {
                    let n = num.value(reg);
                    let d = den.value(reg);
                    if d == 0.0 {
                        failures.push(format!("{} is zero (ratio undefined)", den.name));
                    } else if n / d < *min {
                        failures.push(format!(
                            "{} / {} = {:.2} ({n} / {d}), expected >= {min}",
                            num.name,
                            den.name,
                            n / d
                        ));
                    }
                }
                MetricCheck::SumEq(parts, whole, tol) => {
                    let sum: f64 = parts.iter().map(|p| p.value(reg)).sum();
                    let w = whole.value(reg);
                    if (sum - w).abs() > *tol {
                        let names: Vec<&str> = parts.iter().map(|p| p.name.as_str()).collect();
                        failures.push(format!(
                            "sum({}) = {sum}, expected {} = {w} (±{tol})",
                            names.join(" + "),
                            whole.name
                        ));
                    }
                }
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("\n"))
        }
    }
}

enum TraceCheck {
    HasSpan(String, usize),
    Within(String, String),
    HasInstant(String, usize),
    AllClosed,
}

/// Collects trace-shape checks, then evaluates them against one trace.
#[derive(Default)]
pub struct TraceAssert {
    checks: Vec<TraceCheck>,
}

impl TraceAssert {
    /// An empty assertion set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Require at least `min` spans with this name.
    pub fn has_span(mut self, name: &str, min: usize) -> Self {
        self.checks.push(TraceCheck::HasSpan(name.to_string(), min));
        self
    }

    /// Require every span named `inner` to be a descendant of some span
    /// named `outer` — e.g. `phase("intra") ⊂ phase("search")`.
    pub fn span_within(mut self, inner: &str, outer: &str) -> Self {
        self.checks
            .push(TraceCheck::Within(inner.to_string(), outer.to_string()));
        self
    }

    /// Require at least `min` instant events with this name.
    pub fn has_instant(mut self, name: &str, min: usize) -> Self {
        self.checks
            .push(TraceCheck::HasInstant(name.to_string(), min));
        self
    }

    /// Require every span to be closed (no dangling phases).
    pub fn all_closed(mut self) -> Self {
        self.checks.push(TraceCheck::AllClosed);
        self
    }

    /// Evaluate every check; `Err` lists all failures.
    pub fn check(&self, trace: &Trace) -> Result<(), String> {
        let mut failures = Vec::new();
        for check in &self.checks {
            match check {
                TraceCheck::HasSpan(name, min) => {
                    let n = trace.spans_named(name).count();
                    if n < *min {
                        failures.push(format!("{n} spans named {name:?}, expected >= {min}"));
                    }
                }
                TraceCheck::Within(inner, outer) => {
                    let outers: Vec<_> = trace.spans_named(outer).map(|s| s.id).collect();
                    if outers.is_empty() {
                        failures.push(format!("no span named {outer:?} to nest within"));
                        continue;
                    }
                    for s in trace.spans_named(inner) {
                        if !outers.iter().any(|o| trace.is_descendant(s.id, *o)) {
                            failures.push(format!(
                                "span {inner:?} (id {}) is not inside any {outer:?}",
                                s.id.0
                            ));
                        }
                    }
                }
                TraceCheck::HasInstant(name, min) => {
                    let n = trace.instants_named(name).count();
                    if n < *min {
                        failures.push(format!("{n} instants named {name:?}, expected >= {min}"));
                    }
                }
                TraceCheck::AllClosed => {
                    let open: Vec<&str> = trace
                        .spans
                        .iter()
                        .filter(|s| !s.is_closed())
                        .map(|s| s.name.as_str())
                        .collect();
                    if !open.is_empty() {
                        failures.push(format!("spans left open: {}", open.join(", ")));
                    }
                }
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("\n"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_check_reads_counters_across_label_subsets() {
        let mut r = MetricsRegistry::new();
        r.counter_add("tx", &[("variant", "original"), ("device", "0")], 80.0);
        r.counter_add("tx", &[("variant", "original"), ("device", "1")], 20.0);
        r.counter_add("tx", &[("variant", "improved")], 2.0);
        let ok = MetricsAssert::new().ratio_ge(
            "tx",
            &[("variant", "original")],
            "tx",
            &[("variant", "improved")],
            40.0,
        );
        assert!(ok.check(&r).is_ok());
        let too_high = MetricsAssert::new().ratio_ge(
            "tx",
            &[("variant", "original")],
            "tx",
            &[("variant", "improved")],
            60.0,
        );
        assert!(too_high.check(&r).is_err());
    }

    #[test]
    fn zero_denominator_fails_rather_than_passing() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", &[], 5.0);
        let res = MetricsAssert::new()
            .ratio_ge("a", &[], "missing", &[], 1.0)
            .check(&r);
        assert!(res.unwrap_err().contains("zero"));
    }

    #[test]
    fn failures_accumulate() {
        let r = MetricsRegistry::new();
        let err = MetricsAssert::new()
            .counter_ge("x", &[], 1.0)
            .counter_ge("y", &[], 2.0)
            .check(&r)
            .unwrap_err();
        assert_eq!(err.lines().count(), 2);
    }

    #[test]
    fn parts_sum_check() {
        let mut r = MetricsRegistry::new();
        r.counter_add("s", &[("phase", "inter")], 3.0);
        r.counter_add("s", &[("phase", "intra")], 7.0);
        r.counter_add("total", &[], 10.0);
        let a = MetricsAssert::new().parts_sum_to(
            &[("s", &[("phase", "inter")]), ("s", &[("phase", "intra")])],
            "total",
            &[],
            1e-9,
        );
        assert!(a.check(&r).is_ok());
    }

    #[test]
    fn trace_shape_checks() {
        let mut t = Trace::default();
        let search = t.begin("search", "phase", 0.0, 0);
        let intra = t.begin("intra_task", "phase", 1.0, 0);
        t.instant("fault", "fault", 1.5, 0, &[]);
        t.end(intra, 2.0, &[]);
        t.end(search, 3.0, &[]);

        assert!(TraceAssert::new()
            .has_span("search", 1)
            .span_within("intra_task", "search")
            .has_instant("fault", 1)
            .all_closed()
            .check(&t)
            .is_ok());
        assert!(TraceAssert::new()
            .span_within("search", "intra_task")
            .check(&t)
            .is_err());
    }
}
