//! A minimal JSON value parser, used to validate exporter output in
//! tests without external dependencies.
//!
//! Supports the full JSON grammar this workspace emits (objects, arrays,
//! strings with `\uXXXX` escapes, numbers, booleans, null). Not a
//! general-purpose parser: errors carry a byte offset but no recovery.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON numbers are doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalised).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// True when this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance by whole UTF-8 code points.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escape a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"s": "hi\n\"x\""}, "t": true, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("s").unwrap().as_str(),
            Some("hi\n\"x\"")
        );
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1, 2").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }
}
