//! Observability for the CUDASW++ reproduction: structured tracing and
//! metrics on the *simulated* clock.
//!
//! Everything in this workspace that models GPU work — allocations,
//! transfers, kernel launches, recovery actions — reports into an ambient
//! per-thread [`Obs`] recorder. The recorder owns three things:
//!
//! - a **simulated clock** ([`Obs::now`]), advanced by the modeled
//!   duration of each operation (never wall time, so runs are
//!   deterministic and traces are reproducible bit-for-bit);
//! - a **span timeline** ([`Trace`]) of nested phases / kernels /
//!   transfers, exportable as a Chrome `trace_event` JSON file
//!   ([`chrome::to_chrome_json`]) that Perfetto loads directly;
//! - a **metrics registry** ([`MetricsRegistry`]) of labeled counters,
//!   gauges and histograms under the `cudasw.<crate>.<site>.<name>`
//!   naming convention, exportable as a Prometheus text snapshot
//!   ([`prom::to_prometheus_text`]).
//!
//! Instrumented code calls the free functions ([`counter_add`],
//! [`span`], [`instant`], [`advance`], ...) which write to the current
//! thread's recorder. Tests and the bench CLI wrap a run in [`capture`]
//! to get back everything it recorded:
//!
//! ```
//! let (result, run) = obs::capture(|| {
//!     let _s = obs::span("search", "phase");
//!     obs::counter_add("cudasw.core.phase.cells", &[("phase", "inter")], 128.0);
//!     obs::advance(0.25);
//!     42
//! });
//! assert_eq!(result, 42);
//! assert_eq!(run.metrics.counter_sum("cudasw.core.phase.cells", &[]), 128.0);
//! assert_eq!(run.trace.spans_named("search").count(), 1);
//! assert_eq!(run.clock, 0.25);
//! ```
//!
//! Metric recording is always on (counters are two map writes; the cost
//! is noise next to simulating a kernel). Span recording is on inside
//! [`capture`] and off otherwise, so deeply nested library code does not
//! grow an unbounded span vector when nobody is going to read it.

pub mod assert;
pub mod chrome;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod span;

pub use assert::{MetricsAssert, TraceAssert};
pub use metrics::{Histogram, MetricKey, MetricsRegistry};
pub use span::{InstantEvent, Span, SpanId, Trace};

use std::cell::RefCell;

/// One thread's recorder state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Obs {
    /// Simulated seconds elapsed.
    pub clock: f64,
    /// Recorded metrics.
    pub metrics: MetricsRegistry,
    /// Recorded span timeline (empty unless captured under [`capture`]).
    pub trace: Trace,
    /// Chrome-trace lane for new events: 0 = host, `1 + device_index`
    /// for device work.
    pub tid: u32,
    trace_enabled: bool,
}

thread_local! {
    static CURRENT: RefCell<Obs> = RefCell::new(Obs::default());
}

/// Run `f` with mutable access to the current thread's recorder.
pub fn with<R>(f: impl FnOnce(&mut Obs) -> R) -> R {
    CURRENT.with(|c| f(&mut c.borrow_mut()))
}

/// Restores the previous recorder even if `f` panics.
struct Restore(Option<Obs>);

impl Drop for Restore {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Run `f` under a fresh recorder with span recording enabled, and
/// return `f`'s result together with everything it recorded. The
/// previous recorder is restored afterwards (captures nest).
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Obs) {
    let fresh = Obs {
        trace_enabled: true,
        ..Obs::default()
    };
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), fresh));
    let guard = Restore(Some(prev));
    let result = f();
    let mut recorded = CURRENT.with(|c| std::mem::take(&mut *c.borrow_mut()));
    drop(guard);
    // Close anything an early return left open so exports are well formed.
    let now = recorded.clock;
    let open: Vec<SpanId> = recorded
        .trace
        .spans
        .iter()
        .filter(|s| !s.is_closed())
        .map(|s| s.id)
        .collect();
    for id in open {
        recorded.trace.end(id, now, &[]);
    }
    (result, recorded)
}

/// Simulated seconds on the current thread's clock.
pub fn now() -> f64 {
    with(|o| o.clock)
}

/// Advance the simulated clock by `seconds` (a modeled duration:
/// kernel time, transfer time, backoff).
pub fn advance(seconds: f64) {
    with(|o| o.clock += seconds);
}

/// Set the Chrome-trace lane for subsequent events: 0 = host,
/// `1 + device_index` for device work. Returns the previous lane.
pub fn set_lane(tid: u32) -> u32 {
    with(|o| std::mem::replace(&mut o.tid, tid))
}

/// Add `delta` to a counter.
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: f64) {
    with(|o| o.metrics.counter_add(name, labels, delta));
}

/// Set a gauge.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    with(|o| o.metrics.gauge_set(name, labels, value));
}

/// Observe into a histogram (see [`MetricsRegistry::histogram_observe`]).
pub fn histogram_observe(name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
    with(|o| o.metrics.histogram_observe(name, labels, bounds, value));
}

/// Wall-clock-safe latency bucket bounds for service latency histograms
/// (`cudasw.serve.latency_seconds` and friends). The range spans 100 µs
/// to 100 s: sub-millisecond resolution for the simulated fast path, and
/// enough headroom that a wall-clock overload tail (queueing under an
/// open-loop storm) lands in a finite bucket instead of being censored
/// into `+Inf`.
pub const LATENCY_SECONDS_BOUNDS: &[f64] = &[
    1.0e-4, 3.0e-4, 1.0e-3, 3.0e-3, 1.0e-2, 3.0e-2, 1.0e-1, 3.0e-1, 1.0, 3.0, 10.0, 30.0, 100.0,
];

/// Observe an end-to-end latency (seconds) into histogram `name` using
/// the shared [`LATENCY_SECONDS_BOUNDS`] bucketing.
pub fn observe_latency(name: &str, labels: &[(&str, &str)], seconds: f64) {
    histogram_observe(name, labels, LATENCY_SECONDS_BOUNDS, seconds);
}

/// Snapshot the current thread's metrics (for before/after
/// [`MetricsRegistry::diff`]s).
pub fn snapshot_metrics() -> MetricsRegistry {
    with(|o| o.metrics.clone())
}

/// Record a zero-duration event on the timeline (fault hit, retry, ...).
pub fn instant(name: &str, cat: &str, args: &[(&str, &str)]) {
    with(|o| {
        if o.trace_enabled {
            let (now, tid) = (o.clock, o.tid);
            o.trace.instant(name, cat, now, tid, args);
        }
    });
}

/// A span open on the current thread's recorder; ends when dropped, so
/// `?`-style early returns still close it. Use [`SpanGuard::end_with`]
/// to attach result annotations on the happy path.
#[must_use = "the span ends when this guard drops"]
pub struct SpanGuard {
    id: SpanId,
}

impl SpanGuard {
    /// End the span now, attaching `args`.
    pub fn end_with(self, args: &[(&str, &str)]) {
        with(|o| {
            let now = o.clock;
            o.trace.end(self.id, now, args);
        });
        std::mem::forget(self);
    }

    /// The underlying span id ([`SpanId::NONE`] outside [`capture`]).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        with(|o| {
            let now = o.clock;
            o.trace.end(self.id, now, &[]);
        });
    }
}

/// Open a span named `name` in category `cat`. Outside [`capture`] this
/// is free and records nothing.
pub fn span(name: &str, cat: &str) -> SpanGuard {
    let id = with(|o| {
        if o.trace_enabled {
            let (now, tid) = (o.clock, o.tid);
            o.trace.begin(name, cat, now, tid)
        } else {
            SpanId::NONE
        }
    });
    SpanGuard { id }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_isolates_and_restores() {
        counter_add("outside", &[], 1.0);
        let ((), inner) = capture(|| {
            counter_add("inside", &[], 2.0);
            advance(1.5);
        });
        assert_eq!(inner.metrics.counter("inside", &[]), 2.0);
        assert_eq!(inner.metrics.counter("outside", &[]), 0.0);
        assert_eq!(inner.clock, 1.5);
        // The outer recorder is back, untouched by the capture.
        assert!(now() >= 0.0);
        assert!(with(|o| o.metrics.counter("outside", &[]) >= 1.0));
    }

    #[test]
    fn captures_nest() {
        let ((), outer) = capture(|| {
            counter_add("a", &[], 1.0);
            let ((), inner) = capture(|| counter_add("b", &[], 5.0));
            assert_eq!(inner.metrics.counter("b", &[]), 5.0);
            assert_eq!(inner.metrics.counter("a", &[]), 0.0);
            counter_add("a", &[], 1.0);
        });
        assert_eq!(outer.metrics.counter("a", &[]), 2.0);
        assert_eq!(outer.metrics.counter("b", &[]), 0.0);
    }

    #[test]
    fn spans_record_only_under_capture() {
        {
            let g = span("quiet", "phase");
            assert_eq!(g.id(), SpanId::NONE);
        }
        let ((), run) = capture(|| {
            let g = span("loud", "phase");
            advance(1.0);
            g.end_with(&[("k", "v")]);
        });
        assert_eq!(run.trace.spans_named("loud").count(), 1);
        let s = run.trace.spans_named("loud").next().unwrap();
        assert_eq!(s.duration(), 1.0);
        assert_eq!(s.args, vec![("k".to_string(), "v".to_string())]);
    }

    #[test]
    fn guard_drop_closes_on_early_return() {
        fn might_fail(fail: bool) -> Result<(), ()> {
            let _g = span("op", "phase");
            advance(0.5);
            if fail {
                return Err(());
            }
            Ok(())
        }
        let (res, run) = capture(|| might_fail(true));
        assert!(res.is_err());
        let s = run.trace.spans_named("op").next().unwrap();
        assert!(s.is_closed());
        assert_eq!(s.duration(), 0.5);
        assert_eq!(run.trace.open_count(), 0);
    }

    #[test]
    fn capture_closes_spans_leaked_past_the_closure() {
        let ((), run) = capture(|| {
            let g = span("leaked", "phase");
            advance(2.0);
            std::mem::forget(g);
        });
        assert!(run.trace.spans_named("leaked").next().unwrap().is_closed());
    }

    #[test]
    fn lane_scopes_events_to_devices() {
        let ((), run) = capture(|| {
            let prev = set_lane(3);
            instant("fault", "fault", &[]);
            set_lane(prev);
        });
        assert_eq!(run.trace.instants[0].tid, 3);
    }
}
