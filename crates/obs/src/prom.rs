//! Prometheus text-exposition exporter.
//!
//! Renders a [`MetricsRegistry`] snapshot in the text format scrapers
//! expect: `# TYPE` lines, label sets in `{k="v"}` form, and the
//! `_bucket`/`_sum`/`_count` triplet for histograms with cumulative
//! `le` buckets. Dotted workspace names are sanitised to underscores
//! (`cudasw.gpu_sim.launch.cycles` → `cudasw_gpu_sim_launch_cycles`).

use crate::metrics::{MetricKey, MetricsRegistry};
use std::fmt::Write as _;

/// Map a workspace metric name to a valid Prometheus metric name.
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{}=\"{}\"",
                sanitize_name(k),
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn key_line(out: &mut String, key: &MetricKey, value: f64) {
    let _ = writeln!(
        out,
        "{}{} {}",
        sanitize_name(&key.name),
        label_block(&key.labels, None),
        fmt_value(value)
    );
}

/// Render the registry in Prometheus text exposition format.
pub fn to_prometheus_text(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_type: Option<(String, String)> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let sane = sanitize_name(name);
        if last_type
            .as_ref()
            .is_none_or(|(n, k)| *n != sane || k != kind)
        {
            let _ = writeln!(out, "# TYPE {sane} {kind}");
            last_type = Some((sane, kind.to_string()));
        }
    };

    for (key, value) in metrics.counters() {
        type_line(&mut out, &key.name, "counter");
        key_line(&mut out, key, value);
    }
    for (key, value) in metrics.gauges() {
        type_line(&mut out, &key.name, "gauge");
        key_line(&mut out, key, value);
    }
    for (key, hist) in metrics.histograms() {
        type_line(&mut out, &key.name, "histogram");
        let name = sanitize_name(&key.name);
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                label_block(&key.labels, Some(("le", &fmt_value(*bound))))
            );
        }
        cumulative += hist.counts.last().copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block(&key.labels, Some(("le", "+Inf")))
        );
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            label_block(&key.labels, None),
            fmt_value(hist.sum)
        );
        let _ = writeln!(
            out,
            "{name}_count{} {}",
            label_block(&key.labels, None),
            hist.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_dotted_names() {
        assert_eq!(
            sanitize_name("cudasw.gpu-sim.launch.cycles"),
            "cudasw_gpu_sim_launch_cycles"
        );
        assert_eq!(sanitize_name("0bad"), "_0bad");
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let mut r = MetricsRegistry::new();
        r.counter_add(
            "cudasw.core.phase.cells",
            &[("phase", "inter"), ("device", "0")],
            42.0,
        );
        r.gauge_set("cudasw.gpu_sim.mem.high_water", &[], 1.5);
        r.histogram_observe("cudasw.core.launch.seconds", &[], &[0.1, 1.0], 0.05);
        r.histogram_observe("cudasw.core.launch.seconds", &[], &[0.1, 1.0], 5.0);

        let text = to_prometheus_text(&r);
        assert!(text.contains("# TYPE cudasw_core_phase_cells counter"));
        assert!(text.contains("cudasw_core_phase_cells{device=\"0\",phase=\"inter\"} 42"));
        assert!(text.contains("# TYPE cudasw_gpu_sim_mem_high_water gauge"));
        assert!(text.contains("cudasw_gpu_sim_mem_high_water 1.5"));
        assert!(text.contains("cudasw_core_launch_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("cudasw_core_launch_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("cudasw_core_launch_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cudasw_core_launch_seconds_sum 5.05"));
        assert!(text.contains("cudasw_core_launch_seconds_count 2"));
    }

    #[test]
    fn type_line_emitted_once_per_metric_name() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c.n", &[("d", "0")], 1.0);
        r.counter_add("c.n", &[("d", "1")], 2.0);
        let text = to_prometheus_text(&r);
        assert_eq!(text.matches("# TYPE c_n counter").count(), 1);
    }
}
