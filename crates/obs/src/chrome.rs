//! Chrome `trace_event` exporter (Perfetto / `chrome://tracing` loadable).
//!
//! Emits the JSON object form: `{"traceEvents": [...]}` with complete
//! (`"ph": "X"`) events for spans, instant (`"ph": "i"`) events, and
//! thread-name metadata (`"ph": "M"`) records naming each device lane.
//! Timestamps are microseconds of *simulated* time, so the viewer shows
//! the modeled GPU timeline, not host wall clock.

use crate::json::{self, Json};
use crate::span::Trace;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Process id used for every event (single simulated process).
const PID: u32 = 1;

fn push_args(out: &mut String, args: &[(String, String)]) {
    out.push_str("\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json::escape(k), json::escape(v));
    }
    out.push('}');
}

/// Render `trace` as a Chrome `trace_event` JSON document.
///
/// Open spans are exported with the duration they had accumulated by
/// `now` (the clock at export time), so a trace dumped mid-failure still
/// loads.
pub fn to_chrome_json(trace: &Trace, now: f64) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    let tids: BTreeSet<u32> = trace
        .spans
        .iter()
        .map(|s| s.tid)
        .chain(trace.instants.iter().map(|i| i.tid))
        .collect();
    for tid in tids {
        sep(&mut out);
        let name = if tid == 0 {
            "host".to_string()
        } else {
            format!("device {}", tid - 1)
        };
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json::escape(&name)
        );
    }

    for s in &trace.spans {
        sep(&mut out);
        let end = if s.is_closed() {
            s.end
        } else {
            now.max(s.start)
        };
        let ts = s.start * 1e6;
        let dur = (end - s.start).max(0.0) * 1e6;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":{PID},\"tid\":{},",
            json::escape(&s.name),
            json::escape(&s.cat),
            s.tid
        );
        push_args(&mut out, &s.args);
        out.push('}');
    }

    for i in &trace.instants {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
             \"pid\":{PID},\"tid\":{},",
            json::escape(&i.name),
            json::escape(&i.cat),
            i.at * 1e6,
            i.tid
        );
        push_args(&mut out, &i.args);
        out.push('}');
    }

    out.push_str("]}");
    out
}

/// Validate that `text` is a well-formed Chrome trace document: parses as
/// JSON, has a `traceEvents` array, and every event carries the fields its
/// phase requires (`X` needs `ts`/`dur`, `i` needs `ts`, `M` needs
/// `args`). Returns the number of events checked.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, ev) in events.iter().enumerate() {
        if !ev.is_obj() {
            return Err(format!("event {i} is not an object"));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} missing ph"))?;
        let has_num = |key: &str| ev.get(key).and_then(Json::as_f64).is_some();
        let named = ev.get("name").and_then(Json::as_str).is_some();
        if !named {
            return Err(format!("event {i} missing name"));
        }
        match ph {
            "X" => {
                if !(has_num("ts") && has_num("dur") && has_num("pid") && has_num("tid")) {
                    return Err(format!("X event {i} missing ts/dur/pid/tid"));
                }
                if ev.get("dur").and_then(Json::as_f64).unwrap() < 0.0 {
                    return Err(format!("X event {i} has negative dur"));
                }
            }
            "i" => {
                if !(has_num("ts") && has_num("pid") && has_num("tid")) {
                    return Err(format!("i event {i} missing ts/pid/tid"));
                }
            }
            "M" => {
                if !ev.get("args").map(Json::is_obj).unwrap_or(false) {
                    return Err(format!("M event {i} missing args"));
                }
            }
            other => return Err(format!("event {i} has unsupported ph {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_nested_spans_and_instants() {
        let mut t = Trace::default();
        let outer = t.begin("search", "phase", 0.0, 1);
        t.instant("fault", "fault", 0.5, 1, &[("kind", "transient")]);
        let inner = t.begin("inter_task", "kernel", 1.0, 1);
        t.end(inner, 2.0, &[("cells", "10")]);
        t.end(outer, 3.0, &[]);

        let doc = to_chrome_json(&t, 3.0);
        let n = validate_chrome_trace(&doc).unwrap();
        // 1 thread metadata + 2 spans + 1 instant.
        assert_eq!(n, 4);

        let parsed = json::parse(&doc).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let x: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(x.len(), 2);
        // Microsecond timestamps.
        let inner_ev = x
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("inter_task"))
            .unwrap();
        assert_eq!(inner_ev.get("ts").unwrap().as_f64(), Some(1e6));
        assert_eq!(inner_ev.get("dur").unwrap().as_f64(), Some(1e6));
    }

    #[test]
    fn open_spans_are_clamped_to_now() {
        let mut t = Trace::default();
        t.begin("hung", "phase", 2.0, 0);
        let doc = to_chrome_json(&t, 5.0);
        validate_chrome_trace(&doc).unwrap();
        let parsed = json::parse(&doc).unwrap();
        let ev = parsed.get("traceEvents").unwrap().as_arr().unwrap()[1].clone();
        assert_eq!(ev.get("dur").unwrap().as_f64(), Some(3e6));
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
        assert!(validate_chrome_trace(
            "{\"traceEvents\": [{\"name\":\"a\",\"ph\":\"Z\",\"ts\":0}]}"
        )
        .is_err());
    }
}
