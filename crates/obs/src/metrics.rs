//! Labeled metrics: counters, gauges and histograms in one registry.
//!
//! Metric names follow the workspace convention
//! `cudasw.<crate>.<site>.<name>` (e.g.
//! `cudasw.gpu_sim.launch.global_transactions`); labels scope a sample to
//! a device, kernel or driver phase. Values are `f64` — exact for every
//! integer counter this workspace produces (all far below 2^53), and the
//! natural type for simulated seconds.
//!
//! The registry is a value, not a service: it can be [cloned](Clone) as a
//! snapshot, [diffed](MetricsRegistry::diff) against an earlier snapshot
//! to isolate one operation, and [merged](MetricsRegistry::merge) with
//! another registry. Merging is associative and commutative (counters and
//! histograms add, gauges keep the maximum — a high-water mark), which is
//! what makes per-device registries aggregate deterministically in any
//! order; `crates/obs/tests/proptests.rs` pins that property.

use std::collections::BTreeMap;

/// A metric name plus its sorted label set — the registry key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Dotted metric name (`cudasw.<crate>.<site>.<name>`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so equal label sets compare equal.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// True when every pair of `subset` appears among this key's labels.
    pub fn matches(&self, name: &str, subset: &[(&str, &str)]) -> bool {
        self.name == name
            && subset
                .iter()
                .all(|(k, v)| self.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }
}

/// A fixed-bound histogram (cumulative export, Prometheus-style).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, ascending; an implicit `+Inf`
    /// bucket follows.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Fold `other` into this histogram. Requires equal bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation inside the bucket holding the rank. `0.0` when the
    /// histogram is empty; ranks landing in the `+Inf` bucket report the
    /// last finite bound (the histogram cannot resolve beyond it).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = seen + c;
            if (next as f64) >= rank && c > 0 {
                let Some(&hi) = self.bounds.get(i) else {
                    // +Inf bucket: unbounded above, report the edge.
                    return self.bounds.last().copied().unwrap_or(0.0);
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (rank - seen as f64) / c as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            seen = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// This histogram minus an `earlier` snapshot of it.
    fn since(&self, earlier: &Histogram) -> Histogram {
        assert_eq!(self.bounds, earlier.bounds, "histogram bounds must match");
        Histogram {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a - b)
                .collect(),
            sum: self.sum - earlier.sum,
            count: self.count - earlier.count,
        }
    }
}

/// All metrics of one scope (a thread, a device, a captured run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, f64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter (created at zero on first touch).
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: f64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0.0) += delta;
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    /// Observe `value` into a histogram. `bounds` are used only when the
    /// histogram does not exist yet; later observations reuse the
    /// established buckets.
    pub fn histogram_observe(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Value of one exact counter (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0.0)
    }

    /// Sum of every counter named `name` whose labels contain all of
    /// `subset` (e.g. all devices of one phase).
    pub fn counter_sum(&self, name: &str, subset: &[(&str, &str)]) -> f64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.matches(name, subset))
            .map(|(_, v)| v)
            .sum()
    }

    /// Value of one exact gauge (0 when absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.gauges
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0.0)
    }

    /// One exact histogram, if recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// Insert a fully-formed histogram, merging with any existing one
    /// under the same key (checkpoint restore / deserialization path —
    /// a histogram rebuilt from its public fields re-enters the registry
    /// exactly as recorded).
    pub fn histogram_insert(&mut self, name: &str, labels: &[(&str, &str)], histogram: Histogram) {
        match self.histograms.entry(MetricKey::new(name, labels)) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&histogram),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(histogram);
            }
        }
    }

    /// Fold `other` into this registry: counters and histograms add,
    /// gauges keep the maximum (high-water semantics). Associative and
    /// commutative — aggregation order does not matter.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *e = e.max(*v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// This registry minus an `earlier` snapshot: counters and histograms
    /// subtract, gauges keep their current value. Isolates the metrics of
    /// one operation out of an accumulating registry.
    pub fn diff(&self, earlier: &MetricsRegistry) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for (k, v) in &self.counters {
            let before = earlier.counters.get(k).copied().unwrap_or(0.0);
            if *v != before {
                out.counters.insert(k.clone(), v - before);
            }
        }
        out.gauges = self.gauges.clone();
        for (k, h) in &self.histograms {
            match earlier.histograms.get(k) {
                Some(before) if before.count > 0 => {
                    let d = h.since(before);
                    if d.count > 0 {
                        out.histograms.insert(k.clone(), d);
                    }
                }
                Some(_) | None => {
                    out.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        out
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Iterate counters in key order (exporters).
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// Iterate gauges in key order (exporters).
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().map(|(k, v)| (k, *v))
    }

    /// Iterate histograms in key order (exporters).
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut r = MetricsRegistry::new();
        r.counter_add("cudasw.t.x.n", &[("phase", "inter")], 2.0);
        r.counter_add("cudasw.t.x.n", &[("phase", "inter")], 3.0);
        r.counter_add("cudasw.t.x.n", &[("phase", "intra")], 7.0);
        assert_eq!(r.counter("cudasw.t.x.n", &[("phase", "inter")]), 5.0);
        assert_eq!(r.counter_sum("cudasw.t.x.n", &[]), 12.0);
        assert_eq!(r.counter_sum("cudasw.t.x.n", &[("phase", "intra")]), 7.0);
    }

    #[test]
    fn label_order_is_canonical() {
        let a = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        let b = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
    }

    #[test]
    fn diff_isolates_an_operation() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", &[], 10.0);
        let before = r.clone();
        r.counter_add("c", &[], 4.0);
        r.counter_add("d", &[], 1.0);
        let delta = r.diff(&before);
        assert_eq!(delta.counter("c", &[]), 4.0);
        assert_eq!(delta.counter("d", &[]), 1.0);
    }

    #[test]
    fn merge_adds_counters_and_keeps_gauge_high_water() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", &[], 1.0);
        a.gauge_set("g", &[], 5.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", &[], 2.0);
        b.gauge_set("g", &[], 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 3.0);
        assert_eq!(a.gauge("g", &[]), 5.0);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        // 10 observations uniform in (1, 2]: all land in the second bucket.
        for i in 0..10 {
            h.observe(1.05 + 0.1 * i as f64);
        }
        assert_eq!(h.quantile(0.0), 1.0, "0-quantile is the bucket floor");
        let p50 = h.quantile(0.5);
        assert!((p50 - 1.5).abs() < 1e-9, "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 2.0);
        // An outlier beyond the last bound lands in +Inf: the p100 can
        // only report the last finite bound.
        h.observe(100.0);
        assert_eq!(h.quantile(1.0), 4.0);
        // Quantiles are monotone in q.
        let qs: Vec<f64> = (0..=10).map(|i| h.quantile(i as f64 / 10.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn histogram_insert_roundtrips_and_merges() {
        let mut r = MetricsRegistry::new();
        r.histogram_observe("h", &[], &[1.0, 10.0], 0.5);
        let snapshot = r.histogram("h", &[]).unwrap().clone();
        let mut restored = MetricsRegistry::new();
        restored.histogram_insert("h", &[], snapshot.clone());
        assert_eq!(restored.histogram("h", &[]), Some(&snapshot));
        // Inserting into an existing key merges.
        restored.histogram_insert("h", &[], snapshot.clone());
        assert_eq!(restored.histogram("h", &[]).unwrap().count, 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_ready() {
        let mut r = MetricsRegistry::new();
        for v in [0.5, 1.5, 100.0] {
            r.histogram_observe("h", &[], &[1.0, 10.0], v);
        }
        let h = r.histogram("h", &[]).unwrap();
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.count, 3);
        assert!((h.sum - 102.0).abs() < 1e-12);
    }
}
