//! Property tests for the metric algebra.
//!
//! Captured runs are combined by `MetricsRegistry::merge` — across
//! devices, across experiments, across resumed searches — so merge must
//! not care how the underlying operations were grouped or ordered:
//! associative, commutative, and (for the monotone kinds) equal to having
//! recorded everything in one registry. `RunStats`, now a thin view over
//! the registry, must obey the same algebra.

use gpu_sim::shared::SharedStats;
use gpu_sim::stats::{LaunchStats, RunStats};
use gpu_sim::timing::BlockCost;
use gpu_sim::MemoryStats;
use obs::MetricsRegistry;
use proptest::prelude::*;

const NAMES: &[&str] = &["cudasw.a.x", "cudasw.a.y", "cudasw.b.x"];
const LABELS: &[&[(&str, &str)]] = &[
    &[],
    &[("phase", "inter")],
    &[("phase", "intra"), ("device", "0")],
];

const BOUNDS: &[f64] = &[1.0, 16.0, 64.0];

/// One registry operation as plain integers: (kind, name, labels, value
/// numerator). Decoded modulo the pool sizes in `apply`.
type Op = (u8, u8, u8, u16);

/// Dyadic rational: sums of these are exact in f64 in any association, so
/// floating-point rounding cannot masquerade as an algebra violation.
fn val(num: u16) -> f64 {
    num as f64 / 256.0
}

fn apply(reg: &mut MetricsRegistry, ops: &[Op], with_gauges: bool) {
    for &(kind, name, labels, num) in ops {
        let name = NAMES[name as usize % NAMES.len()];
        let labels = LABELS[labels as usize % LABELS.len()];
        match kind % 3 {
            1 if with_gauges => reg.gauge_set(name, labels, val(num)),
            0 | 1 => reg.counter_add(name, labels, val(num)),
            _ => reg.histogram_observe(name, labels, BOUNDS, val(num)),
        }
    }
}

fn registry(ops: &[Op], with_gauges: bool) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    apply(&mut r, ops, with_gauges);
    r
}

fn op() -> impl Strategy<Value = Op> {
    (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>())
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op(), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn registry_merge_is_commutative(a in ops(), b in ops()) {
        let (ra, rb) = (registry(&a, true), registry(&b, true));
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn registry_merge_is_associative(a in ops(), b in ops(), c in ops()) {
        let (ra, rb, rc) = (registry(&a, true), registry(&b, true), registry(&c, true));
        let mut left = ra.clone();
        left.merge(&rb);
        left.merge(&rc);
        let mut bc = rb.clone();
        bc.merge(&rc);
        let mut right = ra;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    // Counters and histograms are monotone sums: recording an op stream in
    // one registry equals splitting it at any point into two registries
    // and merging. (Gauges are excluded by construction — `gauge_set` is
    // last-write-wins within a scope but high-water across merged scopes,
    // which is exactly why they are not part of this property.)
    #[test]
    fn split_and_merge_matches_sequential_recording(
        all in ops(),
        cut in any::<u8>(),
    ) {
        let cut = if all.is_empty() { 0 } else { cut as usize % (all.len() + 1) };
        let mut merged = registry(&all[..cut], false);
        merged.merge(&registry(&all[cut..], false));
        prop_assert_eq!(merged, registry(&all, false));
    }

    #[test]
    fn merging_a_registry_with_itself_doubles_counters_keeps_gauges(a in ops()) {
        let r = registry(&a, true);
        let mut doubled = r.clone();
        doubled.merge(&r);
        for (key, value) in r.counters() {
            let labels: Vec<(&str, &str)> =
                key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            prop_assert_eq!(doubled.counter(&key.name, &labels), 2.0 * value);
        }
        // Gauge merge is max, so self-merge is idempotent.
        for (key, value) in r.gauges() {
            let labels: Vec<(&str, &str)> =
                key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            prop_assert_eq!(doubled.gauge(&key.name, &labels), value);
        }
    }
}

/// A minimal launch whose seconds are dyadic (exact under any summation
/// order) — only the fields `RunStats::add` reads are non-trivial.
fn launch(cells: u16, secs_num: u16) -> LaunchStats {
    LaunchStats {
        kernel: "k".into(),
        blocks: 1,
        block_dim: 32,
        totals: BlockCost {
            cells: cells as u64,
            ..Default::default()
        },
        memory: MemoryStats::default(),
        shared: SharedStats::default(),
        cycles: 0.0,
        seconds: val(secs_num),
        max_block_cycles: 1.0,
        min_block_cycles: 1.0,
    }
}

/// RunStats has no PartialEq; compare the exact field tuple (seconds via
/// bits — the dyadic inputs make bitwise equality the right bar).
fn fields(r: &RunStats) -> (u32, u64, u64, u64) {
    (
        r.launches,
        r.cells,
        r.seconds.to_bits(),
        r.global_transactions,
    )
}

fn launches() -> impl Strategy<Value = Vec<(u16, u16)>> {
    proptest::collection::vec((any::<u16>(), any::<u16>()), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Folding launches one-by-one equals splitting the stream anywhere,
    // aggregating each half, and merging — the invariant the driver's
    // registry-backed per-phase reconstruction relies on.
    #[test]
    fn run_stats_add_then_merge_is_grouping_free(
        all in launches(),
        cut in any::<u8>(),
    ) {
        let cut = if all.is_empty() { 0 } else { cut as usize % (all.len() + 1) };
        let mut sequential = RunStats::default();
        for &(c, s) in &all {
            sequential.add(&launch(c, s));
        }
        let mut left = RunStats::default();
        for &(c, s) in &all[..cut] {
            left.add(&launch(c, s));
        }
        let mut right = RunStats::default();
        for &(c, s) in &all[cut..] {
            right.add(&launch(c, s));
        }
        left.merge(&right);
        prop_assert_eq!(fields(&left), fields(&sequential));
    }

    #[test]
    fn run_stats_merge_is_commutative(a in launches(), b in launches()) {
        let fold = |ls: &[(u16, u16)]| {
            let mut r = RunStats::default();
            for &(c, s) in ls {
                r.add(&launch(c, s));
            }
            r
        };
        let (ra, rb) = (fold(&a), fold(&b));
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        prop_assert_eq!(fields(&ab), fields(&ba));
    }
}
