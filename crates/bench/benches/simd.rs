//! CPU SIMD benches: the SWPS3-role implementations against the scalar
//! reference (real host throughput in cell updates/second).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sw_align::smith_waterman::{sw_score, SwParams};
use sw_db::synth::make_query;
use sw_simd::farrar::{striped_profile, sw_striped};
use sw_simd::rognes::sw_vertical;
use sw_simd::wozniak::sw_antidiagonal;
use sw_simd::{AdaptiveStats, BackendKind, Precision, QueryEngine};

fn bench(c: &mut Criterion) {
    let params = SwParams::cudasw_default();
    let query = make_query(256, 1);
    let db = make_query(4096, 2);
    let cells = (query.len() * db.len()) as u64;
    let mut group = c.benchmark_group("simd");
    group.sample_size(20);
    group.throughput(Throughput::Elements(cells));
    group.bench_function("scalar", |b| b.iter(|| sw_score(&params, &query, &db)));
    let profile = striped_profile(&params, &query);
    group.bench_function("farrar_striped", |b| {
        b.iter(|| sw_striped(&params, &profile, &db))
    });
    group.bench_function("wozniak_antidiagonal", |b| {
        b.iter(|| sw_antidiagonal(&params, &query, &db))
    });
    group.bench_function("rognes_vertical", |b| {
        b.iter(|| sw_vertical(&params, &query, &db))
    });
    // The dispatched engines: every backend this host supports, in both
    // adaptive (byte-first) and exact word precision.
    for kind in BackendKind::available() {
        let engine = QueryEngine::with_backend(params.clone(), &query, kind);
        group.bench_function(format!("engine_{kind}_adaptive"), |b| {
            b.iter(|| {
                let mut stats = AdaptiveStats::default();
                engine.score_with(&db, Precision::Adaptive, &mut stats)
            })
        });
        group.bench_function(format!("engine_{kind}_word"), |b| {
            b.iter(|| {
                let mut stats = AdaptiveStats::default();
                engine.score_with(&db, Precision::Word, &mut stats)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
