//! Criterion bench for the Figure 2 experiment (kernel GCUPs vs length
//! variance). Reduced group size keeps iterations in milliseconds; the
//! full-scale run lives in `repro fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use cudasw_bench::experiments::fig2;
use gpu_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_c1060();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("sweep_s4096_5sigmas", |b| {
        b.iter(|| fig2::run(&spec, 4096, &[100.0, 500.0, 1000.0, 2000.0, 4000.0], 567))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
