//! Criterion bench for the Figure 3 experiment (threshold sensitivity of
//! the original kernel): one predicted whole-database search at the
//! default threshold, at a reduced Swissprot scale.

use criterion::{criterion_group, criterion_main, Criterion};
use cudasw_bench::experiments::predict;
use cudasw_core::model::PredictedIntra;
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;
use sw_db::synth::sample_lengths;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_c1060();
    let lengths = sample_lengths(100_000, PaperDb::Swissprot.lognormal(), 20, 36_000, 1);
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("predict_search_100k_default_threshold", |b| {
        b.iter(|| predict(&spec, &lengths, 572, 3072, PredictedIntra::Original, false))
    });
    group.bench_function("predict_search_100k_low_threshold", |b| {
        b.iter(|| predict(&spec, &lengths, 572, 1172, PredictedIntra::Original, false))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
