//! Criterion bench for the Table II experiment: one database × device ×
//! kernel cell at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cudasw_bench::experiments::predict;
use cudasw_core::model::PredictedIntra;
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;
use sw_db::synth::sample_lengths;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for db in [PaperDb::Swissprot, PaperDb::Tair] {
        let lengths = sample_lengths(30_000, db.lognormal(), 20, 36_000, 1);
        for (kernel, intra) in [
            ("original", PredictedIntra::Original),
            ("improved", PredictedIntra::Improved),
        ] {
            group.bench_with_input(BenchmarkId::new(db.name(), kernel), &intra, |b, &intra| {
                let spec = DeviceSpec::tesla_c1060();
                b.iter(|| predict(&spec, &lengths, 567, 3072, intra, false))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
