//! Criterion bench for the Table I experiment (global-transaction
//! counting, functional).

use criterion::{criterion_group, criterion_main, Criterion};
use cudasw_bench::experiments::table1;
use gpu_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_c1060();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("functional_2seqs_query256", |b| {
        b.iter(|| table1::run(&spec, 2, 3200, &[256]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
