//! Criterion bench for the Figure 6 experiment (Fermi caches disabled).

use criterion::{criterion_group, criterion_main, Criterion};
use cudasw_bench::experiments::predict;
use cudasw_core::model::PredictedIntra;
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;
use sw_db::synth::sample_lengths;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_c2050();
    let lengths = sample_lengths(100_000, PaperDb::Swissprot.lognormal(), 20, 36_000, 1);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("c2050_original_caches_on", |b| {
        b.iter(|| predict(&spec, &lengths, 576, 2072, PredictedIntra::Original, false))
    });
    group.bench_function("c2050_original_caches_off", |b| {
        b.iter(|| predict(&spec, &lengths, 576, 2072, PredictedIntra::Original, true))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
