//! Criterion bench for the §III ablation stages (functional kernel runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cudasw_bench::workloads;
use cudasw_core::variants::{development_stages, run_intra_variant};
use cudasw_core::ImprovedParams;
use gpu_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_c1060();
    let db = workloads::long_tail_db(2, 3200);
    let query = workloads::query(256);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(db.total_cells(256)));
    for stage in development_stages() {
        group.bench_with_input(
            BenchmarkId::new("stage", stage.name),
            &stage.variant,
            |b, &variant| {
                b.iter(|| {
                    run_intra_variant(
                        &spec,
                        db.sequences(),
                        &query,
                        ImprovedParams::default(),
                        variant,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
