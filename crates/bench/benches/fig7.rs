//! Criterion bench for the Figure 7 experiment: one GPU prediction per
//! query-length extreme, plus the host-measured SWPS3 baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cudasw_bench::experiments::predict;
use cudasw_bench::workloads;
use cudasw_core::model::PredictedIntra;
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;
use sw_db::synth::sample_lengths;
use sw_simd::Swps3Driver;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_c1060();
    let lengths = sample_lengths(100_000, PaperDb::Swissprot.lognormal(), 20, 36_000, 1);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for qlen in [144usize, 5478] {
        group.bench_function(format!("gpu_predict_query_{qlen}"), |b| {
            b.iter(|| predict(&spec, &lengths, qlen, 3072, PredictedIntra::Improved, false))
        });
    }
    // SWPS3: real striped-SIMD work, so report cell throughput.
    let db = workloads::functional_db(PaperDb::Swissprot, 100);
    let query = workloads::query(567);
    let driver = Swps3Driver::new(4);
    group.throughput(Throughput::Elements(db.total_cells(567)));
    group.bench_function("swps3_query_567_100seqs", |b| {
        b.iter(|| driver.search(&query, &db))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
