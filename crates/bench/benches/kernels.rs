//! Functional kernel microbenches: host-side cost of simulating each
//! kernel (cells/second of the *simulator*, not the modelled GPU).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cudasw_bench::workloads;
use cudasw_core::variants::run_intra_variant;
use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, VariantConfig};
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::tesla_c1060();
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    // Whole-application driver on a small Swissprot slice.
    let db = workloads::functional_db(PaperDb::Swissprot, 150);
    let query = workloads::query(144);
    group.throughput(Throughput::Elements(db.total_cells(144)));
    group.bench_function("driver_search_150seqs_query144", |b| {
        b.iter(|| {
            let mut driver = CudaSwDriver::new(spec.clone(), CudaSwConfig::improved());
            driver.search(&query, &db).unwrap()
        })
    });

    // Improved intra kernel alone.
    let long = workloads::long_tail_db(2, 3200);
    let lquery = workloads::query(512);
    group.throughput(Throughput::Elements(long.total_cells(512)));
    group.bench_function("intra_improved_2x3200_query512", |b| {
        b.iter(|| {
            run_intra_variant(
                &spec,
                long.sequences(),
                &lquery,
                ImprovedParams::default(),
                VariantConfig::improved(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
