//! Criterion bench for the Figure 5 experiment: one sweep point for each
//! of the four device × kernel configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cudasw_bench::experiments::{four_configs, predict};
use sw_db::catalog::PaperDb;
use sw_db::synth::sample_lengths;

fn bench(c: &mut Criterion) {
    let lengths = sample_lengths(100_000, PaperDb::Swissprot.lognormal(), 20, 36_000, 1);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for (label, spec, intra) in four_configs() {
        group.bench_with_input(
            BenchmarkId::new("predict_point", label),
            &(spec, intra),
            |b, (spec, intra)| b.iter(|| predict(spec, &lengths, 576, 2072, *intra, false)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
