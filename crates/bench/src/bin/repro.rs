//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # everything below, in order
//! repro fig2 | fig3 | fig5 | fig6 | fig7
//! repro table1 | table2
//! repro ablation | strips | retune | extensions | validation
//! repro chaos [--inject-faults <seed>] [--checkpoint <dir>] [--resume]
//! repro integrity               # silent-corruption detection smoke
//! repro serve                   # batch-scheduling search service replay
//! repro trace <experiment> [--out <file.json>] [--metrics <file.prom>]
//! repro host [--smoke] [--db-size <n>] [--out <file.json>] [--baseline <file>]
//! repro soak [--smoke] [--out <file.json>]
//! repro host-chaos [--seeds <a,b,c>] [--out <file.json>]
//! repro serve-rt [--smoke] [--requests <n>] [--out <file.json>] [--baseline <file>]
//! repro device-opt [--smoke] [--out <file.json>] [--baseline <file>]
//! ```
//!
//! `--inject-faults <seed>` selects the random fault seed for the chaos
//! run (default 42); different seeds deal different fault schedules, the
//! scores must match the fault-free run for every one of them.
//!
//! `--checkpoint <dir>` makes the chaos run write per-shard
//! chunk-completion logs into `dir`. Without `--resume` the directory is
//! wiped first (a fresh run); with `--resume` existing logs are replayed
//! and only the remaining chunks are recomputed — the replayed-chunk
//! count appears in the result table. Scores are bit-identical either
//! way.
//!
//! `host` benchmarks the real host compute backend (runtime-dispatched
//! SIMD, both Lazy-F kernel modes, work-stealing thread pool) in
//! wall-clock time on the current machine over a Swissprot-shaped
//! synthetic database (10⁵ sequences; `--db-size <n>` overrides,
//! `--smoke` shrinks to CI scale on the same code path). With `--out` it
//! writes the append-only `cudasw.bench.host/v2` trajectory document
//! (`BENCH_host.json`), keyed by git rev + workload config. With
//! `--baseline <file>` the fresh run is merged into that committed
//! trajectory and gated: per-row GCUPS regressions against the latest
//! comparable entry and (on hosts with ≥ 4 threads and a large database)
//! the ≥ 1.5× thread-scaling floor both exit non-zero on failure. Unlike
//! every other experiment these numbers are *real* seconds, not
//! simulated ones.
//!
//! `host-chaos` runs the crash-only host engine's seeded fault matrix
//! (every seed × {panic, stall, alloc-fail} forced faults, plus a full
//! chaos storm per seed) over the protected SIMD pool and gates on
//! bit-identical scores with zero lost or duplicated sequences. With
//! `--out` it writes the `cudasw.bench.host_chaos/v1` document
//! (`BENCH_host_chaos.json`). Like `host`, this runs in real wall-clock
//! time (injected stalls sleep real milliseconds).
//!
//! `serve-rt` runs the wall-clock serving gateway (`sw-gateway`): real
//! worker threads per shard lane, an in-process multi-tenant front-end,
//! and a seeded open-loop load generator replaying steady, bursty and
//! overload arrival schedules in real time (10⁵ requests per profile;
//! `--smoke` shrinks to CI scale on the same code path). Latency is
//! end-to-end wall time — front-end enqueue to response. With `--out` it
//! writes the append-only `cudasw.bench.serve/v1` trajectory document
//! (`BENCH_serve.json`), keyed by git rev + workload config +
//! host_threads. With `--baseline <file>` the fresh run is merged into
//! that committed trajectory and gated: shed and deadline-miss rates
//! always, latency tails only on hosts with ≥ 4 hardware threads (a
//! 1-core box time-slices the lanes and certifies nothing about tails).
//!
//! `device-opt` runs the §VII device-kernel optimization matrix
//! (baseline, each optimization alone, all together) through the
//! simulator on a trimmed Fermi and records the counted metric each
//! optimization claims to move: inter-task global transactions
//! (shared-memory staging), hidden stall cycles (cross-strip fusion),
//! hidden H2D seconds (streamed copy), and intra-task block-cycle
//! imbalance (SaLoBa balance), plus a CRC of the scores. The built-in
//! invariant gates (score/byte/cell identity, the ≥ 4× staging
//! transaction cut, fusion hiding stalls the baseline exposes, the
//! streamed-copy accounting identity, balance never worsening skew)
//! always run and exit non-zero on failure. With `--out` it writes the
//! append-only `cudasw.bench.device/v1` trajectory (`BENCH_device.json`),
//! keyed by git rev + workload config + device; with `--baseline <file>`
//! the fresh entry is additionally compared row-by-row against the
//! latest comparable committed entry (GCUPs floor, transaction ceiling).
//!
//! `trace` runs any experiment under the observability recorder and dumps
//! its span timeline as a Chrome `trace_event` JSON file — load it in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` to see the
//! nested search → kernel → transfer spans on the simulated clock.
//! `--metrics` additionally writes a Prometheus-style text snapshot of
//! every counter, gauge and histogram the run recorded.
//!
//! Every experiment ends with a one-line run report (launches, cells,
//! simulated kernel seconds, transfer traffic, injected faults) computed
//! from the same metrics registry.
//!
//! Sweep curves are produced by the validated analytic models at paper
//! scale; Table I, the ablations, the extension measurements and the
//! anchors marked "functional" execute every DP cell through the
//! simulator. See DESIGN.md §4–5 and EXPERIMENTS.md.

use std::sync::OnceLock;

use cudasw_bench::experiments::{
    ablation, chaos, device_opt, device_trajectory, extensions, fig2, fig3, fig5, fig6, fig7, host,
    host_chaos, host_trajectory, integrity, multigpu, retune, serve, serve_rt, serve_trajectory,
    soak, strips, table1, table2, validation,
};
use gpu_sim::DeviceSpec;

/// Seed from `--inject-faults <seed>`; read by the chaos experiment.
static FAULT_SEED: OnceLock<u64> = OnceLock::new();

/// Directory from `--checkpoint <dir>`; read by the chaos experiment.
static CHECKPOINT_DIR: OnceLock<String> = OnceLock::new();

/// Set by `--resume`: keep existing checkpoint logs and replay them.
static RESUME: OnceLock<bool> = OnceLock::new();

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--inject-faults") {
        let seed = match args.get(pos + 1).map(|s| s.parse::<u64>()) {
            Some(Ok(seed)) => seed,
            _ => {
                eprintln!("--inject-faults needs an integer seed");
                std::process::exit(2);
            }
        };
        FAULT_SEED.set(seed).expect("flag parsed once");
        args.drain(pos..=pos + 1);
    }
    if let Some(pos) = args.iter().position(|a| a == "--checkpoint") {
        let Some(dir) = args.get(pos + 1).cloned() else {
            eprintln!("--checkpoint needs a directory path");
            std::process::exit(2);
        };
        CHECKPOINT_DIR.set(dir).expect("flag parsed once");
        args.drain(pos..=pos + 1);
    }
    if let Some(pos) = args.iter().position(|a| a == "--resume") {
        RESUME.set(true).expect("flag parsed once");
        args.remove(pos);
    }
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    let known: &[(&str, fn())] = &[
        ("fig2", run_fig2),
        ("fig3", run_fig3),
        ("fig5", run_fig5),
        ("fig6", run_fig6),
        ("fig7", run_fig7),
        ("table1", run_table1),
        ("table2", run_table2),
        ("ablation", run_ablation),
        ("strips", run_strips),
        ("retune", run_retune),
        ("extensions", run_extensions),
        ("multigpu", run_multigpu),
        ("validation", run_validation),
        ("chaos", run_chaos),
        ("integrity", run_integrity),
        ("serve", run_serve),
        ("soak", run_soak_smoke),
        ("serve-rt", run_serve_rt_smoke),
        ("host", run_host_smoke),
        ("host-chaos", run_host_chaos_smoke),
        ("device-opt", run_device_opt_smoke),
    ];
    match cmd {
        "all" => {
            for (name, f) in known {
                eprintln!("==> {name}");
                run_with_report(name, *f);
            }
        }
        "trace" => run_trace(&args[1..], known),
        "host" => run_host(&args[1..]),
        "soak" => run_soak(&args[1..]),
        "serve-rt" => run_serve_rt(&args[1..]),
        "host-chaos" => run_host_chaos(&args[1..]),
        "device-opt" => run_device_opt(&args[1..]),
        "help" | "--help" | "-h" => {
            println!(
                "usage: repro <experiment> [--inject-faults <seed>] [--checkpoint <dir>] [--resume]"
            );
            println!("       repro trace <experiment> [--out <file.json>] [--metrics <file.prom>]");
            println!(
                "       repro host [--smoke] [--db-size <n>] [--out <file.json>] [--baseline <file>]"
            );
            println!("       repro soak [--smoke] [--out <file.json>]");
            println!("       repro host-chaos [--seeds <a,b,c>] [--out <file.json>]");
            println!(
                "       repro serve-rt [--smoke] [--requests <n>] [--out <file.json>] [--baseline <file>]"
            );
            println!("       repro device-opt [--smoke] [--out <file.json>] [--baseline <file>]");
            println!("experiments: all, fig2, fig3, fig5, fig6, fig7, table1, table2,");
            println!("             ablation, strips, retune, extensions, validation, chaos,");
            println!("             integrity, serve, soak, host, host-chaos, serve-rt, device-opt");
            println!("--inject-faults <seed>: fault seed for the chaos run (default 42)");
            println!("--checkpoint <dir>: write chunk-completion logs there during chaos");
            println!("--resume: replay existing logs in the checkpoint dir instead of wiping it");
        }
        other => match known.iter().find(|(name, _)| *name == other) {
            Some((name, f)) => run_with_report(name, *f),
            None => {
                eprintln!("unknown experiment {other:?}; try `repro help`");
                std::process::exit(2);
            }
        },
    }
}

/// Run one experiment under the observability recorder and print its run
/// report (computed from the captured metrics registry, not from any
/// experiment-specific plumbing).
fn run_with_report(name: &str, f: fn()) {
    let ((), run) = obs::capture(f);
    print_run_report(name, &run);
}

fn print_run_report(name: &str, run: &obs::Obs) {
    let m = &run.metrics;
    let launches = m.counter_sum("cudasw.gpu_sim.launch.calls", &[]);
    let cells = m.counter_sum("cudasw.gpu_sim.launch.cells", &[]);
    let kernel_secs = m.counter_sum("cudasw.gpu_sim.launch.seconds", &[]);
    let h2d = m.counter_sum("cudasw.gpu_sim.h2d.bytes", &[]);
    let d2h = m.counter_sum("cudasw.gpu_sim.d2h.bytes", &[]);
    let faults = m.counter_sum("cudasw.gpu_sim.fault.injected", &[]);
    println!(
        "[run report] {name}: {} launches, {cells:.3e} cells, \
         {kernel_secs:.4}s simulated kernel time, {:.1} KiB h2d, {:.1} KiB d2h, \
         {} injected faults",
        launches as u64,
        h2d / 1024.0,
        d2h / 1024.0,
        faults as u64,
    );
}

/// `repro trace <experiment> [--out <file.json>] [--metrics <file.prom>]`
fn run_trace(rest: &[String], known: &[(&str, fn())]) {
    let mut rest: Vec<String> = rest.to_vec();
    let mut out_path = "trace.json".to_string();
    let mut prom_path: Option<String> = None;
    if let Some(pos) = rest.iter().position(|a| a == "--out") {
        match rest.get(pos + 1) {
            Some(p) => out_path = p.clone(),
            None => {
                eprintln!("--out needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--metrics") {
        match rest.get(pos + 1) {
            Some(p) => prom_path = Some(p.clone()),
            None => {
                eprintln!("--metrics needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    let Some(exp) = rest.first() else {
        eprintln!("usage: repro trace <experiment> [--out <file.json>] [--metrics <file.prom>]");
        std::process::exit(2);
    };
    let Some((name, f)) = known.iter().find(|(name, _)| name == exp) else {
        eprintln!("unknown experiment {exp:?}; try `repro help`");
        std::process::exit(2);
    };
    let ((), run) = obs::capture(*f);
    let json = obs::chrome::to_chrome_json(&run.trace, run.clock);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print_run_report(name, &run);
    println!(
        "wrote {} spans + {} instants ({:.4}s simulated) to {out_path}",
        run.trace.spans.len(),
        run.trace.instants.len(),
        run.clock,
    );
    if let Some(prom_path) = prom_path {
        let text = obs::prom::to_prometheus_text(&run.metrics);
        if let Err(e) = std::fs::write(&prom_path, &text) {
            eprintln!("cannot write {prom_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote metrics snapshot to {prom_path}");
    }
}

fn run_fig2() {
    // Paper setup: a group of s sequences, query length 567, C1060.
    let spec = DeviceSpec::tesla_c1060();
    let s = spec.intertask_group_size(256, 30, 0) as usize;
    let r = fig2::run(&spec, s, &fig2::paper_stds(), 567);
    r.table().print();
    println!("Paper: inter-task collapses with variance, intra-task does not; the curves cross.\n");
}

fn run_fig3() {
    let spec = DeviceSpec::tesla_c1060();
    let r = fig3::run(&spec, 572);
    r.table().print();
    // Functional anchors at a reduced scale.
    let anchors = fig3::functional_anchors(&spec, 1500, &[3072, 2072, 1272], 572);
    println!("functional anchors (1500-seq Swissprot, query 572):");
    for (t, pct, g) in anchors {
        println!("  threshold {t:>5}: {pct:.2}% intra, {g:.2} GCUPs");
    }
    println!();
}

fn run_fig5() {
    let r = fig5::run(576, false);
    r.table_a().print();
    r.table_b().print();
    r.table_gains().print();
    let (go, gi, so, si) = fig5::functional_anchor(&DeviceSpec::tesla_c1060(), 1500, 2072, 576);
    println!(
        "functional anchor (C1060, threshold 2072): original {go:.2} GCUPs ({so:.0}% intra), improved {gi:.2} GCUPs ({si:.0}% intra)\n"
    );
}

fn run_fig6() {
    let r = fig6::run(576);
    r.table().print();
    println!(
        "C2050 original-kernel intra time share grows {:.1} pp with caches off; improved only {:.1} pp.\n",
        r.c2050_original_share_delta(),
        r.c2050_improved_share_delta()
    );
}

fn run_fig7() {
    let r = fig7::run(3072, 400);
    r.table().print();
    r.table_gains().print();
}

fn run_table1() {
    // Functional: a scaled long tail (the paper's is ~600 sequences; 12
    // keeps the run in seconds while preserving the per-cell rates).
    let r = table1::run(&DeviceSpec::tesla_c1060(), 12, 4000, &[567, 5478]);
    r.table(&[567, 5478]).print();
    println!(
        "reduction (orig/improved): {:.0}:1 at query 567, {:.0}:1 at query 5478 (paper: ~50:1 overall)\n",
        r.reduction(567),
        r.reduction(5478)
    );
}

fn run_table2() {
    let r = table2::run();
    r.table(&[144, 567, 1000, 3005, 5478]).print();
}

fn run_ablation() {
    let r = ablation::run(&DeviceSpec::tesla_c1060(), 6, 4000, 567);
    r.table().print();
    println!(
        "total speedup naive → improved: {:.1}x\n",
        r.total_speedup()
    );
}

fn run_strips() {
    let r = strips::run(567);
    r.table().print();
}

fn run_retune() {
    let r = retune::run(&[144, 375, 567, 1000, 2005]);
    r.table().print();
    println!(
        "mean gain from re-tuning: {:+.1} GCUPs (paper: ≈ +4)\n",
        r.mean_gain()
    );
}

fn run_extensions() {
    let r = extensions::run(&DeviceSpec::tesla_c2050(), 6, 4000, 2200);
    r.table_kernels().print();
    r.table_streaming().print();
}

fn run_multigpu() {
    let r = multigpu::run(&DeviceSpec::tesla_c1060(), 16_000, 64);
    r.table().print();
}

fn run_validation() {
    let r = validation::run(1200, 144);
    r.table().print();
}

fn run_chaos() {
    let seed = *FAULT_SEED.get().unwrap_or(&42);
    let ckpt = CHECKPOINT_DIR.get().map(std::path::PathBuf::from);
    let resume = *RESUME.get().unwrap_or(&false);
    if let Some(dir) = &ckpt {
        if !resume && dir.exists() {
            if let Err(e) = std::fs::remove_dir_all(dir) {
                eprintln!("cannot clear checkpoint dir {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create checkpoint dir {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let r = chaos::run_with_options(&DeviceSpec::tesla_c1060(), seed, 600, 64, ckpt.as_deref());
    r.table().print();
    assert!(r.scores_match, "chaos run diverged from the fault-free run");
    if resume {
        println!(
            "Resumed from checkpoint logs: {} chunks replayed, scores still byte-for-byte.\n",
            r.replayed_chunks
        );
    } else {
        println!("Faulty run reproduced the fault-free scores byte-for-byte.\n");
    }
}

fn run_integrity() {
    let r = integrity::run(&DeviceSpec::tesla_c1060(), 400, 64);
    r.table().print();
    assert!(
        r.scores_match_oracle,
        "checked run diverged from the oracle"
    );
    assert!(
        r.detected >= 1 && r.quarantined >= 1,
        "corruption went undetected"
    );
    println!("Silent corruption detected, quarantined and recomputed on the host oracle.\n");
}

/// `repro all` entry: the CI-scale chaos soak, no file output.
fn run_soak_smoke() {
    let r = soak::run(&DeviceSpec::tesla_c1060(), true);
    r.table().print();
    print_soak_summary(&r);
}

/// `repro soak [--smoke] [--out <file.json>]`
fn run_soak(rest: &[String]) {
    let mut rest: Vec<String> = rest.to_vec();
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    if let Some(pos) = rest.iter().position(|a| a == "--smoke") {
        smoke = true;
        rest.remove(pos);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--out") {
        match rest.get(pos + 1) {
            Some(p) => out_path = Some(p.clone()),
            None => {
                eprintln!("--out needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if !rest.is_empty() {
        eprintln!("unexpected arguments {rest:?}; usage: repro soak [--smoke] [--out <file.json>]");
        std::process::exit(2);
    }
    let (r, run) = obs::capture(|| soak::run(&DeviceSpec::tesla_c1060(), smoke));
    r.table().print();
    print_soak_summary(&r);
    print_run_report("soak", &run);
    if let Some(out_path) = out_path {
        if let Err(e) = std::fs::write(&out_path, r.to_json()) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote soak result ({}) to {out_path}", soak::SCHEMA);
    }
}

fn print_soak_summary(r: &soak::SoakResult) {
    println!(
        "Soak held {:.2}% availability through {} injected GPU faults \
         ({} lane death(s), {} revival(s), {} breaker trip(s))\n\
         plus {} host-lane faults ({} chunk quarantine(s));\n\
         every answer matched the fault-free replay bit-for-bit.\n",
        r.availability * 100.0,
        r.injected_faults,
        r.lane_deaths,
        r.lane_revivals,
        r.breaker_opens,
        r.host_injected_faults,
        r.host_quarantines,
    );
}

/// `repro all` entry: the host-lane fault matrix at CI scale, no file
/// output.
fn run_host_chaos_smoke() {
    let r = host_chaos::run(&host_chaos::DEFAULT_SEEDS, 120, 64);
    r.table().print();
    print_host_chaos_summary(&r);
}

/// `repro host-chaos [--seeds <a,b,c>] [--out <file.json>]`
fn run_host_chaos(rest: &[String]) {
    let mut rest: Vec<String> = rest.to_vec();
    let mut out_path: Option<String> = None;
    let mut seeds: Vec<u64> = host_chaos::DEFAULT_SEEDS.to_vec();
    if let Some(pos) = rest.iter().position(|a| a == "--seeds") {
        match rest.get(pos + 1).map(|s| {
            s.split(',')
                .map(|x| x.trim().parse::<u64>())
                .collect::<Result<Vec<u64>, _>>()
        }) {
            Some(Ok(list)) if !list.is_empty() => seeds = list,
            _ => {
                eprintln!("--seeds needs a comma-separated list of integers");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--out") {
        match rest.get(pos + 1) {
            Some(p) => out_path = Some(p.clone()),
            None => {
                eprintln!("--out needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if !rest.is_empty() {
        eprintln!(
            "unexpected arguments {rest:?}; usage: \
             repro host-chaos [--seeds <a,b,c>] [--out <file.json>]"
        );
        std::process::exit(2);
    }
    let (r, run) = obs::capture(|| host_chaos::run(&seeds, 120, 64));
    r.table().print();
    print_host_chaos_summary(&r);
    let m = &run.metrics;
    println!(
        "[run report] host-chaos: {} injected, {} panics caught, {} oracle recomputes, \
         {} redispatches, {} rechunks (real wall-clock run)",
        m.counter_sum("cudasw.simd.pool.faults_injected", &[]) as u64,
        m.counter_sum("cudasw.simd.pool.panics", &[]) as u64,
        m.counter_sum("cudasw.simd.pool.oracle_recomputes", &[]) as u64,
        m.counter_sum("cudasw.simd.pool.redispatches", &[]) as u64,
        m.counter_sum("cudasw.simd.pool.rechunks", &[]) as u64,
    );
    if let Some(out_path) = out_path {
        if let Err(e) = std::fs::write(&out_path, r.to_json()) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote host-chaos result ({}) to {out_path}",
            host_chaos::SCHEMA
        );
    }
}

fn print_host_chaos_summary(r: &host_chaos::HostChaosResult) {
    println!(
        "Host fault matrix: {} cells, {} injected faults, every cell bit-identical \
         to the clean run, zero lost or duplicated sequences.\n",
        r.cells.len(),
        r.total_injected,
    );
}

/// `repro all` entry: the CI-scale host benchmark, no file output.
fn run_host_smoke() {
    let r = host::run(&host::HostBenchOpts {
        smoke: true,
        db_size: None,
    });
    r.table().print();
    print_host_summary(&r);
}

/// Short git revision of the working tree (for trajectory keying).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `repro host [--smoke] [--db-size <n>] [--out <file.json>] [--baseline <file>]`
fn run_host(rest: &[String]) {
    let mut rest: Vec<String> = rest.to_vec();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut opts = host::HostBenchOpts::default();
    if let Some(pos) = rest.iter().position(|a| a == "--smoke") {
        opts.smoke = true;
        rest.remove(pos);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--db-size") {
        match rest.get(pos + 1).map(|s| s.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => opts.db_size = Some(n),
            _ => {
                eprintln!("--db-size needs a positive integer");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--out") {
        match rest.get(pos + 1) {
            Some(p) => out_path = Some(p.clone()),
            None => {
                eprintln!("--out needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--baseline") {
        match rest.get(pos + 1) {
            Some(p) => baseline_path = Some(p.clone()),
            None => {
                eprintln!("--baseline needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if !rest.is_empty() {
        eprintln!(
            "unexpected arguments {rest:?}; usage: \
             repro host [--smoke] [--db-size <n>] [--out <file.json>] [--baseline <file>]"
        );
        std::process::exit(2);
    }
    let (r, run) = obs::capture(|| host::run(&opts));
    r.table().print();
    print_host_summary(&r);
    let selected = run.metrics.counter_sum("cudasw.simd.backend.selected", &[]);
    let reruns = run.metrics.counter_sum("cudasw.simd.word_mode.reruns", &[]);
    println!(
        "[run report] host: {} backend selections, {} word-mode reruns (real wall-clock run)",
        selected as u64, reruns as u64
    );

    let entry = host_trajectory::TrajectoryEntry::from_result(&r, &git_rev());
    let mut trajectory = match &baseline_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read baseline {p}: {e}");
                    std::process::exit(1);
                }
            };
            match host_trajectory::Trajectory::parse(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot parse baseline {p}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => host_trajectory::Trajectory::default(),
    };

    let mut failures: Vec<String> = Vec::new();
    if let Some(base) = trajectory.baseline_for(&entry) {
        println!(
            "comparing against committed entry (rev {}, config {}, {} host threads)",
            base.rev, base.config, base.host_threads
        );
        failures.extend(host_trajectory::regressions(base, &entry));
    } else if baseline_path.is_some() {
        println!(
            "no comparable committed entry (config {}, {} host threads): recording only",
            entry.config, entry.host_threads
        );
    }
    failures.extend(host_trajectory::scaling_gate(&entry));
    trajectory.append(entry);

    if let Some(out_path) = out_path {
        if let Err(e) = std::fs::write(&out_path, trajectory.to_json()) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote host trajectory ({} entries, {}) to {out_path}",
            trajectory.entries.len(),
            host_trajectory::SCHEMA
        );
    }
    if !failures.is_empty() {
        eprintln!("host perf gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if baseline_path.is_some() {
        println!("host perf gate passed (GCUPS regression + thread-scaling checks).");
    }
}

/// `repro device-opt` inside `repro all`: smoke scale, invariant gates
/// only (no trajectory file involved).
fn run_device_opt_smoke() {
    let r = device_opt::run(true);
    r.table().print();
    let entry = device_trajectory::TrajectoryEntry::from_result(&r, &git_rev());
    let failures = device_trajectory::invariant_gates(&entry);
    if !failures.is_empty() {
        eprintln!("device optimization invariant gates FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("device optimization invariant gates passed (smoke scale).");
}

/// `repro device-opt [--smoke] [--out <file.json>] [--baseline <file>]`
fn run_device_opt(rest: &[String]) {
    let mut rest: Vec<String> = rest.to_vec();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut smoke = false;
    if let Some(pos) = rest.iter().position(|a| a == "--smoke") {
        smoke = true;
        rest.remove(pos);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--out") {
        match rest.get(pos + 1) {
            Some(p) => out_path = Some(p.clone()),
            None => {
                eprintln!("--out needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--baseline") {
        match rest.get(pos + 1) {
            Some(p) => baseline_path = Some(p.clone()),
            None => {
                eprintln!("--baseline needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if !rest.is_empty() {
        eprintln!(
            "unexpected arguments {rest:?}; usage: \
             repro device-opt [--smoke] [--out <file.json>] [--baseline <file>]"
        );
        std::process::exit(2);
    }

    let r = device_opt::run(smoke);
    r.table().print();
    let entry = device_trajectory::TrajectoryEntry::from_result(&r, &git_rev());

    let mut trajectory = match &baseline_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read baseline {p}: {e}");
                    std::process::exit(1);
                }
            };
            match device_trajectory::Trajectory::parse(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot parse baseline {p}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => device_trajectory::Trajectory::default(),
    };

    // The counted per-optimization claims gate every run, baseline or not.
    let mut failures = device_trajectory::invariant_gates(&entry);
    if let Some(base) = trajectory.baseline_for(&entry) {
        println!(
            "comparing against committed entry (rev {}, config {}, device {})",
            base.rev, base.config, base.device
        );
        failures.extend(device_trajectory::regressions(base, &entry));
    } else if baseline_path.is_some() {
        println!(
            "no comparable committed entry (config {}, device {}): recording only",
            entry.config, entry.device
        );
    }
    trajectory.append(entry);

    if let Some(out_path) = out_path {
        if let Err(e) = std::fs::write(&out_path, trajectory.to_json()) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote device trajectory ({} entries, {}) to {out_path}",
            trajectory.entries.len(),
            device_trajectory::SCHEMA
        );
    }
    if !failures.is_empty() {
        eprintln!("device perf gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "device perf gate passed (score/byte identity + per-optimization counters{}).",
        if baseline_path.is_some() {
            " + committed-baseline comparison"
        } else {
            ""
        }
    );
}

fn print_host_summary(r: &host::HostBenchResult) {
    println!(
        "host has {} hardware thread(s); scaling beyond that is not measurable here.",
        r.host_threads
    );
    for (backend, s) in &r.speedup_vs_emulated {
        println!("  {backend}: {s:.2}x vs emulated word-mode baseline (1 thread, adaptive)");
    }
    for (backend, s) in &r.thread_scaling {
        println!("  {backend}: {s:.2}x self-scaling at max measured thread count");
    }
    println!();
}

fn run_serve() {
    let spec = DeviceSpec::tesla_c1060();
    let steady = serve::run_steady(&spec, 120, 12);
    steady.table().print();
    let overload = serve::run_overload(&spec, 120, 24);
    overload.table().print();
    println!(
        "Steady load served everything in {} waves at {:.1} queries/s with zero sheds;\n\
         the overload burst shed {:.0}% explicitly instead of queueing without bound.\n",
        steady.waves,
        steady.queries_per_second,
        overload.shed_rate * 100.0
    );
}

/// `repro all` entry: the CI-scale wall-clock serving run, no file
/// output.
fn run_serve_rt_smoke() {
    let r = serve_rt::run(
        &DeviceSpec::tesla_c1060(),
        &serve_rt::ServeRtOpts {
            smoke: true,
            requests: None,
        },
    );
    r.table().print();
    print_serve_rt_summary(&r);
}

/// `repro serve-rt [--smoke] [--requests <n>] [--out <file.json>]
/// [--baseline <file>]`
fn run_serve_rt(rest: &[String]) {
    let mut rest: Vec<String> = rest.to_vec();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut opts = serve_rt::ServeRtOpts::default();
    if let Some(pos) = rest.iter().position(|a| a == "--smoke") {
        opts.smoke = true;
        rest.remove(pos);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--requests") {
        match rest.get(pos + 1).map(|s| s.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => opts.requests = Some(n),
            _ => {
                eprintln!("--requests needs a positive integer");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--out") {
        match rest.get(pos + 1) {
            Some(p) => out_path = Some(p.clone()),
            None => {
                eprintln!("--out needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if let Some(pos) = rest.iter().position(|a| a == "--baseline") {
        match rest.get(pos + 1) {
            Some(p) => baseline_path = Some(p.clone()),
            None => {
                eprintln!("--baseline needs a file path");
                std::process::exit(2);
            }
        }
        rest.drain(pos..=pos + 1);
    }
    if !rest.is_empty() {
        eprintln!(
            "unexpected arguments {rest:?}; usage: \
             repro serve-rt [--smoke] [--requests <n>] [--out <file.json>] [--baseline <file>]"
        );
        std::process::exit(2);
    }
    let r = serve_rt::run(&DeviceSpec::tesla_c1060(), &opts);
    r.table().print();
    print_serve_rt_summary(&r);

    let entry = serve_trajectory::ServeEntry::from_result(&r, &git_rev());
    let mut trajectory = match &baseline_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read baseline {p}: {e}");
                    std::process::exit(1);
                }
            };
            match serve_trajectory::ServeTrajectory::parse(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot parse baseline {p}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => serve_trajectory::ServeTrajectory::default(),
    };

    let mut failures: Vec<String> = Vec::new();
    if let Some(base) = trajectory.baseline_for(&entry) {
        println!(
            "comparing against committed entry (rev {}, config {}, {} host threads)",
            base.rev, base.config, base.host_threads
        );
        failures.extend(serve_trajectory::regressions(base, &entry));
        if entry.host_threads < serve_trajectory::LATENCY_GATE_MIN_THREADS {
            println!(
                "latency tail gate not applicable on {} host thread(s); \
                 shed/deadline-miss rates gated only",
                entry.host_threads
            );
        }
    } else if baseline_path.is_some() {
        println!(
            "no comparable committed entry (config {}, {} host threads): recording only",
            entry.config, entry.host_threads
        );
    }
    trajectory.append(entry);

    if let Some(out_path) = out_path {
        if let Err(e) = std::fs::write(&out_path, trajectory.to_json()) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote serve trajectory ({} entries, {}) to {out_path}",
            trajectory.entries.len(),
            serve_rt::SCHEMA
        );
    }
    if !failures.is_empty() {
        eprintln!("serve-rt SLO gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if baseline_path.is_some() {
        println!("serve-rt SLO gate passed (shed/deadline-miss regression checks).");
    }
}

fn print_serve_rt_summary(r: &serve_rt::ServeRtResult) {
    for p in &r.profiles {
        println!(
            "  {}: {}/{} served, shed rate {:.1}%, miss rate {:.1}%, \
             p50/p99/p999 {:.1}/{:.1}/{:.1} ms at {:.0} q/s",
            p.profile,
            p.served,
            p.requests,
            p.shed_rate * 100.0,
            p.deadline_miss_rate * 100.0,
            p.p50_ms,
            p.p99_ms,
            p.p999_ms,
            p.queries_per_second,
        );
    }
    println!(
        "wall-clock end-to-end latency (enqueue → response) on real lane \
         worker threads; gates conditional on host parallelism.\n"
    );
}
