//! Figure 3 — overall GCUPs of (original) CUDASW++ on Swissprot as a
//! function of the threshold.
//!
//! "We measured the GCUPs of the overall algorithm while comparing a query
//! sequence of length 572 to the entire Swissprot database while
//! decreasing the threshold by 100 for each of the 20 runs. [...] even
//! small variations in the threshold result in large performance impacts."
//! The x axis is the percentage of sequences compared by the intra-task
//! kernel.

use crate::experiments::{paper_threshold_sweep, pct_over, predict};
use crate::report::{series_table, Series, Table};
use crate::workloads;
use cudasw_core::model::PredictedIntra;
use cudasw_core::{CudaSwConfig, CudaSwDriver};
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;

/// Figure 3's data.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// GCUPs vs % of sequences compared by the intra-task kernel.
    pub curve: Series,
    /// GCUPs at the default threshold.
    pub at_default: f64,
    /// Worst GCUPs across the sweep.
    pub worst: f64,
}

impl Fig3Result {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = series_table(
            "Figure 3 — GCUPs of CUDASW++ (original kernel) on Swissprot vs threshold",
            "% sequences in intra-task",
            std::slice::from_ref(&self.curve),
        );
        t.title = format!(
            "{} [default {:.1} GCUPs, worst {:.1}]",
            t.title, self.at_default, self.worst
        );
        t
    }
}

/// Run the experiment at paper scale (analytic, original kernel, C1060 as
/// in the paper's §II-C numbers).
pub fn run(spec: &DeviceSpec, query_len: usize) -> Fig3Result {
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);
    let mut curve = Series::new("GCUPs");
    let mut at_default = 0.0;
    let mut worst = f64::INFINITY;
    for threshold in paper_threshold_sweep() {
        let p = predict(
            spec,
            &lengths,
            query_len,
            threshold,
            PredictedIntra::Original,
            false,
        );
        let x = pct_over(&lengths, threshold);
        let g = p.gcups();
        curve.push(x, g);
        if threshold == 3072 {
            at_default = g;
        }
        worst = worst.min(g);
    }
    Fig3Result {
        curve,
        at_default,
        worst,
    }
}

/// Functional anchors: actually execute a scaled Swissprot search at a few
/// thresholds and report `(threshold, % intra, GCUPs)` rows.
pub fn functional_anchors(
    spec: &DeviceSpec,
    db_size: usize,
    thresholds: &[usize],
    query_len: usize,
) -> Vec<(usize, f64, f64)> {
    let db = workloads::functional_db(PaperDb::Swissprot, db_size);
    let query = workloads::query(query_len);
    let mut rows = Vec::new();
    for &t in thresholds {
        let mut cfg = CudaSwConfig::original();
        cfg.threshold = t;
        let mut driver = CudaSwDriver::new(spec.clone(), cfg);
        let r = driver.search(&query, &db).expect("search");
        rows.push((t, r.fraction_long * 100.0, r.gcups()));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_threshold_decrease_costs_a_lot() {
        // The paper's headline for this figure: moving a small extra
        // percentage of sequences to the original intra-task kernel
        // produces a large performance drop.
        let r = run(&DeviceSpec::tesla_c1060(), 572);
        assert!(
            r.worst < r.at_default * 0.7,
            "default {:.1} vs worst {:.1}",
            r.at_default,
            r.worst
        );
        // And the curve is (weakly) decreasing in % intra.
        let mut sorted = r.curve.points.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(sorted.last().unwrap().1 <= sorted.first().unwrap().1);
    }

    #[test]
    fn default_threshold_near_paper_17_gcups() {
        // §II-C: "CUDASW++ achieves a performance of 17 GCUPs on a Tesla
        // C1060" at the default threshold. Calibration band: ±5.
        let r = run(&DeviceSpec::tesla_c1060(), 572);
        assert!(
            (12.0..=22.0).contains(&r.at_default),
            "default GCUPs = {:.1}",
            r.at_default
        );
    }

    #[test]
    fn functional_anchors_run_and_track_the_threshold() {
        // At the reduced functional scale the absolute GCUPs are occupancy-
        // limited (DESIGN.md §5), so this anchor checks the mechanics: the
        // intra-task share grows as the threshold drops, and both runs
        // complete with positive throughput.
        let spec = DeviceSpec::tesla_c1060();
        let rows = functional_anchors(&spec, 600, &[3072, 1272], 120);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].1 > rows[0].1, "% intra must grow: {rows:?}");
        assert!(rows.iter().all(|r| r.2 > 0.0));
    }
}
