//! Integrity smoke — silent transfer corruption: detected, quarantined,
//! never scored.
//!
//! Not a paper figure: a robustness demonstration for the end-to-end
//! transfer checksums. One silent (past-ECC) corruption fault is injected
//! into the first device-to-host score readback, and the same search runs
//! twice:
//!
//! * **unchecked** — integrity checks off: the corrupt word lands
//!   straight in the result and the scores silently diverge from the
//!   oracle (this is the failure mode the checks exist for);
//! * **checked** — integrity checks on (the default): the mismatch is
//!   detected, the affected chunk is quarantined and recomputed on the
//!   host oracle, and the final scores match it exactly.

use crate::report::Table;
use crate::workloads;
use cudasw_core::{CudaSwConfig, CudaSwDriver, RecoveryPolicy};
use gpu_sim::{DeviceSpec, FaultPlan, FaultSite};
use sw_db::catalog::PaperDb;
use sw_db::{Database, SynthConfig};
use sw_simd::{search_sequences, Precision, QueryEngine};

/// Outcome of the integrity smoke.
#[derive(Debug, Clone)]
pub struct IntegrityResult {
    /// Checksum mismatches detected by the checked run.
    pub detected: u64,
    /// Chunks quarantined by the checked run.
    pub quarantined: u64,
    /// Sequences recomputed on the host oracle.
    pub quarantined_seqs: u64,
    /// Checked-run scores equal the oracle scores, every sequence.
    pub scores_match_oracle: bool,
    /// The unchecked run silently diverged from the oracle (demonstrates
    /// the corruption actually bites without the checks).
    pub silent_divergence: bool,
}

impl IntegrityResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "integrity smoke (one silent D2H corruption)".to_string(),
            &["metric", "value"],
        );
        for (name, value) in [
            ("checksum mismatches detected", self.detected.to_string()),
            ("chunks quarantined", self.quarantined.to_string()),
            ("sequences recomputed", self.quarantined_seqs.to_string()),
            (
                "checked scores match oracle",
                self.scores_match_oracle.to_string(),
            ),
            (
                "unchecked run silently diverges",
                self.silent_divergence.to_string(),
            ),
        ] {
            t.push_row(vec![name.to_string(), value]);
        }
        t
    }
}

/// Run the integrity smoke over `db_size` sequences.
pub fn run(spec: &DeviceSpec, db_size: usize, query_len: usize) -> IntegrityResult {
    let mut synth = SynthConfig::new(
        "swissprot-integrity",
        db_size,
        PaperDb::Swissprot.lognormal(),
        workloads::SEED,
    );
    synth.max_len = 800;
    let db: Database = synth.generate();
    let query = workloads::query(query_len);
    let cfg = CudaSwConfig::improved();
    // Host-backend oracle: the dispatched engine in exact word mode, two
    // worker threads (scores are backend- and thread-count-independent).
    let engine = QueryEngine::new(cfg.params.clone(), &query);
    let oracle = search_sequences(&engine, db.sequences(), 2, Precision::Word).scores;
    // D2H transfer 0 is the first inter-task group's score readback.
    let plan = FaultPlan::none().with_silent_corruption(FaultSite::DeviceToHost, 0);

    let mut unchecked_driver = CudaSwDriver::new(spec.clone(), cfg.clone());
    unchecked_driver.dev.inject_faults(plan.clone());
    let unchecked = unchecked_driver
        .search_resilient(
            &query,
            &db,
            &RecoveryPolicy {
                integrity_checks: false,
                ..RecoveryPolicy::default()
            },
        )
        .expect("unchecked search");

    let before = obs::snapshot_metrics();
    let mut checked_driver = CudaSwDriver::new(spec.clone(), cfg);
    checked_driver.dev.inject_faults(plan);
    let checked = checked_driver
        .search_resilient(&query, &db, &RecoveryPolicy::default())
        .expect("checked search");
    let delta = obs::snapshot_metrics().diff(&before);

    IntegrityResult {
        detected: delta.counter_sum("cudasw.core.integrity.detected", &[]) as u64,
        quarantined: checked.recovery.quarantined_chunks,
        quarantined_seqs: checked.recovery.quarantined_seqs,
        scores_match_oracle: checked.result.scores == oracle,
        silent_divergence: unchecked.result.scores != oracle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_corruption_is_detected_quarantined_and_not_scored() {
        let r = run(&DeviceSpec::tesla_c1060(), 400, 64);
        assert_eq!(r.detected, 1);
        assert_eq!(r.quarantined, 1);
        assert!(r.quarantined_seqs >= 1);
        assert!(r.scores_match_oracle);
        assert!(r.silent_divergence);
    }
}
