//! §VI — re-tuning the threshold for the improved kernel (TAIR case) and
//! automatic threshold selection.
//!
//! "We decreased the threshold from 3072 to 1500 and reran CUDASW++ with
//! our improved kernel on the TAIR database. At this threshold setting,
//! 0.96% of the sequences were over the threshold. For query sequences
//! longer than 144, the performance increased to over 21 GCUPs in all
//! cases on the C2050. This is close to a 4 GCUPs increase over the
//! performance reported in Table II by simply decreasing the threshold."

use crate::experiments::{pct_over, predict};
use crate::report::Table;
use crate::workloads;
use cudasw_core::model::PredictedIntra;
use cudasw_core::threshold::auto_threshold;
use cudasw_core::{ImprovedParams, DEFAULT_THRESHOLD};
use gpu_sim::{DeviceSpec, TimingModel};
use sw_db::catalog::PaperDb;
use sw_db::Database;

/// The re-tuning experiment's data.
#[derive(Debug, Clone)]
pub struct RetuneResult {
    /// `(query_len, GCUPs at 3072, GCUPs at 1500)` rows on the C2050.
    pub rows: Vec<(usize, f64, f64)>,
    /// Percent of sequences over each threshold `(at 3072, at 1500)`.
    pub pct_over: (f64, f64),
    /// The auto-tuner's threshold choice and predicted GCUPs (query 567).
    pub auto_choice: (usize, f64),
}

impl RetuneResult {
    /// Mean GCUPs gain from the re-tune.
    pub fn mean_gain(&self) -> f64 {
        self.rows.iter().map(|r| r.2 - r.1).sum::<f64>() / self.rows.len() as f64
    }

    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "§VI TAIR re-threshold on the C2050 — {:.2}% over 3072 vs {:.2}% over 1500; auto-threshold picks {} ({:.1} GCUPs)",
                self.pct_over.0, self.pct_over.1, self.auto_choice.0, self.auto_choice.1
            ),
            &["query", "GCUPs @ 3072", "GCUPs @ 1500", "gain"],
        );
        for (q, a, b) in &self.rows {
            t.push_row(vec![
                q.to_string(),
                format!("{a:.1}"),
                format!("{b:.1}"),
                format!("{:+.1}", b - a),
            ]);
        }
        t
    }
}

/// Run the TAIR re-tuning experiment at paper scale.
pub fn run(query_lens: &[usize]) -> RetuneResult {
    let spec = DeviceSpec::tesla_c2050();
    let lengths = workloads::paper_scale_lengths(PaperDb::Tair);
    let mut rows = Vec::new();
    for &q in query_lens {
        let base = predict(
            &spec,
            &lengths,
            q,
            DEFAULT_THRESHOLD,
            PredictedIntra::Improved,
            false,
        );
        let retuned = predict(&spec, &lengths, q, 1500, PredictedIntra::Improved, false);
        rows.push((q, base.gcups(), retuned.gcups()));
    }
    // Auto-tuner over the full-scale TAIR lengths (a reduced sequence
    // count would under-fill the inter-task groups and bias the model).
    let db_lengths = Database::new(
        "TAIR lengths",
        sw_align::Alphabet::Protein,
        lengths
            .iter()
            .map(|&l| sw_db::Sequence::new("l", vec![0u8; l]))
            .collect(),
    );
    let scan = auto_threshold(
        &spec,
        &TimingModel::default(),
        &db_lengths,
        567,
        PredictedIntra::Improved,
        &ImprovedParams::default(),
        24,
    );
    RetuneResult {
        pct_over: (
            pct_over(&lengths, DEFAULT_THRESHOLD),
            pct_over(&lengths, 1500),
        ),
        rows,
        auto_choice: (scan.best_threshold, scan.best_gcups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_the_threshold_helps_tair_with_the_improved_kernel() {
        let r = run(&[375, 567, 1000]);
        assert!(
            r.mean_gain() > 0.0,
            "re-tune should help: mean gain {:.2}",
            r.mean_gain()
        );
        // The re-tune moves ~1% of sequences over the threshold.
        assert!(r.pct_over.1 > r.pct_over.0);
        assert!((0.3..=3.0).contains(&r.pct_over.1), "{:?}", r.pct_over);
    }

    #[test]
    fn auto_tuner_prefers_a_lower_threshold_than_default() {
        let r = run(&[567]);
        assert!(
            r.auto_choice.0 <= DEFAULT_THRESHOLD,
            "auto threshold {} above default",
            r.auto_choice.0
        );
        assert!(r.auto_choice.1 > 0.0);
    }
}
