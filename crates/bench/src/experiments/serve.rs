//! Serving run — the `sw-serve` batch-scheduling service replaying a
//! seeded open-loop trace.
//!
//! Not a paper figure: a systems demonstration on top of the resilient
//! driver. Two scenarios share one synthetic database:
//!
//! * **steady** — arrivals the service can absorb: zero sheds, every
//!   query answered, waves coalesce compatible queries onto a
//!   device-resident database;
//! * **overload** — a burst far above capacity against a tiny admission
//!   queue: explicit shedding with reasons instead of unbounded queueing.
//!
//! The interesting outputs are the serving metrics the paper's
//! single-query benchmarks cannot express: queries/s, p50/p99 latency,
//! shed rate and profile-cache hit rate, next to the familiar GCUPS.

use crate::report::Table;
use crate::workloads;
use cudasw_core::{CudaSwConfig, ImprovedParams};
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;
use sw_serve::{AdmissionConfig, SearchService, ServeConfig, TraceConfig};

/// Outcome of one serving scenario.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Scenario label ("steady" / "overload").
    pub scenario: String,
    /// Requests offered by the trace.
    pub offered: usize,
    /// Requests answered.
    pub served: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Waves dispatched.
    pub waves: u64,
    /// Aggregate throughput over the makespan, GCUPS.
    pub gcups: f64,
    /// Completed queries per simulated second.
    pub queries_per_second: f64,
    /// Median latency, simulated seconds.
    pub p50_seconds: f64,
    /// 99th-percentile latency, simulated seconds.
    pub p99_seconds: f64,
    /// Fraction of offered requests shed.
    pub shed_rate: f64,
    /// Profile-cache hit fraction.
    pub cache_hit_rate: f64,
    /// Database stagings across all lanes (device-resident reuse shows
    /// up as this staying at the lane count).
    pub db_stagings: u64,
}

impl ServeResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("serve: {} scenario", self.scenario),
            &["metric", "value"],
        );
        for (name, value) in [
            ("offered requests", self.offered.to_string()),
            ("served", self.served.to_string()),
            ("shed", self.shed.to_string()),
            ("waves", self.waves.to_string()),
            ("GCUPS", format!("{:.3}", self.gcups)),
            ("queries/s", format!("{:.1}", self.queries_per_second)),
            ("p50 latency (s)", format!("{:.5}", self.p50_seconds)),
            ("p99 latency (s)", format!("{:.5}", self.p99_seconds)),
            ("shed rate", format!("{:.2}", self.shed_rate)),
            ("cache hit rate", format!("{:.2}", self.cache_hit_rate)),
            ("database stagings", self.db_stagings.to_string()),
        ] {
            t.push_row(vec![name.to_string(), value]);
        }
        t
    }
}

/// Search configuration shared by both scenarios: small inter-task
/// launch shapes so the reduced functional database still spans several
/// groups per shard.
fn search_config() -> CudaSwConfig {
    CudaSwConfig {
        threshold: 400,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        ..CudaSwConfig::improved()
    }
}

/// The shared workload database.
fn serve_db(db_size: usize) -> sw_db::Database {
    workloads::functional_db(PaperDb::Swissprot, db_size)
}

/// Run one scenario and collect the serving metrics.
fn run_scenario(
    scenario: &str,
    spec: &DeviceSpec,
    cfg: &ServeConfig,
    trace_cfg: &TraceConfig,
    db: &sw_db::Database,
) -> ServeResult {
    let trace = trace_cfg.generate();
    let before = obs::snapshot_metrics();
    let mut service = SearchService::new(spec, cfg, db, &[]);
    let report = service.run_trace(&trace).expect("fault-free serving run");
    let delta = obs::snapshot_metrics().diff(&before);
    ServeResult {
        scenario: scenario.to_string(),
        offered: trace.len(),
        served: report.responses.len(),
        shed: report.sheds.len(),
        waves: report.waves,
        gcups: report.gcups(),
        queries_per_second: report.queries_per_second(),
        p50_seconds: report.latency_percentile(50.0),
        p99_seconds: report.latency_percentile(99.0),
        shed_rate: report.shed_rate(),
        cache_hit_rate: service.cache_hit_rate(),
        db_stagings: delta.counter_sum("cudasw.serve.db_stagings", &[]) as u64,
    }
}

/// The steady scenario: `requests` queries the service absorbs without
/// shedding. Doubles as the CI smoke run — panics if anything sheds or
/// throughput is zero.
pub fn run_steady(spec: &DeviceSpec, db_size: usize, requests: usize) -> ServeResult {
    let cfg = ServeConfig {
        devices: 2,
        search: search_config(),
        ..ServeConfig::default()
    };
    let trace_cfg = TraceConfig {
        mean_interarrival_seconds: 2.0e-3,
        ..TraceConfig::small(requests, workloads::SEED)
    };
    let r = run_scenario("steady", spec, &cfg, &trace_cfg, &serve_db(db_size));
    assert_eq!(r.shed, 0, "steady scenario must not shed");
    assert_eq!(r.served, r.offered, "every offered request answered");
    assert!(r.queries_per_second > 0.0, "throughput must be non-zero");
    r
}

/// The overload scenario: a burst far above capacity against a tiny
/// admission queue — shedding is the expected, explicit outcome.
pub fn run_overload(spec: &DeviceSpec, db_size: usize, requests: usize) -> ServeResult {
    let cfg = ServeConfig {
        devices: 2,
        search: search_config(),
        admission: AdmissionConfig {
            queue_capacity: 4,
            tenant_quota: 2,
        },
        ..ServeConfig::default()
    };
    let trace_cfg = TraceConfig {
        mean_interarrival_seconds: 1.0e-9,
        tenants: vec!["alpha".to_string(), "beta".to_string()],
        ..TraceConfig::small(requests, workloads::SEED ^ 0xB04D)
    };
    let r = run_scenario("overload", spec, &cfg, &trace_cfg, &serve_db(db_size));
    assert!(r.shed > 0, "overload scenario must shed");
    assert!(r.served > 0, "overload still serves what it admitted");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_scenario_serves_everything() {
        let r = run_steady(&DeviceSpec::tesla_c1060(), 80, 8);
        assert_eq!(r.served, 8);
        assert_eq!(r.shed, 0);
        assert!(r.gcups > 0.0);
        assert!(r.p99_seconds >= r.p50_seconds);
    }

    #[test]
    fn overload_scenario_sheds_and_serves() {
        let r = run_overload(&DeviceSpec::tesla_c1060(), 80, 16);
        assert!(r.shed > 0);
        assert_eq!(r.served + r.shed, r.offered);
        assert!(r.shed_rate > 0.0 && r.shed_rate < 1.0);
    }
}
