//! `repro serve-rt` — the wall-clock real-time serving benchmark.
//!
//! Everything else the serving stack reports runs on the discrete-event
//! simulated clock. This experiment runs the **sw-gateway**: real worker
//! threads per shard lane (gpu-sim devices + the crash-only host SIMD
//! pool), an in-process multi-tenant front-end, and a seeded open-loop
//! load generator replaying arrival schedules in real time. Latency here
//! is *end-to-end wall time* — front-end enqueue to response — so the
//! tail percentiles include queueing delay, wave linger and lane
//! contention, which no simulated number can certify.
//!
//! Three load profiles over the same database and gateway config:
//!
//! * **steady** — Poisson arrivals the service absorbs; shed-free,
//!   deadlines met: the baseline SLO row.
//! * **bursty** — alternating hot/cold phases; the EDF batcher and the
//!   admission queue soak the bursts.
//! * **overload** — sustained arrivals past capacity; the gateway must
//!   shed explicitly (bounded queue, quotas) while the served remainder
//!   keeps a sane tail.
//!
//! Results append to `BENCH_serve.json` (schema `cudasw.bench.serve/v1`,
//! one entry per `(git rev, config, host_threads)` — see
//! [`super::serve_trajectory`]); `verify.sh` regression-gates shed and
//! deadline-miss rates against the committed baseline, and latency
//! tails on hosts with enough parallelism to measure them.

use crate::report::Table;
use cudasw_core::{CudaSwConfig, ImprovedParams};
use gpu_sim::DeviceSpec;
use sw_db::synth::database_with_lengths;
use sw_gateway::loadgen::drive;
use sw_gateway::{Gateway, GatewayConfig, LoadConfig, LoadProfile, Outcome};

/// JSON schema tag of `BENCH_serve.json`.
pub const SCHEMA: &str = "cudasw.bench.serve/v1";

/// Requests per profile in a full run (3 profiles ⇒ 1.2×10⁵ queries
/// total, inside the 10⁵–10⁶ open-loop budget).
pub const FULL_REQUESTS: usize = 40_000;

/// Requests per profile in a smoke run (CI-sized, seconds not minutes).
pub const SMOKE_REQUESTS: usize = 1_500;

/// Load-generator seed; the whole benchmark is a pure function of this.
pub const SEED: u64 = 0x52_54; // "RT"

/// Mean steady interarrival, wall seconds.
const MEAN_INTERARRIVAL: f64 = 1.0e-3;

/// Deadline slack range, wall seconds. Tight enough that a stalled
/// pipeline shows up as misses, loose enough for a loaded CI box.
const DEADLINE_SLACK: (f64, f64) = (0.25, 0.5);

/// Options of one `repro serve-rt` invocation.
#[derive(Debug, Clone, Default)]
pub struct ServeRtOpts {
    /// CI-sized run.
    pub smoke: bool,
    /// Override requests per profile (profiling / calibration).
    pub requests: Option<usize>,
}

/// One profile's measured serving row.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Profile name (`steady` / `bursty` / `overload`).
    pub profile: String,
    /// Requests offered by the schedule.
    pub requests: usize,
    /// Requests answered with scores.
    pub served: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Requests aborted by shutdown (0 in a healthy run).
    pub aborted: usize,
    /// End-to-end latency percentiles, milliseconds.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    /// Fraction of offered requests shed.
    pub shed_rate: f64,
    /// Fraction of answered requests that missed their deadline.
    pub deadline_miss_rate: f64,
    /// Completed queries per wall second.
    pub queries_per_second: f64,
    /// Aggregate throughput over the wall makespan, GCUPS.
    pub gcups: f64,
    /// Wall seconds, first submission → last completion.
    pub wall_seconds: f64,
    /// Waves dispatched.
    pub waves: u64,
}

/// The full benchmark result (all profiles, one host).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRtResult {
    /// Stable workload key: database shape × schedule size.
    pub config: String,
    /// Hardware threads of the measuring host (gates are conditional on
    /// this — a 1-core box cannot certify latency tails).
    pub host_threads: usize,
    /// gpu-sim device lanes (the host SIMD lane is always present too).
    pub devices: usize,
    /// Database sequences.
    pub db_size: usize,
    /// Requests per profile.
    pub requests_per_profile: usize,
    /// One row per load profile.
    pub profiles: Vec<ProfileRow>,
}

impl ServeRtResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "serve-rt: wall-clock gateway, {} requests/profile, {} devices + host lane ({} host threads)",
                self.requests_per_profile, self.devices, self.host_threads
            ),
            &[
                "profile", "served", "shed", "aborted", "p50 ms", "p99 ms", "p999 ms",
                "miss rate", "q/s", "GCUPS", "wall s",
            ],
        );
        for p in &self.profiles {
            t.push_row(vec![
                p.profile.clone(),
                p.served.to_string(),
                p.shed.to_string(),
                p.aborted.to_string(),
                format!("{:.2}", p.p50_ms),
                format!("{:.2}", p.p99_ms),
                format!("{:.2}", p.p999_ms),
                format!("{:.3}", p.deadline_miss_rate),
                format!("{:.0}", p.queries_per_second),
                format!("{:.3}", p.gcups),
                format!("{:.1}", p.wall_seconds),
            ]);
        }
        t
    }
}

/// The gateway's search configuration: small inter-task blocks so the
/// mixed-length database exercises both kernels on every shard.
fn search_config() -> CudaSwConfig {
    CudaSwConfig {
        threshold: 100,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        ..CudaSwConfig::improved()
    }
}

/// The serving database: mixed lengths across the kernel threshold.
fn serve_db() -> sw_db::Database {
    database_with_lengths(
        "serve-rt-db",
        &[20, 30, 40, 50, 60, 80, 100, 110, 120, 150],
        71,
    )
}

fn load_config(profile: LoadProfile, requests: usize) -> LoadConfig {
    LoadConfig {
        profile,
        requests,
        tenants: vec![
            "tenant-a".to_string(),
            "tenant-b".to_string(),
            "tenant-c".to_string(),
        ],
        mean_interarrival_seconds: MEAN_INTERARRIVAL,
        burst_period_seconds: 0.25,
        burst_factor: 4.0,
        overload_factor: 8.0,
        query_len: (16, 32),
        deadline_slack_seconds: DEADLINE_SLACK,
        param_classes: vec![sw_align::SwParams::cudasw_default()],
        seed: SEED,
    }
}

/// Run one profile against a fresh gateway and collect its row.
fn run_profile(spec: &DeviceSpec, profile: LoadProfile, requests: usize) -> ProfileRow {
    let cfg = GatewayConfig {
        devices: 2,
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        search: search_config(),
        drain_grace_seconds: 30.0,
        ..GatewayConfig::default()
    };
    let db = serve_db();
    let schedule = load_config(profile, requests).schedule();
    let gateway = Gateway::start(spec, &cfg, &db, &[]);
    let tickets = drive(&gateway.handle(), &schedule);
    // Open-loop bookkeeping: outcomes buffered on the ticket channels;
    // resolving after the drive keeps the arrival process undisturbed.
    for t in tickets {
        match t.wait() {
            Outcome::Served(_) | Outcome::Shed(_) | Outcome::Aborted => {}
        }
    }
    let report = gateway.shutdown();
    assert_eq!(
        report.offered(),
        requests,
        "every {} request must resolve exactly once (served {} + shed {} + aborted {})",
        profile.as_str(),
        report.responses.len(),
        report.sheds.len(),
        report.aborted.len(),
    );
    assert_eq!(
        report
            .metrics
            .counter("cudasw.gateway.duplicate_commits", &[]),
        0.0,
        "exactly-once commit discipline"
    );
    ProfileRow {
        profile: profile.as_str().to_string(),
        requests,
        served: report.responses.len(),
        shed: report.sheds.len(),
        aborted: report.aborted.len(),
        p50_ms: report.latency_percentile(50.0) * 1.0e3,
        p99_ms: report.latency_percentile(99.0) * 1.0e3,
        p999_ms: report.latency_percentile(99.9) * 1.0e3,
        shed_rate: report.shed_rate(),
        deadline_miss_rate: report.deadline_miss_rate(),
        queries_per_second: report.queries_per_second(),
        gcups: report.gcups(),
        wall_seconds: report.wall_seconds,
        waves: report.waves,
    }
}

/// Run the benchmark: all three profiles, one gateway each.
pub fn run(spec: &DeviceSpec, opts: &ServeRtOpts) -> ServeRtResult {
    let requests = opts.requests.unwrap_or(if opts.smoke {
        SMOKE_REQUESTS
    } else {
        FULL_REQUESTS
    });
    let db = serve_db();
    let profiles = [
        LoadProfile::Steady,
        LoadProfile::Bursty,
        LoadProfile::Overload,
    ]
    .into_iter()
    .map(|p| run_profile(spec, p, requests))
    .collect();
    ServeRtResult {
        config: format!("rt-mixed{}x16-32-r{requests}", db.len()),
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        devices: 2,
        db_size: db.len(),
        requests_per_profile: requests,
        profiles,
    }
}
