//! §VII device-kernel optimization bench (`repro device-opt`).
//!
//! Runs the same mixed workload once per [`DeviceKernelConfig`] of
//! interest — baseline, each optimization alone, and all together — and
//! records the *counted* metric each optimization claims to move:
//! inter-task global transactions (shared-memory staging), hidden
//! pipeline latency (cross-strip fusion), hidden H2D seconds (streamed
//! copy), and intra-task block-cycle imbalance (SaLoBa balance). Every
//! row also records a CRC of the scores: the optimizations must be
//! bit-identical, and the trajectory gates hold them to it.
//!
//! The workload runs on a deliberately trimmed Fermi (4 SMs, one block
//! per SM) so that, at bench scale, the driver forms one inter-task
//! group that fits a single shared-memory panel *and* one that spans
//! several panels, and the intra-task phase has several times more
//! pairs than SMs — each optimization has something to optimize.

use crate::report::Table;
use cudasw_core::{
    CudaSwConfig, CudaSwDriver, DeviceKernelConfig, ImprovedParams, IntraKernelChoice,
    VariantConfig,
};
use gpu_sim::{crc32, DeviceSpec};
use sw_db::synth::{database_with_lengths, make_query};

/// One measured optimization configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceOptRow {
    /// `DeviceKernelConfig::label()` — "none", "staging", ..., "all".
    pub label: String,
    /// Overall GCUPs of the search.
    pub gcups: f64,
    /// Simulated kernel seconds (inter + intra).
    pub kernel_seconds: f64,
    /// DP cells computed (must be identical across rows).
    pub cells: u64,
    /// Global memory transactions of the inter-task kernel.
    pub inter_global_transactions: u64,
    /// Pipeline-stall cycles hidden by cross-strip fusion (0 unfused).
    pub hidden_latency_cycles: u64,
    /// Exposed H2D seconds.
    pub h2d_seconds: f64,
    /// H2D seconds hidden behind kernel execution (0 unstreamed).
    pub h2d_hidden_seconds: f64,
    /// Bytes moved host→device (must be identical across rows).
    pub h2d_bytes: u64,
    /// Max/min block cycles of the intra-task launch.
    pub intra_imbalance: f64,
    /// CRC-32 of the score vector (must be identical across rows).
    pub score_crc: u32,
}

/// The whole measured matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceOptResult {
    /// Stable workload key (`devopt-<mode>-<db>x<query>`).
    pub config: String,
    /// Device the matrix ran on.
    pub device: String,
    /// Database sequences.
    pub db_size: usize,
    /// Query length.
    pub query_len: usize,
    /// DP cells of one database pass.
    pub cells: u64,
    /// One row per measured configuration.
    pub rows: Vec<DeviceOptRow>,
}

impl DeviceOptResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "§VII device optimizations — {} on {} ({} seqs, query {})",
                self.config, self.device, self.db_size, self.query_len
            ),
            &[
                "config",
                "GCUPs",
                "inter glob txns",
                "hidden cycles",
                "h2d exposed (s)",
                "h2d hidden (s)",
                "intra imbalance",
                "score crc",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.label.clone(),
                format!("{:.2}", r.gcups),
                r.inter_global_transactions.to_string(),
                r.hidden_latency_cycles.to_string(),
                format!("{:.6}", r.h2d_seconds),
                format!("{:.6}", r.h2d_hidden_seconds),
                format!("{:.2}", r.intra_imbalance),
                format!("{:08x}", r.score_crc),
            ]);
        }
        t
    }

    /// Row by configuration label.
    pub fn row(&self, label: &str) -> Option<&DeviceOptRow> {
        self.rows.iter().find(|r| r.label == label)
    }
}

/// The measured configurations: baseline, each flag alone, all together.
pub fn bench_configs() -> Vec<DeviceKernelConfig> {
    let base = DeviceKernelConfig::default();
    vec![
        base,
        DeviceKernelConfig {
            boundary_staging: true,
            ..base
        },
        DeviceKernelConfig {
            shared_only: true,
            ..base
        },
        DeviceKernelConfig {
            pipeline_fusion: true,
            ..base
        },
        DeviceKernelConfig {
            streamed_h2d: true,
            ..base
        },
        DeviceKernelConfig {
            balanced_intra: true,
            ..base
        },
        DeviceKernelConfig::all_on(),
    ]
}

/// The bench device: a Fermi trimmed to 4 SMs × 1 block so the group
/// structure (single-panel group, multi-panel group, pairs ≫ SMs) is
/// reachable at bench scale. Shared memory per SM — which decides panel
/// geometry — is stock C2050.
pub fn bench_spec() -> DeviceSpec {
    let mut spec = DeviceSpec::tesla_c2050();
    spec.sm_count = 4;
    spec.max_blocks_per_sm = 1;
    spec
}

/// Name of [`bench_spec`] recorded in the trajectory.
pub const BENCH_DEVICE: &str = "tesla-c2050/sm4x1";

/// Length threshold used by the bench (shrunk with the workload so the
/// intra-task phase exists at bench scale).
pub const BENCH_THRESHOLD: usize = 1000;

fn workload(smoke: bool) -> (Vec<usize>, usize) {
    let mut lengths = Vec::new();
    if smoke {
        // Group 1: 128 subjects that fit one 64-column panel.
        lengths.extend(std::iter::repeat_n(40usize, 128));
        // Group 2: multi-panel subjects.
        lengths.extend(std::iter::repeat_n(128usize, 32));
        // Intra-task: a heavy head plus a balanced tail.
        lengths.push(2000);
        lengths.extend((0..7).map(|i| 1150 + 50 * i));
        (lengths, 160)
    } else {
        lengths.extend(std::iter::repeat_n(60usize, 128));
        lengths.extend(std::iter::repeat_n(256usize, 64));
        lengths.push(4000);
        lengths.extend((0..15).map(|i| 1100 + 50 * i));
        (lengths, 300)
    }
}

/// Run the optimization matrix. `smoke` shrinks the workload to CI
/// scale on the identical code path.
pub fn run(smoke: bool) -> DeviceOptResult {
    let (lengths, query_len) = workload(smoke);
    let db = database_with_lengths("device-opt", &lengths, 101);
    let query = make_query(query_len, 53);
    let mode = if smoke { "smoke" } else { "full" };

    let mut rows = Vec::new();
    for device in bench_configs() {
        let cfg = CudaSwConfig {
            threshold: BENCH_THRESHOLD,
            inter_threads_per_block: 32,
            improved: ImprovedParams {
                threads_per_block: 32,
                tile_height: 4,
            },
            intra: IntraKernelChoice::Improved(VariantConfig::improved()),
            device,
            ..CudaSwConfig::improved()
        };
        let (result, run) = obs::capture(|| {
            let mut driver = CudaSwDriver::new(bench_spec(), cfg);
            driver.search(&query, &db)
        });
        let result = match result {
            Ok(r) => r,
            Err(e) => panic!("device-opt bench search failed ({}): {e}", device.label()),
        };
        let m = &run.metrics;
        let inter = [("kernel", "inter_task")];
        let intra = [("kernel", "intra_improved")];
        let min_cycles = m.counter_sum("cudasw.gpu_sim.launch.block_cycles_min", &intra);
        let score_bytes: Vec<u8> = result.scores.iter().flat_map(|s| s.to_le_bytes()).collect();
        rows.push(DeviceOptRow {
            label: device.label(),
            gcups: result.gcups(),
            kernel_seconds: result.kernel_seconds(),
            cells: result.total_cells(),
            inter_global_transactions: m
                .counter_sum("cudasw.gpu_sim.launch.global_transactions", &inter)
                as u64,
            hidden_latency_cycles: m
                .counter_sum("cudasw.gpu_sim.launch.hidden_latency_cycles", &intra)
                as u64,
            h2d_seconds: m.counter_sum("cudasw.gpu_sim.h2d.seconds", &[]),
            // Synchronous sessions sum to a ~1e-19 negative through
            // float cancellation; clamp so "no hiding" reads as zero.
            h2d_hidden_seconds: m
                .counter_sum("cudasw.gpu_sim.h2d.hidden_seconds", &[])
                .max(0.0),
            h2d_bytes: m.counter_sum("cudasw.gpu_sim.h2d.bytes", &[]) as u64,
            intra_imbalance: if min_cycles > 0.0 {
                m.counter_sum("cudasw.gpu_sim.launch.block_cycles_max", &intra) / min_cycles
            } else {
                1.0
            },
            score_crc: crc32(&score_bytes),
        });
    }

    DeviceOptResult {
        config: format!("devopt-{mode}-{}x{query_len}", db.len()),
        device: BENCH_DEVICE.to_string(),
        db_size: db.len(),
        query_len,
        cells: db.total_cells(query_len),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_moves_every_counted_metric() {
        let r = run(true);
        assert_eq!(r.rows.len(), bench_configs().len());
        let row = |label: &str| r.row(label).unwrap_or_else(|| panic!("row {label}"));
        let none = row("none");
        // Identical answers and identical work across the matrix.
        for other in &r.rows {
            assert_eq!(other.score_crc, none.score_crc, "row {}", other.label);
            assert_eq!(other.cells, none.cells, "row {}", other.label);
        }
        // Each optimization moved its own metric.
        assert!(
            none.inter_global_transactions >= 4 * row("staging").inter_global_transactions,
            "staging: {} vs {}",
            none.inter_global_transactions,
            row("staging").inter_global_transactions
        );
        assert!(row("shared").inter_global_transactions < none.inter_global_transactions);
        assert_eq!(none.hidden_latency_cycles, 0);
        assert!(row("fusion").hidden_latency_cycles > 0);
        assert_eq!(row("stream").h2d_bytes, none.h2d_bytes);
        assert!(row("stream").h2d_hidden_seconds > 0.0);
        assert!(row("stream").h2d_seconds < none.h2d_seconds);
        assert!(row("balance").intra_imbalance < none.intra_imbalance);
        assert!(row("all").kernel_seconds <= none.kernel_seconds);
    }

    #[test]
    fn table_renders_every_row() {
        let r = run(true);
        let rendered = r.table().render();
        for row in &r.rows {
            assert!(rendered.contains(&row.label), "{} missing", row.label);
        }
    }
}
