//! Chaos run — the resilient driver under random fault injection.
//!
//! Not a paper figure: a robustness demonstration. A 2-device search runs
//! with seeded random faults (transient launch failures, hangs, transfer
//! corruption) plus one scripted device loss, and the merged scores are
//! checked byte-for-byte against a fault-free run. The interesting output
//! is the recovery ledger: how many retries, re-chunks, shard
//! re-dispatches and CPU-fallback sequences the faults cost.

use std::path::Path;

use crate::report::Table;
use crate::workloads;
use cudasw_core::{
    multi_gpu_search, multi_gpu_search_resilient_checkpointed, CudaSwConfig, RecoveryPolicy,
};
use gpu_sim::{DeviceSpec, FaultPlan, FaultRates, FaultSite};
use sw_db::catalog::PaperDb;
use sw_db::{Database, SynthConfig};

/// Watchdog budget for chaos runs: far above any clean launch at this
/// scale, far below the hang inflation (`HANG_CYCLE_MULTIPLIER`).
const WATCHDOG_CYCLES: u64 = 10_000_000_000;

/// Outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// Fault seed used for the random plans.
    pub seed: u64,
    /// Devices the search started with.
    pub devices: usize,
    /// Devices still alive at the end.
    pub surviving: usize,
    /// Scores identical to the fault-free run.
    pub scores_match: bool,
    /// Chunks replayed from a checkpoint log instead of recomputed
    /// (non-zero only when resuming from a previous run's directory).
    pub replayed_chunks: u64,
    /// The aggregated recovery ledger.
    pub recovery: cudasw_core::RecoveryReport,
}

impl ChaosResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("chaos run (seed {}, {} devices)", self.seed, self.devices),
            &["metric", "value"],
        );
        let r = &self.recovery;
        for (name, value) in [
            ("scores match fault-free run", self.scores_match.to_string()),
            ("surviving devices", self.surviving.to_string()),
            ("retries", r.retries.to_string()),
            ("re-chunks", r.rechunks.to_string()),
            ("shard re-dispatches", r.shard_redispatches.to_string()),
            ("CPU-fallback sequences", r.cpu_fallback_seqs.to_string()),
            ("quarantined chunks", r.quarantined_chunks.to_string()),
            ("replayed chunks", self.replayed_chunks.to_string()),
            ("degraded", r.degraded.to_string()),
            ("backoff seconds", format!("{:.4}", r.backoff_seconds)),
        ] {
            t.push_row(vec![name.to_string(), value]);
        }
        t
    }
}

/// Run a 2-device chaos search over `db_size` sequences.
///
/// Device 0 gets `FaultPlan::random(seed, …)` plus a scripted device loss
/// partway in, device 1 gets `FaultPlan::random(seed', …)` — so every run
/// exercises re-dispatch on top of whatever the random stream deals.
pub fn run(spec: &DeviceSpec, seed: u64, db_size: usize, query_len: usize) -> ChaosResult {
    run_with_options(spec, seed, db_size, query_len, None)
}

/// [`run`] with a checkpoint directory: each shard logs its completed
/// chunks there, and a rerun over the same directory resumes — replayed
/// chunks show up in [`ChaosResult::replayed_chunks`].
pub fn run_with_options(
    spec: &DeviceSpec,
    seed: u64,
    db_size: usize,
    query_len: usize,
    ckpt_dir: Option<&Path>,
) -> ChaosResult {
    let mut synth = SynthConfig::new(
        "swissprot-chaos",
        db_size,
        PaperDb::Swissprot.lognormal(),
        workloads::SEED,
    );
    synth.max_len = 800;
    let db: Database = synth.generate();
    let query = workloads::query(query_len);
    let mut cfg = CudaSwConfig::improved();
    cfg.inter_threads_per_block = 64;

    let clean = multi_gpu_search(spec, &cfg, &query, &db, 2).expect("clean search");

    // At this scale a shard's short side is a single inter-task launch, so
    // the scripted loss must hit launch 0 to fire at all.
    let plans = vec![
        FaultPlan::random(seed, FaultRates::default()).with_device_loss(FaultSite::Launch, 0),
        FaultPlan::random(seed ^ 0x9E37_79B9_7F4A_7C15, FaultRates::default()),
    ];
    let policy = RecoveryPolicy {
        watchdog_cycles: Some(WATCHDOG_CYCLES),
        ..RecoveryPolicy::default()
    };
    let before = obs::snapshot_metrics();
    let r = multi_gpu_search_resilient_checkpointed(
        spec, &cfg, &query, &db, 2, &plans, &policy, ckpt_dir,
    )
    .expect("chaos search");
    let delta = obs::snapshot_metrics().diff(&before);

    ChaosResult {
        seed,
        devices: r.devices,
        surviving: r.surviving_devices(),
        scores_match: r.scores == clean.scores,
        replayed_chunks: delta.counter_sum("cudasw.core.checkpoint.replayed_chunks", &[]) as u64,
        recovery: r.recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_recovers_exact_scores() {
        let r = run(&DeviceSpec::tesla_c1060(), 42, 600, 64);
        assert!(r.scores_match);
        assert!(r.recovery.shard_redispatches >= 1);
        assert!(r.surviving <= 1);
    }
}
