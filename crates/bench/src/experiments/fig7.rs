//! Figure 7 — overall GCUPs as a function of query length, against the
//! SWPS3 CPU baseline.
//!
//! "We measure the GCUPs from multiple query sequences against the
//! Swissprot database. As a point of reference, we also ran SWPS3, a
//! vectorized SSE implementation of Smith-Waterman using four cores [...]
//! When our improved intra-task kernel is incorporated into CUDASW++, the
//! performance is consistently higher than the original CUDASW++ by an
//! average of about four GCUPs or 25%."
//!
//! GPU curves are simulated (analytic, paper scale); the SWPS3 curve is
//! *host-measured* wall-clock GCUPs of this workspace's striped SIMD
//! implementation on a scaled database (see EXPERIMENTS.md for how the two
//! time bases are compared).

use crate::experiments::{four_configs, predict};
use crate::report::{series_table, Series, Table};
use crate::workloads;
use sw_db::catalog::{paper_query_lengths, PaperDb};
use sw_simd::Swps3Driver;

/// Figure 7's data.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// The four GPU configurations.
    pub gpu: Vec<Series>,
    /// SWPS3 (host-measured), if it was run.
    pub swps3: Option<Series>,
    /// Mean absolute GCUPs gain (improved − original), per device.
    pub mean_gain: Vec<(String, f64)>,
}

impl Fig7Result {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut series = self.gpu.clone();
        if let Some(s) = &self.swps3 {
            series.push(s.clone());
        }
        series_table(
            "Figure 7 — GCUPs vs query length on Swissprot",
            "query length",
            &series,
        )
    }

    /// Gains as a table.
    pub fn table_gains(&self) -> Table {
        let mut t = Table::new(
            "Figure 7 summary — mean gain of the improved kernel",
            &["device", "mean gain (GCUPs)"],
        );
        for (dev, g) in &self.mean_gain {
            t.push_row(vec![dev.clone(), format!("{g:.2}")]);
        }
        t
    }
}

/// Run Figure 7. `swps3_db_size` > 0 also measures the CPU baseline on a
/// scaled functional database with 4 worker threads (0 skips it, e.g. in
/// benches).
pub fn run(threshold: usize, swps3_db_size: usize) -> Fig7Result {
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);
    let queries = paper_query_lengths();
    let mut gpu = Vec::new();
    let mut per_device: Vec<(String, Vec<f64>, Vec<f64>)> = vec![
        ("Tesla C2050".to_string(), Vec::new(), Vec::new()),
        ("Tesla C1060".to_string(), Vec::new(), Vec::new()),
    ];
    for (label, spec, intra) in four_configs() {
        let mut s = Series::new(label);
        for &qlen in &queries {
            let p = predict(&spec, &lengths, qlen, threshold, intra, false);
            s.push(qlen as f64, p.gcups());
            let slot = if spec.name.contains("C2050") { 0 } else { 1 };
            match intra {
                cudasw_core::model::PredictedIntra::Improved => per_device[slot].1.push(p.gcups()),
                cudasw_core::model::PredictedIntra::Original => per_device[slot].2.push(p.gcups()),
            }
        }
        gpu.push(s);
    }
    let mean_gain = per_device
        .into_iter()
        .map(|(dev, imp, orig)| {
            let gain: f64 =
                imp.iter().zip(&orig).map(|(i, o)| i - o).sum::<f64>() / imp.len() as f64;
            (dev, gain)
        })
        .collect();

    let swps3 = if swps3_db_size > 0 {
        let db = workloads::functional_db(PaperDb::Swissprot, swps3_db_size);
        let driver = Swps3Driver::new(4);
        let mut s = Series::new("SWPS3 (4 cores, host-measured)");
        for &qlen in &queries {
            let query = workloads::query(qlen);
            let r = driver.search(&query, &db);
            s.push(qlen as f64, r.gcups());
        }
        Some(s)
    } else {
        None
    };

    Fig7Result {
        gpu,
        swps3,
        mean_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improved_beats_original_at_every_query_length() {
        let r = run(3072, 0);
        for (imp_idx, orig_idx) in [(0usize, 1usize), (2, 3)] {
            for (pi, po) in r.gpu[imp_idx].points.iter().zip(&r.gpu[orig_idx].points) {
                assert!(pi.1 >= po.1, "query {}: {} < {}", pi.0, pi.1, po.1);
            }
        }
    }

    #[test]
    fn mean_gain_is_positive_on_both_devices() {
        let r = run(3072, 0);
        for (dev, g) in &r.mean_gain {
            assert!(*g > 0.0, "{dev}: {g:.2}");
        }
    }

    #[test]
    fn improved_curve_is_flat_for_long_queries() {
        // "the performance is consistent for query lengths above 1000".
        let r = run(3072, 0);
        let c1060_imp = &r.gpu[2];
        let long: Vec<f64> = c1060_imp
            .points
            .iter()
            .filter(|p| p.0 >= 1000.0)
            .map(|p| p.1)
            .collect();
        let max = long.iter().cloned().fold(f64::MIN, f64::max);
        let min = long.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (max - min) / max < 0.25,
            "long-query spread too large: {min:.1}..{max:.1}"
        );
    }

    #[test]
    fn swps3_runs_and_reports_positive_gcups() {
        let r = run(3072, 60);
        let s = r.swps3.expect("swps3 series");
        assert_eq!(s.points.len(), 15);
        assert!(s.points.iter().all(|p| p.1 > 0.0));
    }
}
