//! §III ablation — replay the incremental development of the improved
//! kernel (functional).
//!
//! §III-A: fixing the register spill (deep swap + hand unrolling)
//! "yielded about a two-fold performance increase". §III-B: the packed
//! query profile makes "only a single read required for every four
//! cells, reducing these memory operations by a factor of four".

use crate::report::Table;
use crate::workloads;
use cudasw_core::variants::{development_stages, run_intra_variant};
use cudasw_core::ImprovedParams;
use gpu_sim::DeviceSpec;

/// One development stage's measurements.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Stage name.
    pub name: &'static str,
    /// Simulated GCUPs.
    pub gcups: f64,
    /// Global transactions.
    pub global_transactions: u64,
    /// Texture fetch instructions.
    pub tex_instructions: u64,
    /// Speedup over the previous stage.
    pub speedup_vs_previous: f64,
}

/// The ablation's data.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Rows in development order.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "§III ablation — incremental development of the improved kernel",
            &[
                "stage",
                "GCUPs",
                "global transactions",
                "tex fetches",
                "speedup vs prev",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.name.to_string(),
                format!("{:.2}", r.gcups),
                r.global_transactions.to_string(),
                r.tex_instructions.to_string(),
                format!("{:.2}x", r.speedup_vs_previous),
            ]);
        }
        t
    }

    /// End-to-end speedup from the naive stage to the final kernel.
    pub fn total_speedup(&self) -> f64 {
        self.rows.iter().map(|r| r.speedup_vs_previous).product()
    }
}

/// Run the ablation functionally over `long_seqs` over-threshold
/// sequences.
pub fn run(
    spec: &DeviceSpec,
    long_seqs: usize,
    mean_len: usize,
    query_len: usize,
) -> AblationResult {
    let db = workloads::long_tail_db(long_seqs, mean_len);
    let query = workloads::query(query_len);
    let mut rows = Vec::new();
    let mut prev_seconds: Option<f64> = None;
    for stage in development_stages() {
        let (_, stats) = run_intra_variant(
            spec,
            db.sequences(),
            &query,
            ImprovedParams::default(),
            stage.variant,
        )
        .expect("variant run");
        let speedup = prev_seconds.map(|p| p / stats.seconds).unwrap_or(1.0);
        prev_seconds = Some(stats.seconds);
        rows.push(AblationRow {
            name: stage.name,
            gcups: stats.gcups(),
            global_transactions: stats.global_transactions(),
            tex_instructions: stats.memory.tex_instructions,
            speedup_vs_previous: speedup,
        });
    }
    AblationResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stage_improves() {
        let r = run(&DeviceSpec::tesla_c1060(), 3, 3300, 300);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows[1..] {
            assert!(
                row.speedup_vs_previous >= 1.0,
                "{} regressed: {:.2}x",
                row.name,
                row.speedup_vs_previous
            );
        }
        assert!(r.total_speedup() > 1.5, "total {:.2}x", r.total_speedup());
    }

    #[test]
    fn deep_swap_removes_spill_traffic() {
        let r = run(&DeviceSpec::tesla_c1060(), 2, 3200, 256);
        let naive = &r.rows[0];
        let deep = &r.rows[1];
        assert!(deep.global_transactions < naive.global_transactions);
    }

    #[test]
    fn profile_packing_quarters_tex_fetches() {
        let r = run(&DeviceSpec::tesla_c1060(), 2, 3200, 256);
        let deep = &r.rows[1];
        let improved = &r.rows[2];
        // Texture ops cover profile fetches (4x in the per-row variant)
        // plus unchanged database-residue fetches, so the total lands
        // around 2.5x.
        let ratio = deep.tex_instructions as f64 / improved.tex_instructions.max(1) as f64;
        assert!((2.0..=3.0).contains(&ratio), "tex ratio {ratio:.2}");
    }
}
