//! §IV-B / §V — multi-GPU scaling.
//!
//! "the kernel tasks are independent, and thus the running time will scale
//! almost linearly with the number of GPUs available" — measured here
//! functionally by sharding a scaled Swissprot across 1, 2 and 4 simulated
//! devices.

use crate::report::Table;
use crate::workloads;
use cudasw_core::multi_gpu::multi_gpu_search;
use cudasw_core::CudaSwConfig;
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;
use sw_db::{Database, SynthConfig};

/// One row of the scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of devices.
    pub devices: usize,
    /// Wall seconds (slowest device).
    pub wall_seconds: f64,
    /// Speedup over one device.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / devices`).
    pub efficiency: f64,
}

/// The experiment's data.
#[derive(Debug, Clone)]
pub struct MultiGpuResultTable {
    /// Rows for each device count.
    pub rows: Vec<ScalingRow>,
}

impl MultiGpuResultTable {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "§IV-B multi-GPU scaling (functional, scaled Swissprot)",
            &["GPUs", "wall seconds", "speedup", "efficiency"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.devices.to_string(),
                format!("{:.4}", r.wall_seconds),
                format!("{:.2}x", r.speedup),
                format!("{:.0}%", r.efficiency * 100.0),
            ]);
        }
        t
    }
}

/// Run the scaling experiment on `db_size` sequences for 1/2/4 devices.
///
/// Linear scaling needs every shard to stay compute-rich. At reduced
/// functional scale a single near-threshold sequence is a straggler warp
/// comparable to the whole shard (at paper scale the same sequence is
/// <2% of a launch), so the workload caps lengths at 800 and uses
/// 64-thread inter-task blocks to keep every shard block-rich — the
/// regime the paper's linear-scaling statement is about.
pub fn run(spec: &DeviceSpec, db_size: usize, query_len: usize) -> MultiGpuResultTable {
    let mut synth = SynthConfig::new(
        "swissprot-capped",
        db_size,
        PaperDb::Swissprot.lognormal(),
        workloads::SEED,
    );
    synth.max_len = 800;
    let db: Database = synth.generate();
    let query = workloads::query(query_len);
    let mut cfg = CudaSwConfig::improved();
    cfg.inter_threads_per_block = 64;
    let mut rows = Vec::new();
    let mut base = 0.0;
    for k in [1usize, 2, 4] {
        let r = multi_gpu_search(spec, &cfg, &query, &db, k).expect("multi-gpu search");
        if k == 1 {
            base = r.wall_seconds();
        }
        let speedup = base / r.wall_seconds();
        rows.push(ScalingRow {
            devices: k,
            wall_seconds: r.wall_seconds(),
            speedup,
            efficiency: speedup / k as f64,
        });
    }
    MultiGpuResultTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_near_linear() {
        // At reduced functional scale the block-count granularity caps the
        // 4-GPU efficiency (a shard of a few hundred sequences is only a
        // handful of blocks over 30 SMs); the paper-scale behaviour is
        // linear because every shard stays device-filling.
        let r = run(&DeviceSpec::tesla_c1060(), 16_000, 64);
        assert_eq!(r.rows.len(), 3);
        assert!((r.rows[0].speedup - 1.0).abs() < 1e-9);
        assert!(r.rows[1].speedup > 1.6, "2 GPUs: {:.2}x", r.rows[1].speedup);
        assert!(r.rows[2].speedup > 2.8, "4 GPUs: {:.2}x", r.rows[2].speedup);
        for row in &r.rows {
            assert!(
                row.efficiency > 0.7,
                "{} GPUs: {:.0}%",
                row.devices,
                row.efficiency * 100.0
            );
        }
    }
}
