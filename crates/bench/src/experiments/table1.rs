//! Table I — total global memory transactions of the two intra-task
//! kernels, for queries of length 567 and 5478.
//!
//! "We used a profiler to count the number of global memory accesses of
//! both the improved and the original kernel. We used a query sequence of
//! length 567 and a query sequence of length 5478 and ran each against the
//! Swissprot database." Only sequences above the threshold reach the
//! intra-task kernels, so the workload is the long tail.
//!
//! This experiment is fully *functional*: the simulator counts the actual
//! coalesced transactions.

use crate::report::Table;
use crate::workloads;
use cudasw_core::variants::run_intra_variant;
use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, IntraKernelChoice, VariantConfig};
use gpu_sim::DeviceSpec;

/// One Table I cell set.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Query length.
    pub query_len: usize,
    /// Measured global transactions.
    pub transactions: u64,
    /// Cells computed (for the per-cell rate).
    pub cells: u64,
}

/// Table I's data.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Rows (improved/original × the two query lengths).
    pub rows: Vec<Table1Row>,
    /// Number of long sequences used.
    pub long_seqs: usize,
    /// Total residues of the long tail.
    pub long_residues: u64,
}

impl Table1Result {
    /// Reduction ratio original/improved for a query length.
    pub fn reduction(&self, query_len: usize) -> f64 {
        let get = |k: &str| {
            self.rows
                .iter()
                .find(|r| r.kernel == k && r.query_len == query_len)
                .map(|r| r.transactions)
                .unwrap_or(0)
        };
        get("Orig. Kernel") as f64 / get("Imp. Kernel").max(1) as f64
    }

    /// Render as a table in the paper's layout.
    pub fn table(&self, query_lens: &[usize]) -> Table {
        let mut headers = vec!["Kernel".to_string()];
        for q in query_lens {
            headers.push(format!("Query Len. {q}"));
        }
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            format!(
                "Table I — global memory transactions ({} long sequences, {} residues)",
                self.long_seqs, self.long_residues
            ),
            &headers_ref,
        );
        for kernel in ["Imp. Kernel", "Orig. Kernel"] {
            let mut row = vec![kernel.to_string()];
            for &q in query_lens {
                let v = self
                    .rows
                    .iter()
                    .find(|r| r.kernel == kernel && r.query_len == q)
                    .map(|r| r.transactions)
                    .unwrap_or(0);
                row.push(v.to_string());
            }
            t.push_row(row);
        }
        t
    }
}

/// Run Table I functionally with `long_seqs` synthetic over-threshold
/// sequences of mean length `mean_len` and the given query lengths.
pub fn run(
    spec: &DeviceSpec,
    long_seqs: usize,
    mean_len: usize,
    query_lens: &[usize],
) -> Table1Result {
    let db = workloads::long_tail_db(long_seqs, mean_len);
    let mut rows = Vec::new();
    for &qlen in query_lens {
        let query = workloads::query(qlen);
        let (_, imp) = run_intra_variant(
            spec,
            db.sequences(),
            &query,
            ImprovedParams::default(),
            VariantConfig::improved(),
        )
        .expect("improved kernel");
        rows.push(Table1Row {
            kernel: "Imp. Kernel",
            query_len: qlen,
            transactions: imp.global_transactions(),
            cells: imp.cells(),
        });
        // The original kernel through the driver path (all sequences go to
        // the intra kernel at threshold 1).
        let mut cfg = CudaSwConfig::original();
        cfg.threshold = 1;
        cfg.intra = IntraKernelChoice::Original;
        let mut driver = CudaSwDriver::new(spec.clone(), cfg);
        let r = driver.search(&query, &db).expect("original kernel");
        rows.push(Table1Row {
            kernel: "Orig. Kernel",
            query_len: qlen,
            transactions: r.intra.global_transactions,
            cells: r.intra.cells,
        });
    }
    Table1Result {
        rows,
        long_seqs,
        long_residues: db.total_residues(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_of_magnitude_reduction_for_both_query_lengths() {
        // Small functional instance: the *ratios* carry the result. Query
        // 512 fits one strip (no boundary traffic at all, like the paper's
        // 567), query 2048 needs two strips (boundary rows appear, like
        // the paper's 5478).
        let r = run(&DeviceSpec::tesla_c1060(), 3, 3300, &[512, 2048]);
        assert!(
            r.reduction(512) > 1000.0,
            "single-strip reduction = {:.1}",
            r.reduction(512)
        );
        assert!(
            r.reduction(2048) > 20.0,
            "multi-strip reduction = {:.1}",
            r.reduction(2048)
        );
        // Single-strip queries reduce far more (the paper's 567 column is
        // ~2000:1 while 5478 is ~40:1).
        assert!(r.reduction(512) > r.reduction(2048));
    }

    #[test]
    fn table_renders_with_both_kernels() {
        let r = run(&DeviceSpec::tesla_c1060(), 2, 3200, &[64]);
        let rendered = r.table(&[64]).render();
        assert!(rendered.contains("Imp. Kernel"));
        assert!(rendered.contains("Orig. Kernel"));
    }
}
