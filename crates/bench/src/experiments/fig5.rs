//! Figure 5 — overall performance and intra-task time share as the
//! threshold varies, for original/improved kernels on both GPUs.
//!
//! Panel (a): GCUPs vs percentage of sequences compared by the intra-task
//! kernel. Panel (b): percentage of overall running time spent in the
//! intra-task kernel. The paper's summary: "Our kernel always improves
//! performance. The gain is at least 6.7% on the C2050 (17.5% on the
//! C1060) and as much as 39.3% on the C2050 (67.0% on the C1060)."

use crate::experiments::{four_configs, paper_threshold_sweep, pct_over, predict};
use crate::report::{series_table, Series, Table};
use crate::workloads;
use cudasw_core::model::PredictedIntra;
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;

/// Figure 5's data (both panels share the four configurations).
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Panel (a): GCUPs per configuration.
    pub gcups: Vec<Series>,
    /// Panel (b): fraction of time in intra-task (%), per configuration.
    pub time_share: Vec<Series>,
    /// Improvement of improved over original at the default threshold, per
    /// device: `(device, gain %)`.
    pub gain_at_default: Vec<(String, f64)>,
    /// Largest improvement across the sweep, per device.
    pub gain_max: Vec<(String, f64)>,
}

impl Fig5Result {
    /// Panel (a) as a table.
    pub fn table_a(&self) -> Table {
        series_table(
            "Figure 5(a) — GCUPs vs % of sequences compared by intra-task",
            "% intra",
            &self.gcups,
        )
    }

    /// Panel (b) as a table.
    pub fn table_b(&self) -> Table {
        series_table(
            "Figure 5(b) — % of running time spent in intra-task",
            "% intra",
            &self.time_share,
        )
    }

    /// Gains summary as a table.
    pub fn table_gains(&self) -> Table {
        let mut t = Table::new(
            "Figure 5 summary — improved-over-original gain",
            &[
                "device",
                "gain at default threshold (%)",
                "max gain in sweep (%)",
            ],
        );
        for ((dev, at_def), (_, max)) in self.gain_at_default.iter().zip(&self.gain_max) {
            t.push_row(vec![
                dev.clone(),
                format!("{at_def:.1}"),
                format!("{max:.1}"),
            ]);
        }
        t
    }
}

/// Run Figure 5 at paper scale. `caches_off` reproduces Figure 6's device
/// configuration instead.
pub fn run(query_len: usize, caches_off: bool) -> Fig5Result {
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);
    let thresholds = paper_threshold_sweep();
    let mut gcups = Vec::new();
    let mut time_share = Vec::new();
    // Per device: (improved gcups per threshold, original gcups per threshold).
    let mut per_device: Vec<(String, Vec<f64>, Vec<f64>)> = vec![
        ("Tesla C2050".to_string(), Vec::new(), Vec::new()),
        ("Tesla C1060".to_string(), Vec::new(), Vec::new()),
    ];
    for (label, spec, intra) in four_configs() {
        let mut g = Series::new(label.clone());
        let mut tshare = Series::new(label.clone());
        for &t in &thresholds {
            // Figure 6 only disables the Fermi caches (GT200 has none).
            let off = caches_off && matches!(spec.arch, gpu_sim::Arch::Fermi);
            let p = predict(&spec, &lengths, query_len, t, intra, off);
            let x = pct_over(&lengths, t);
            g.push(x, p.gcups());
            tshare.push(x, p.fraction_time_intra() * 100.0);
            let slot = if spec.name.contains("C2050") { 0 } else { 1 };
            match intra {
                PredictedIntra::Improved => per_device[slot].1.push(p.gcups()),
                PredictedIntra::Original => per_device[slot].2.push(p.gcups()),
            }
        }
        gcups.push(g);
        time_share.push(tshare);
    }
    let mut gain_at_default = Vec::new();
    let mut gain_max = Vec::new();
    for (dev, imp, orig) in per_device {
        // Index 0 of the sweep is the default threshold 3072.
        let at_def = (imp[0] / orig[0] - 1.0) * 100.0;
        let max = imp
            .iter()
            .zip(&orig)
            .map(|(i, o)| (i / o - 1.0) * 100.0)
            .fold(f64::MIN, f64::max);
        gain_at_default.push((dev.clone(), at_def));
        gain_max.push((dev, max));
    }
    Fig5Result {
        gcups,
        time_share,
        gain_at_default,
        gain_max,
    }
}

/// Functional anchor: run both kernels on a scaled Swissprot at one
/// threshold on one device, returning `(orig GCUPs, improved GCUPs,
/// orig time share, improved time share)`.
pub fn functional_anchor(
    spec: &DeviceSpec,
    db_size: usize,
    threshold: usize,
    query_len: usize,
) -> (f64, f64, f64, f64) {
    use cudasw_core::{CudaSwConfig, CudaSwDriver};
    let db = workloads::functional_db(PaperDb::Swissprot, db_size);
    let query = workloads::query(query_len);
    let run_one = |cfg: CudaSwConfig| {
        let mut cfg = cfg;
        cfg.threshold = threshold;
        let mut driver = CudaSwDriver::new(spec.clone(), cfg);
        let r = driver.search(&query, &db).expect("search");
        (r.gcups(), r.fraction_time_intra())
    };
    let (go, so) = run_one(CudaSwConfig::original());
    let (gi, si) = run_one(CudaSwConfig::improved());
    (go, gi, so * 100.0, si * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improved_always_wins_and_is_less_sensitive() {
        let r = run(576, false);
        // Pair the curves: indices 0/1 are C2050 improved/original, 2/3
        // are C1060 improved/original (four_configs order).
        for (imp_idx, orig_idx) in [(0usize, 1usize), (2, 3)] {
            let imp = &r.gcups[imp_idx];
            let orig = &r.gcups[orig_idx];
            for (pi, po) in imp.points.iter().zip(&orig.points) {
                assert!(
                    pi.1 >= po.1,
                    "improved below original at x={}: {} < {}",
                    pi.0,
                    pi.1,
                    po.1
                );
            }
            // Original collapses far more across the sweep.
            let drop = |s: &Series| s.points.first().unwrap().1 - s.points.last().unwrap().1;
            assert!(drop(orig) > drop(imp));
        }
    }

    #[test]
    fn time_share_is_halved_by_improved_kernel() {
        // §IV-A: "our improved implementation reduces the percentage of
        // time spent in the intra-task kernel by more than half".
        let r = run(576, false);
        for (imp_idx, orig_idx) in [(0usize, 1usize), (2, 3)] {
            let imp_last = r.time_share[imp_idx].points.last().unwrap().1;
            let orig_last = r.time_share[orig_idx].points.last().unwrap().1;
            assert!(
                imp_last < orig_last / 1.8,
                "time share {imp_last:.1}% vs original {orig_last:.1}%"
            );
        }
    }

    #[test]
    fn original_reaches_about_half_of_runtime_on_c1060() {
        // Figure 5(b): "CUDASW++ using the original kernel spends up to
        // 50% of its running time in the intra-task kernel [...] on a
        // Tesla C1060". Band: 35–75%.
        let r = run(576, false);
        let max_share = r.time_share[3].max_y();
        assert!(
            (35.0..=75.0).contains(&max_share),
            "C1060 original max intra share = {max_share:.1}%"
        );
    }

    #[test]
    fn gains_are_positive_everywhere() {
        let r = run(576, false);
        for (dev, g) in &r.gain_at_default {
            assert!(*g > 0.0, "{dev}: gain at default {g:.1}%");
        }
        for (dev, g) in &r.gain_max {
            assert!(*g > 10.0, "{dev}: max gain {g:.1}%");
        }
    }
}
