//! The host-benchmark perf *trajectory* (`BENCH_host.json`, schema
//! `cudasw.bench.host/v2`).
//!
//! v1 was a snapshot: each run overwrote the file and history was lost in
//! git archaeology. v2 is **append-only**: the document holds one entry
//! per measured run, keyed by `(git rev, workload config, host_threads)`,
//! so the committed file *is* the performance history of the repo. Legacy
//! v1 documents parse into a single `pre-v2` entry and are preserved by
//! every merge — old rows are never dropped, only a re-run of the same
//! key replaces its own entry.
//!
//! Two gates read the trajectory in `verify.sh`:
//!
//! * **regression comparator** — the freshly measured entry is compared
//!   against the most recent committed entry with the same config and
//!   host thread count, row by row (backend × precision × kernel-mode ×
//!   threads). A GCUPS drop beyond [`GCUPS_TOLERANCE`] fails.
//! * **thread-scaling gate** — on the large synthetic database
//!   (≥ [`SCALING_GATE_MIN_DB`] sequences), a host with ≥ 4 hardware
//!   threads must show ≥ [`MIN_SCALING_AT_4`]× self-scaling at 4 threads
//!   on its widest backend. The gate is conditional on the recorded
//!   `host_threads`: a 1-core CI box cannot measure scaling and must not
//!   fake a pass or a failure.

use super::host::{HostBenchResult, HostRow};
use obs::json::{escape, parse, Json};

/// JSON schema tag of the trajectory document.
pub const SCHEMA: &str = "cudasw.bench.host/v2";

/// Schema tag of the legacy single-snapshot document.
pub const SCHEMA_V1: &str = "cudasw.bench.host/v1";

/// Allowed fractional GCUPS drop vs the committed baseline row before the
/// comparator fails. Wall-clock on shared machines is noisy; 35% is far
/// above run-to-run jitter but catches real regressions (the lazy-F loop
/// reappearing, granularity collapsing).
pub const GCUPS_TOLERANCE: f64 = 0.35;

/// Minimum self-scaling at 4 threads demanded by the scaling gate.
pub const MIN_SCALING_AT_4: f64 = 1.5;

/// The scaling gate only applies to entries measured on at least this many
/// sequences — small databases legitimately collapse to one worker.
pub const SCALING_GATE_MIN_DB: usize = 10_000;

/// One measured run in the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Git revision (short hash) the run was measured at.
    pub rev: String,
    /// Stable workload key (`swissprot-synth-<n>x<q>` or a legacy label).
    pub config: String,
    /// Database sequences.
    pub db_size: usize,
    /// Query length.
    pub query_len: usize,
    /// DP cells of one database pass.
    pub cells: u64,
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// Measured cells.
    pub rows: Vec<HostRow>,
    /// Per backend: 1-thread adaptive GCUPS over the emulated baseline.
    pub speedup_vs_emulated: Vec<(String, f64)>,
    /// Per backend: max-threads GCUPS over 1-thread GCUPS.
    pub thread_scaling: Vec<(String, f64)>,
    /// Per backend: correction-loop lazy-F ops over prefix-scan lazy-F ops.
    pub lazy_f_delta: Vec<(String, f64)>,
}

impl TrajectoryEntry {
    /// Wrap a fresh measurement for the trajectory.
    pub fn from_result(r: &HostBenchResult, rev: &str) -> Self {
        Self {
            rev: rev.to_string(),
            config: r.config.clone(),
            db_size: r.db_size,
            query_len: r.query_len,
            cells: r.cells,
            host_threads: r.host_threads,
            rows: r.rows.clone(),
            speedup_vs_emulated: r.speedup_vs_emulated.clone(),
            thread_scaling: r.thread_scaling.clone(),
            lazy_f_delta: r.lazy_f_delta.clone(),
        }
    }

    /// The key that decides replace-vs-append on merge.
    fn key(&self) -> (String, String, usize) {
        (self.rev.clone(), self.config.clone(), self.host_threads)
    }
}

/// The whole append-only document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// Entries in file order (oldest first).
    pub entries: Vec<TrajectoryEntry>,
}

impl Trajectory {
    /// Append a run, replacing a prior entry with the identical
    /// `(rev, config, host_threads)` key (a re-run at the same revision),
    /// never touching any other entry.
    pub fn append(&mut self, entry: TrajectoryEntry) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.key() == entry.key()) {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Most recent committed entry comparable to `new` (same workload
    /// config and host thread count, different or same rev).
    pub fn baseline_for<'a>(&'a self, new: &TrajectoryEntry) -> Option<&'a TrajectoryEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.config == new.config && e.host_threads == new.host_threads)
    }

    /// Serialize the v2 document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&entry_to_json(e, "    "));
            out.push_str(if i + 1 == self.entries.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a trajectory file: a v2 document, or a legacy v1 snapshot
    /// (upgraded in place to a single `pre-v2` entry).
    pub fn parse(text: &str) -> Result<Trajectory, String> {
        let doc = parse(text)?;
        match doc.get("schema").and_then(|s| s.as_str()) {
            Some(s) if s == SCHEMA => {
                let entries = doc
                    .get("entries")
                    .and_then(|e| e.as_arr())
                    .ok_or("v2 document without entries array")?;
                Ok(Trajectory {
                    entries: entries
                        .iter()
                        .map(entry_from_json)
                        .collect::<Result<_, _>>()?,
                })
            }
            Some(s) if s == SCHEMA_V1 => Ok(Trajectory {
                entries: vec![entry_from_v1(&doc)?],
            }),
            Some(other) => Err(format!("unknown host bench schema {other:?}")),
            None => Err("document has no schema field".to_string()),
        }
    }
}

fn entry_to_json(e: &TrajectoryEntry, indent: &str) -> String {
    let pair_obj = |pairs: &[(String, f64)]| -> String {
        let mut s = String::from("{");
        for (i, (name, v)) in pairs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v:.3}", escape(name)));
        }
        s.push('}');
        s
    };
    let mut out = format!("{indent}{{\n");
    out.push_str(&format!("{indent}  \"rev\": \"{}\",\n", escape(&e.rev)));
    out.push_str(&format!(
        "{indent}  \"config\": \"{}\",\n",
        escape(&e.config)
    ));
    out.push_str(&format!("{indent}  \"db_size\": {},\n", e.db_size));
    out.push_str(&format!("{indent}  \"query_len\": {},\n", e.query_len));
    out.push_str(&format!("{indent}  \"cells\": {},\n", e.cells));
    out.push_str(&format!(
        "{indent}  \"host_threads\": {},\n",
        e.host_threads
    ));
    out.push_str(&format!("{indent}  \"rows\": [\n"));
    for (i, r) in e.rows.iter().enumerate() {
        out.push_str(&format!(
            "{indent}    {{\"backend\": \"{}\", \"precision\": \"{}\", \
             \"kernel_mode\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \
             \"gcups\": {:.4}, \"byte_mode\": {}, \"word_fallbacks\": {}, \
             \"lazy_f\": {}, \"steals\": {}}}{}\n",
            r.backend,
            r.precision,
            r.kernel_mode,
            r.threads,
            r.seconds,
            r.gcups,
            r.byte_mode,
            r.word_fallbacks,
            r.lazy_f,
            r.steals,
            if i + 1 == e.rows.len() { "" } else { "," },
        ));
    }
    out.push_str(&format!("{indent}  ],\n"));
    out.push_str(&format!(
        "{indent}  \"speedup_vs_emulated\": {},\n",
        pair_obj(&e.speedup_vs_emulated)
    ));
    out.push_str(&format!(
        "{indent}  \"thread_scaling\": {},\n",
        pair_obj(&e.thread_scaling)
    ));
    out.push_str(&format!(
        "{indent}  \"lazy_f_delta\": {}\n",
        pair_obj(&e.lazy_f_delta)
    ));
    out.push_str(&format!("{indent}}}"));
    out
}

fn pairs_from_json(v: Option<&Json>) -> Result<Vec<(String, f64)>, String> {
    match v {
        None => Ok(Vec::new()),
        Some(Json::Obj(m)) => Ok(m
            .iter()
            .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0)))
            .collect()),
        Some(_) => Err("expected an object of name → number".to_string()),
    }
}

fn num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|n| n.as_f64())
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn text(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|s| s.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn row_from_json(v: &Json, default_mode: &str) -> Result<HostRow, String> {
    Ok(HostRow {
        backend: text(v, "backend")?,
        precision: text(v, "precision")?,
        // v1 rows predate kernel modes: they all ran the correction loop.
        kernel_mode: v
            .get("kernel_mode")
            .and_then(|s| s.as_str())
            .unwrap_or(default_mode)
            .to_string(),
        threads: num(v, "threads")? as usize,
        seconds: num(v, "seconds")?,
        gcups: num(v, "gcups")?,
        byte_mode: num(v, "byte_mode")? as u64,
        word_fallbacks: num(v, "word_fallbacks")? as u64,
        lazy_f: v.get("lazy_f").and_then(|n| n.as_f64()).unwrap_or(0.0) as u64,
        steals: num(v, "steals")? as u64,
    })
}

fn entry_from_json(v: &Json) -> Result<TrajectoryEntry, String> {
    let rows = v
        .get("rows")
        .and_then(|r| r.as_arr())
        .ok_or("entry without rows array")?;
    Ok(TrajectoryEntry {
        rev: text(v, "rev")?,
        config: text(v, "config")?,
        db_size: num(v, "db_size")? as usize,
        query_len: num(v, "query_len")? as usize,
        cells: num(v, "cells")? as u64,
        host_threads: num(v, "host_threads")? as usize,
        rows: rows
            .iter()
            .map(|r| row_from_json(r, "correction-loop"))
            .collect::<Result<_, _>>()?,
        speedup_vs_emulated: pairs_from_json(v.get("speedup_vs_emulated"))?,
        thread_scaling: pairs_from_json(v.get("thread_scaling"))?,
        lazy_f_delta: pairs_from_json(v.get("lazy_f_delta"))?,
    })
}

/// Upgrade a legacy v1 snapshot into one trajectory entry. The v1 bench
/// ran a uniform toy database, so the config label records that shape —
/// it will never match a Swissprot-shaped config, which keeps the
/// comparator from comparing across workloads.
fn entry_from_v1(doc: &Json) -> Result<TrajectoryEntry, String> {
    let db_size = num(doc, "db_size")? as usize;
    let query_len = num(doc, "query_len")? as usize;
    let rows = doc
        .get("rows")
        .and_then(|r| r.as_arr())
        .ok_or("v1 document without rows array")?;
    Ok(TrajectoryEntry {
        rev: "pre-v2".to_string(),
        config: format!("uniform-{db_size}x{query_len}"),
        db_size,
        query_len,
        cells: num(doc, "cells")? as u64,
        host_threads: num(doc, "host_threads")? as usize,
        rows: rows
            .iter()
            .map(|r| row_from_json(r, "correction-loop"))
            .collect::<Result<_, _>>()?,
        speedup_vs_emulated: pairs_from_json(doc.get("speedup_vs_emulated"))?,
        thread_scaling: pairs_from_json(doc.get("thread_scaling"))?,
        lazy_f_delta: Vec::new(),
    })
}

/// Compare a fresh entry against its committed baseline: every row key
/// present in both must not have lost more than [`GCUPS_TOLERANCE`] of its
/// GCUPS. Returns human-readable failures (empty = pass).
pub fn regressions(baseline: &TrajectoryEntry, new: &TrajectoryEntry) -> Vec<String> {
    let mut failures = Vec::new();
    for old in &baseline.rows {
        let Some(fresh) = new.rows.iter().find(|r| {
            r.backend == old.backend
                && r.precision == old.precision
                && r.kernel_mode == old.kernel_mode
                && r.threads == old.threads
        }) else {
            continue;
        };
        if fresh.gcups < old.gcups * (1.0 - GCUPS_TOLERANCE) {
            failures.push(format!(
                "{} {} {} x{}: {:.3} GCUPS vs committed {:.3} (allowed floor {:.3})",
                fresh.backend,
                fresh.precision,
                fresh.kernel_mode,
                fresh.threads,
                fresh.gcups,
                old.gcups,
                old.gcups * (1.0 - GCUPS_TOLERANCE),
            ));
        }
    }
    failures
}

/// The conditional thread-scaling gate. Only entries that could measure
/// scaling are gated: a large-enough database, ≥ 4 hardware threads on the
/// measuring host, and a 4-thread row actually present. Returns failures
/// (empty = pass or not applicable).
pub fn scaling_gate(entry: &TrajectoryEntry) -> Vec<String> {
    if entry.db_size < SCALING_GATE_MIN_DB
        || entry.host_threads < 4
        || !entry.rows.iter().any(|r| r.threads >= 4)
    {
        return Vec::new();
    }
    let best = entry
        .thread_scaling
        .iter()
        .map(|(_, s)| *s)
        .fold(0.0f64, f64::max);
    if best < MIN_SCALING_AT_4 {
        vec![format!(
            "thread scaling {best:.2}x at 4 threads is below the {MIN_SCALING_AT_4}x gate \
             (db_size {}, host_threads {})",
            entry.db_size, entry.host_threads
        )]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(backend: &str, mode: &str, threads: usize, gcups: f64) -> HostRow {
        HostRow {
            backend: backend.to_string(),
            precision: "adaptive".to_string(),
            kernel_mode: mode.to_string(),
            threads,
            seconds: 1.0 / gcups.max(1e-9),
            gcups,
            byte_mode: 90,
            word_fallbacks: 10,
            lazy_f: 1234,
            steals: 2,
        }
    }

    fn sample_entry(rev: &str, gcups_at_4: f64) -> TrajectoryEntry {
        TrajectoryEntry {
            rev: rev.to_string(),
            config: "swissprot-synth-100000x256".to_string(),
            db_size: 100_000,
            query_len: 256,
            cells: 9_200_000_000,
            host_threads: 8,
            rows: vec![
                sample_row("avx2", "correction-loop", 1, 5.0),
                sample_row("avx2", "correction-loop", 4, gcups_at_4),
                sample_row("avx2", "prefix-scan", 1, 5.5),
            ],
            speedup_vs_emulated: vec![("avx2".to_string(), 11.0)],
            thread_scaling: vec![("avx2".to_string(), gcups_at_4 / 5.0)],
            lazy_f_delta: vec![("avx2".to_string(), 7.5)],
        }
    }

    #[test]
    fn v2_round_trips_bit_exactly_through_json() {
        let mut t = Trajectory::default();
        t.append(sample_entry("abc1234", 15.0));
        t.append(sample_entry("def5678", 16.0));
        let json = t.to_json();
        let parsed = Trajectory::parse(&json).expect("valid v2");
        assert_eq!(parsed.entries.len(), 2);
        for (a, b) in t.entries.iter().zip(&parsed.entries) {
            assert_eq!(a.rev, b.rev);
            assert_eq!(a.config, b.config);
            assert_eq!(a.db_size, b.db_size);
            assert_eq!(a.host_threads, b.host_threads);
            assert_eq!(a.rows.len(), b.rows.len());
            for (x, y) in a.rows.iter().zip(&b.rows) {
                assert_eq!(x.backend, y.backend);
                assert_eq!(x.kernel_mode, y.kernel_mode);
                assert_eq!(x.threads, y.threads);
                assert_eq!(x.lazy_f, y.lazy_f);
                assert!((x.gcups - y.gcups).abs() < 1e-3);
            }
            assert_eq!(a.thread_scaling.len(), b.thread_scaling.len());
            assert_eq!(a.lazy_f_delta.len(), b.lazy_f_delta.len());
        }
    }

    #[test]
    fn append_is_append_only_except_for_identical_keys() {
        let mut t = Trajectory::default();
        t.append(sample_entry("aaa", 10.0));
        // Different rev: appended, the old entry survives.
        t.append(sample_entry("bbb", 12.0));
        assert_eq!(t.entries.len(), 2);
        // Same (rev, config, host_threads): replaced in place.
        t.append(sample_entry("bbb", 13.0));
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].rev, "aaa");
        assert!((t.entries[1].rows[1].gcups - 13.0).abs() < 1e-9);
        // A different config is a different key even at the same rev.
        let mut other = sample_entry("bbb", 9.0);
        other.config = "swissprot-synth-1500x128".to_string();
        other.db_size = 1500;
        t.append(other);
        assert_eq!(t.entries.len(), 3);
    }

    #[test]
    fn v1_documents_upgrade_and_survive_a_merge() {
        // A faithful miniature of the legacy snapshot format.
        let v1 = r#"{
  "schema": "cudasw.bench.host/v1",
  "db_size": 800,
  "query_len": 256,
  "cells": 61069056,
  "host_threads": 1,
  "rows": [
    {"backend": "portable", "precision": "word", "threads": 1, "seconds": 0.09, "gcups": 0.67, "byte_mode": 0, "word_fallbacks": 800, "steals": 0},
    {"backend": "avx2", "precision": "adaptive", "threads": 1, "seconds": 0.008, "gcups": 7.6, "byte_mode": 798, "word_fallbacks": 2, "steals": 0}
  ],
  "speedup_vs_emulated": {"avx2": 11.367},
  "thread_scaling": {"avx2": 0.944}
}"#;
        let mut t = Trajectory::parse(v1).expect("v1 upgrades");
        assert_eq!(t.entries.len(), 1);
        let legacy = &t.entries[0];
        assert_eq!(legacy.rev, "pre-v2");
        assert_eq!(legacy.config, "uniform-800x256");
        assert_eq!(legacy.rows.len(), 2);
        assert_eq!(legacy.rows[0].kernel_mode, "correction-loop");
        assert_eq!(legacy.rows[0].lazy_f, 0);
        // Merging a new v2 entry keeps the legacy row (append-only).
        t.append(sample_entry("new1234", 15.0));
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].rev, "pre-v2");
        // And the merged doc round-trips as v2.
        let reparsed = Trajectory::parse(&t.to_json()).expect("merged doc parses");
        assert_eq!(reparsed.entries.len(), 2);
        assert_eq!(reparsed.entries[0].config, "uniform-800x256");
    }

    #[test]
    fn comparator_rejects_a_synthetic_slowdown() {
        let committed = sample_entry("aaa", 15.0);
        // Fresh run at a new rev, 3x slower on the 4-thread cell.
        let mut slow = sample_entry("bbb", 5.0);
        slow.rows[1].gcups = 5.0;
        let failures = regressions(&committed, &slow);
        assert_eq!(failures.len(), 1, "exactly the slowed row fails");
        assert!(failures[0].contains("avx2 adaptive correction-loop x4"));
        // Within-tolerance noise passes.
        let mut noisy = sample_entry("ccc", 15.0);
        for r in &mut noisy.rows {
            r.gcups *= 0.9;
        }
        assert!(regressions(&committed, &noisy).is_empty());
        // Rows that only exist in the fresh run are not compared.
        let mut extra = sample_entry("ddd", 15.0);
        extra.rows.push(sample_row("sse2", "prefix-scan", 2, 0.001));
        assert!(regressions(&committed, &extra).is_empty());
    }

    #[test]
    fn baseline_matching_requires_config_and_host_threads() {
        let mut t = Trajectory::default();
        t.append(sample_entry("aaa", 15.0));
        let mut other_host = sample_entry("bbb", 14.0);
        other_host.host_threads = 1;
        assert!(
            t.baseline_for(&other_host).is_none(),
            "1-core host has no 8-core baseline"
        );
        let mut other_config = sample_entry("bbb", 14.0);
        other_config.config = "swissprot-synth-1500x128".to_string();
        assert!(t.baseline_for(&other_config).is_none());
        let same = sample_entry("bbb", 14.0);
        assert_eq!(t.baseline_for(&same).map(|e| e.rev.as_str()), Some("aaa"));
    }

    #[test]
    fn scaling_gate_is_conditional_and_bites() {
        // Applicable and passing.
        assert!(scaling_gate(&sample_entry("aaa", 15.0)).is_empty());
        // Applicable and failing: flat scaling on a big DB with 8 cores.
        let flat = sample_entry("bbb", 5.0);
        let failures = scaling_gate(&flat);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below the 1.5x gate"));
        // Not applicable: 1-core host cannot measure scaling.
        let mut one_core = sample_entry("ccc", 5.0);
        one_core.host_threads = 1;
        assert!(scaling_gate(&one_core).is_empty());
        // Not applicable: smoke-sized database.
        let mut small = sample_entry("ddd", 5.0);
        small.db_size = 1500;
        assert!(scaling_gate(&small).is_empty());
        // Not applicable: no 4-thread row was measured.
        let mut no4 = sample_entry("eee", 5.0);
        no4.rows.retain(|r| r.threads < 4);
        assert!(scaling_gate(&no4).is_empty());
    }
}
