//! Figure 2 — kernel GCUPs as a function of the standard deviation of
//! database sequence lengths.
//!
//! "we generated several random databases containing s sequences using a
//! log-normal distribution of the sequence lengths. We set the standard
//! deviation between 100 and 4000 [...] We ran both the intra-task kernel
//! and the inter-task kernel of CUDASW++ on the databases with the same
//! query sequence of length 567." The paper's point: the inter-task kernel
//! is very sensitive to the variance (load imbalance: a group launch waits
//! for its longest sequence) while the intra-task kernel is not, so the
//! curves cross.

use crate::report::{series_table, Series, Table};
use crate::workloads;
use cudasw_core::model::{predict_inter_group, predict_intra_orig};
use gpu_sim::{DeviceSpec, TimingModel};

/// Figure 2's data.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Inter-task GCUPs vs σ.
    pub inter: Series,
    /// (Original) intra-task GCUPs vs σ.
    pub intra: Series,
    /// First σ where the intra-task kernel wins, if any.
    pub crossover_std: Option<f64>,
}

impl Fig2Result {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = series_table(
            "Figure 2 — kernel GCUPs vs std-dev of database sequence lengths",
            "std_dev",
            &[self.inter.clone(), self.intra.clone()],
        );
        if let Some(x) = self.crossover_std {
            t.title = format!("{} (crossover at σ ≈ {x:.0})", t.title);
        }
        t
    }
}

/// Run the experiment at paper scale (analytic).
///
/// `s` is the inter-task group size (the paper generates databases of
/// exactly `s` sequences so one launch covers the whole database).
pub fn run(spec: &DeviceSpec, s: usize, stds: &[f64], query_len: usize) -> Fig2Result {
    let tm = TimingModel::default();
    let mut inter = Series::new("Inter-task Kernel");
    let mut intra = Series::new("Intra-task Kernel");
    let mut crossover_std = None;
    for &std in stds {
        let lengths = workloads::fig2_lengths(std, s, 1000.0);
        let gi = predict_inter_group(spec, &tm, &lengths, query_len, 256).gcups();
        let go = predict_intra_orig(spec, &tm, &lengths, query_len, false).gcups();
        inter.push(std, gi);
        intra.push(std, go);
        if crossover_std.is_none() && go > gi {
            crossover_std = Some(std);
        }
    }
    Fig2Result {
        inter,
        intra,
        crossover_std,
    }
}

/// The paper's σ sweep (100 to 4000).
pub fn paper_stds() -> Vec<f64> {
    vec![
        100.0, 250.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3500.0, 4000.0,
    ]
}

// Figure 2 acceptance bands, shared by this module's unit tests and the
// workspace paper-claims suite so the two can never drift apart.

/// The inter-task curve must fall to below this fraction of its low-σ
/// value across the paper's sweep (the paper's curve roughly halves
/// before the crossover).
pub const INTER_COLLAPSE_MAX_FRACTION: f64 = 0.6;
/// The intra-task curve is variance-insensitive: its relative swing over
/// the whole sweep stays below this bound (the paper's curve is flat).
pub const INTRA_MAX_RELATIVE_SWING: f64 = 0.5;
/// At σ = 100 the inter-task kernel must lead the intra-task kernel by
/// at least this factor (the paper's gap is an order of magnitude).
pub const LOW_STD_MIN_GAP: f64 = 5.0;
/// At σ = 4000 the inter-task advantage must have collapsed to parity
/// within this ratio (the paper's curves have crossed by then; this
/// reproduction reaches ≈1x — EXPERIMENTS.md, "Known divergences").
pub const HIGH_STD_PARITY_MAX_RATIO: f64 = 1.1;

impl Fig2Result {
    /// Inter/intra GCUPs ratio at the first and last sweep point; `None`
    /// for an empty sweep.
    pub fn endpoint_ratios(&self) -> Option<(f64, f64)> {
        let ratio = |i: &(f64, f64), o: &(f64, f64)| i.1 / o.1;
        match (
            self.inter.points.first().zip(self.intra.points.first()),
            self.inter.points.last().zip(self.intra.points.last()),
        ) {
            (Some((i0, o0)), Some((i1, o1))) => Some((ratio(i0, o0), ratio(i1, o1))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First and last GCUPs of a sweep series (sweeps here are never
    /// empty; panics with a message instead of a bare unwrap if one is).
    fn endpoints(s: &Series) -> (f64, f64) {
        match (s.points.first(), s.points.last()) {
            (Some(first), Some(last)) => (first.1, last.1),
            _ => panic!("empty σ sweep in series {:?}", s.label),
        }
    }

    #[test]
    fn inter_task_degrades_with_variance_intra_does_not() {
        let spec = DeviceSpec::tesla_c1060();
        let r = run(&spec, 15_360, &paper_stds(), 567);
        let (inter_first, inter_last) = endpoints(&r.inter);
        assert!(
            inter_last < inter_first * INTER_COLLAPSE_MAX_FRACTION,
            "inter-task should collapse: {inter_first:.1} -> {inter_last:.1}"
        );
        let (intra_first, intra_last) = endpoints(&r.intra);
        let swing = (intra_last - intra_first).abs() / intra_first.max(1e-9);
        assert!(
            swing < INTRA_MAX_RELATIVE_SWING,
            "intra-task should be flat-ish, swing {swing:.2}"
        );
    }

    #[test]
    fn curves_converge_at_high_variance() {
        // The paper's curves cross mid-sweep. In this reproduction the
        // inter-task curve collapses to *parity* with the intra-task
        // floor at σ = 4000 (within a few percent, the exact side of 1.0
        // depending on the sampled database) — see EXPERIMENTS.md
        // "Known divergences". Assert the robust property: a large gap
        // at low σ that closes to ≈1x at the top of the sweep.
        let spec = DeviceSpec::tesla_c1060();
        let r = run(&spec, 15_360, &paper_stds(), 567);
        let Some((ratio_first, ratio_last)) = r.endpoint_ratios() else {
            panic!("empty σ sweep");
        };
        assert!(ratio_first > LOW_STD_MIN_GAP, "low-σ gap {ratio_first:.2}x");
        assert!(
            ratio_last < HIGH_STD_PARITY_MAX_RATIO,
            "inter-task must collapse to intra-task parity: {ratio_last:.2}x"
        );
    }

    #[test]
    fn table_renders() {
        let spec = DeviceSpec::tesla_c1060();
        let r = run(&spec, 4096, &[100.0, 1000.0], 567);
        let rendered = r.table().render();
        assert!(rendered.contains("Figure 2"));
    }
}
