//! Figure 6 — the Figure 5(b) experiment repeated with the Fermi L1/L2
//! caches turned off.
//!
//! "To show that the cache is indeed responsible for the improvement shown
//! in Figure 5(b), we performed the same experiment on a Tesla C2050 with
//! both of the L1 and L2 caches turned off. [...] the improvements gained
//! by the original kernel on a Tesla C2050 are almost completely
//! attributed to the cache."

use super::fig5::{run as run_fig5, Fig5Result};
use crate::report::Table;

/// Figure 6's data, paired with the caches-on baseline for the comparison
/// the paper makes.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// The caches-off sweep (same panels as Figure 5).
    pub caches_off: Fig5Result,
    /// The caches-on baseline (Figure 5 itself).
    pub caches_on: Fig5Result,
}

impl Fig6Result {
    /// Table of intra-task time share with caches off.
    pub fn table(&self) -> Table {
        let mut t = self.caches_off.table_b();
        t.title = "Figure 6 — % of time in intra-task with Fermi L1/L2 disabled".to_string();
        t
    }

    /// How much the C2050 original-kernel time share grew when the caches
    /// were disabled (at the deepest threshold of the sweep).
    pub fn c2050_original_share_delta(&self) -> f64 {
        let on = self.caches_on.time_share[1].max_y();
        let off = self.caches_off.time_share[1].max_y();
        off - on
    }

    /// Same delta for the improved kernel (should be small).
    pub fn c2050_improved_share_delta(&self) -> f64 {
        let on = self.caches_on.time_share[0].max_y();
        let off = self.caches_off.time_share[0].max_y();
        off - on
    }
}

/// Run Figure 6 at paper scale.
pub fn run(query_len: usize) -> Fig6Result {
    Fig6Result {
        caches_off: run_fig5(query_len, true),
        caches_on: run_fig5(query_len, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabling_caches_hurts_original_much_more_than_improved() {
        let r = run(576);
        let orig_delta = r.c2050_original_share_delta();
        let imp_delta = r.c2050_improved_share_delta();
        assert!(
            orig_delta > 2.0 * imp_delta.max(0.5),
            "original Δ{orig_delta:.1}pp vs improved Δ{imp_delta:.1}pp"
        );
    }

    #[test]
    fn c1060_curves_unchanged_by_the_fermi_cache_toggle() {
        let r = run(576);
        // Indices 2/3 are the C1060 configurations; GT200 has no L1/L2 to
        // disable, so the sweep must be identical.
        for idx in [2usize, 3] {
            for (a, b) in r.caches_on.time_share[idx]
                .points
                .iter()
                .zip(&r.caches_off.time_share[idx].points)
            {
                assert!((a.1 - b.1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn caches_off_original_approaches_c1060_behaviour() {
        // The paper's reading: without its cache advantage, the Fermi
        // original kernel behaves like the C1060 one. Its time share with
        // caches off must be at least as high as with caches on.
        let r = run(576);
        assert!(r.caches_off.time_share[1].max_y() >= r.caches_on.time_share[1].max_y());
    }
}
