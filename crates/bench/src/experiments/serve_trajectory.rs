//! The wall-clock serving trajectory (`BENCH_serve.json`, schema
//! `cudasw.bench.serve/v1`).
//!
//! Same shape as the host-bench trajectory: **append-only**, one entry
//! per measured run keyed by `(git rev, workload config, host_threads)`,
//! so the committed file is the serving-SLO history of the repo. Wall
//! latency depends on the measuring host, which is why `host_threads`
//! is part of the key and why the gates are split:
//!
//! * **shed / deadline-miss regression guard** — always applies: these
//!   rates are dominated by admission policy and scheduling, not raw
//!   host speed, so a fresh run must not exceed the committed baseline
//!   by more than [`RATE_TOLERANCE`] (absolute) per profile.
//! * **latency tail gate** — conditional on the measuring host having
//!   ≥ [`LATENCY_GATE_MIN_THREADS`] hardware threads: a 1-core CI box
//!   time-slices every lane worker over one core, so its tails certify
//!   nothing and must not fake a pass or a failure. Where it applies,
//!   p99 may not grow past `baseline × (1 + `[`LATENCY_TOLERANCE`]`)`
//!   (with a [`LATENCY_FLOOR_MS`] absolute floor under which jitter is
//!   ignored).

use super::serve_rt::{ProfileRow, ServeRtResult, SCHEMA};
use obs::json::{escape, parse, Json};

/// Allowed absolute growth of shed rate / deadline-miss rate vs the
/// committed baseline per profile. Far above run-to-run jitter at 10⁵
/// requests; catches policy regressions (a broken breaker flooding the
/// host lane, EDF inversions, quota accounting drift).
pub const RATE_TOLERANCE: f64 = 0.10;

/// Allowed fractional p99 growth where the latency gate applies (2×
/// headroom: wall clocks on shared machines are noisy).
pub const LATENCY_TOLERANCE: f64 = 1.0;

/// p99 deltas under this absolute floor (milliseconds) never fail the
/// latency gate.
pub const LATENCY_FLOOR_MS: f64 = 5.0;

/// Minimum hardware threads before latency tails are gated.
pub const LATENCY_GATE_MIN_THREADS: usize = 4;

/// One measured run in the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEntry {
    /// Git revision (short hash) the run was measured at.
    pub rev: String,
    /// Stable workload key (database shape × schedule size).
    pub config: String,
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// gpu-sim device lanes.
    pub devices: usize,
    /// Database sequences.
    pub db_size: usize,
    /// Requests per profile.
    pub requests_per_profile: usize,
    /// One row per load profile.
    pub profiles: Vec<ProfileRow>,
}

impl ServeEntry {
    /// Wrap a fresh measurement for the trajectory.
    pub fn from_result(r: &ServeRtResult, rev: &str) -> Self {
        Self {
            rev: rev.to_string(),
            config: r.config.clone(),
            host_threads: r.host_threads,
            devices: r.devices,
            db_size: r.db_size,
            requests_per_profile: r.requests_per_profile,
            profiles: r.profiles.clone(),
        }
    }

    /// The key that decides replace-vs-append on merge.
    fn key(&self) -> (String, String, usize) {
        (self.rev.clone(), self.config.clone(), self.host_threads)
    }
}

/// The whole append-only document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeTrajectory {
    /// Entries in file order (oldest first).
    pub entries: Vec<ServeEntry>,
}

impl ServeTrajectory {
    /// Append a run, replacing a prior entry with the identical
    /// `(rev, config, host_threads)` key, never touching other entries.
    pub fn append(&mut self, entry: ServeEntry) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.key() == entry.key()) {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Most recent committed entry comparable to `new` (same workload
    /// config and host thread count).
    pub fn baseline_for<'a>(&'a self, new: &ServeEntry) -> Option<&'a ServeEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.config == new.config && e.host_threads == new.host_threads)
    }

    /// Serialize the v1 document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&entry_to_json(e, "    "));
            out.push_str(if i + 1 == self.entries.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a trajectory file.
    pub fn parse(text: &str) -> Result<ServeTrajectory, String> {
        let doc = parse(text)?;
        match doc.get("schema").and_then(|s| s.as_str()) {
            Some(s) if s == SCHEMA => {
                let entries = doc
                    .get("entries")
                    .and_then(|e| e.as_arr())
                    .ok_or("serve trajectory without entries array")?;
                Ok(ServeTrajectory {
                    entries: entries
                        .iter()
                        .map(entry_from_json)
                        .collect::<Result<_, _>>()?,
                })
            }
            Some(other) => Err(format!("unknown serve bench schema {other:?}")),
            None => Err("document has no schema field".to_string()),
        }
    }
}

fn entry_to_json(e: &ServeEntry, indent: &str) -> String {
    let mut out = format!("{indent}{{\n");
    out.push_str(&format!("{indent}  \"rev\": \"{}\",\n", escape(&e.rev)));
    out.push_str(&format!(
        "{indent}  \"config\": \"{}\",\n",
        escape(&e.config)
    ));
    out.push_str(&format!(
        "{indent}  \"host_threads\": {},\n",
        e.host_threads
    ));
    out.push_str(&format!("{indent}  \"devices\": {},\n", e.devices));
    out.push_str(&format!("{indent}  \"db_size\": {},\n", e.db_size));
    out.push_str(&format!(
        "{indent}  \"requests_per_profile\": {},\n",
        e.requests_per_profile
    ));
    out.push_str(&format!("{indent}  \"profiles\": [\n"));
    for (i, p) in e.profiles.iter().enumerate() {
        out.push_str(&format!(
            "{indent}    {{\"profile\": \"{}\", \"requests\": {}, \"served\": {}, \
             \"shed\": {}, \"aborted\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"p999_ms\": {:.3}, \"shed_rate\": {:.4}, \"deadline_miss_rate\": {:.4}, \
             \"queries_per_second\": {:.1}, \"gcups\": {:.4}, \"wall_seconds\": {:.3}, \
             \"waves\": {}}}{}\n",
            escape(&p.profile),
            p.requests,
            p.served,
            p.shed,
            p.aborted,
            p.p50_ms,
            p.p99_ms,
            p.p999_ms,
            p.shed_rate,
            p.deadline_miss_rate,
            p.queries_per_second,
            p.gcups,
            p.wall_seconds,
            p.waves,
            if i + 1 == e.profiles.len() { "" } else { "," },
        ));
    }
    out.push_str(&format!("{indent}  ]\n"));
    out.push_str(&format!("{indent}}}"));
    out
}

fn num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|n| n.as_f64())
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn text(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|s| s.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn profile_from_json(v: &Json) -> Result<ProfileRow, String> {
    Ok(ProfileRow {
        profile: text(v, "profile")?,
        requests: num(v, "requests")? as usize,
        served: num(v, "served")? as usize,
        shed: num(v, "shed")? as usize,
        aborted: num(v, "aborted")? as usize,
        p50_ms: num(v, "p50_ms")?,
        p99_ms: num(v, "p99_ms")?,
        p999_ms: num(v, "p999_ms")?,
        shed_rate: num(v, "shed_rate")?,
        deadline_miss_rate: num(v, "deadline_miss_rate")?,
        queries_per_second: num(v, "queries_per_second")?,
        gcups: num(v, "gcups")?,
        wall_seconds: num(v, "wall_seconds")?,
        waves: num(v, "waves")? as u64,
    })
}

fn entry_from_json(v: &Json) -> Result<ServeEntry, String> {
    let profiles = v
        .get("profiles")
        .and_then(|p| p.as_arr())
        .ok_or("entry without profiles array")?;
    Ok(ServeEntry {
        rev: text(v, "rev")?,
        config: text(v, "config")?,
        host_threads: num(v, "host_threads")? as usize,
        devices: num(v, "devices")? as usize,
        db_size: num(v, "db_size")? as usize,
        requests_per_profile: num(v, "requests_per_profile")? as usize,
        profiles: profiles
            .iter()
            .map(profile_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// Compare a fresh entry against its committed baseline: per profile
/// present in both, shed and deadline-miss rates may not grow past the
/// absolute [`RATE_TOLERANCE`]; where the host qualifies
/// (≥ [`LATENCY_GATE_MIN_THREADS`] threads on **both** entries — the key
/// already guarantees equal `host_threads`), p99 may not blow past the
/// committed tail. Returns human-readable failures (empty = pass).
pub fn regressions(baseline: &ServeEntry, new: &ServeEntry) -> Vec<String> {
    let mut failures = Vec::new();
    for old in &baseline.profiles {
        let Some(fresh) = new.profiles.iter().find(|p| p.profile == old.profile) else {
            continue;
        };
        if fresh.shed_rate > old.shed_rate + RATE_TOLERANCE {
            failures.push(format!(
                "{}: shed rate {:.3} vs committed {:.3} (allowed ceiling {:.3})",
                fresh.profile,
                fresh.shed_rate,
                old.shed_rate,
                old.shed_rate + RATE_TOLERANCE,
            ));
        }
        if fresh.deadline_miss_rate > old.deadline_miss_rate + RATE_TOLERANCE {
            failures.push(format!(
                "{}: deadline-miss rate {:.3} vs committed {:.3} (allowed ceiling {:.3})",
                fresh.profile,
                fresh.deadline_miss_rate,
                old.deadline_miss_rate,
                old.deadline_miss_rate + RATE_TOLERANCE,
            ));
        }
        if new.host_threads >= LATENCY_GATE_MIN_THREADS {
            let ceiling = (old.p99_ms * (1.0 + LATENCY_TOLERANCE)).max(LATENCY_FLOOR_MS);
            if fresh.p99_ms > ceiling {
                failures.push(format!(
                    "{}: p99 {:.2} ms vs committed {:.2} ms (allowed ceiling {:.2} ms, \
                     {} host threads)",
                    fresh.profile, fresh.p99_ms, old.p99_ms, ceiling, new.host_threads,
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile(name: &str, shed_rate: f64, miss_rate: f64, p99_ms: f64) -> ProfileRow {
        let requests = 1000;
        let shed = (requests as f64 * shed_rate) as usize;
        ProfileRow {
            profile: name.to_string(),
            requests,
            served: requests - shed,
            shed,
            aborted: 0,
            p50_ms: p99_ms / 4.0,
            p99_ms,
            p999_ms: p99_ms * 2.0,
            shed_rate,
            deadline_miss_rate: miss_rate,
            queries_per_second: 800.0,
            gcups: 0.05,
            wall_seconds: 1.25,
            waves: 90,
        }
    }

    fn sample_entry(rev: &str, host_threads: usize, overload_shed: f64) -> ServeEntry {
        ServeEntry {
            rev: rev.to_string(),
            config: "rt-mixed10x24-64-r1000".to_string(),
            host_threads,
            devices: 2,
            db_size: 10,
            requests_per_profile: 1000,
            profiles: vec![
                sample_profile("steady", 0.0, 0.0, 12.0),
                sample_profile("bursty", 0.02, 0.01, 30.0),
                sample_profile("overload", overload_shed, 0.05, 80.0),
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let mut t = ServeTrajectory::default();
        t.append(sample_entry("abc1234", 8, 0.6));
        t.append(sample_entry("def5678", 8, 0.62));
        let parsed = ServeTrajectory::parse(&t.to_json()).expect("valid document");
        assert_eq!(parsed.entries.len(), 2);
        for (a, b) in t.entries.iter().zip(&parsed.entries) {
            assert_eq!(a.rev, b.rev);
            assert_eq!(a.config, b.config);
            assert_eq!(a.host_threads, b.host_threads);
            assert_eq!(a.profiles.len(), b.profiles.len());
            for (x, y) in a.profiles.iter().zip(&b.profiles) {
                assert_eq!(x.profile, y.profile);
                assert_eq!(x.served, y.served);
                assert!((x.shed_rate - y.shed_rate).abs() < 1e-4);
                assert!((x.p99_ms - y.p99_ms).abs() < 1e-3);
                assert_eq!(x.waves, y.waves);
            }
        }
    }

    #[test]
    fn append_replaces_only_identical_keys() {
        let mut t = ServeTrajectory::default();
        t.append(sample_entry("aaa", 8, 0.6));
        t.append(sample_entry("bbb", 8, 0.61));
        assert_eq!(t.entries.len(), 2);
        t.append(sample_entry("bbb", 8, 0.63));
        assert_eq!(t.entries.len(), 2, "same key replaces in place");
        t.append(sample_entry("bbb", 1, 0.6));
        assert_eq!(t.entries.len(), 3, "different host_threads is a new key");
    }

    #[test]
    fn baseline_requires_config_and_host_threads() {
        let mut t = ServeTrajectory::default();
        t.append(sample_entry("aaa", 8, 0.6));
        assert!(t.baseline_for(&sample_entry("bbb", 1, 0.6)).is_none());
        let mut other = sample_entry("bbb", 8, 0.6);
        other.config = "rt-mixed24x24-64-r1000".to_string();
        assert!(t.baseline_for(&other).is_none());
        assert_eq!(
            t.baseline_for(&sample_entry("bbb", 8, 0.6))
                .map(|e| e.rev.as_str()),
            Some("aaa")
        );
    }

    #[test]
    fn rate_guard_always_bites_latency_gate_is_conditional() {
        let committed = sample_entry("aaa", 1, 0.6);
        // Shed-rate explosion on overload: fails even on a 1-core host.
        let worse = sample_entry("bbb", 1, 0.85);
        let failures = regressions(&committed, &worse);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("overload: shed rate"));
        // Deadline-miss explosion fails too.
        let mut missy = sample_entry("ccc", 1, 0.6);
        missy.profiles[0].deadline_miss_rate = 0.5;
        assert!(regressions(&committed, &missy)
            .iter()
            .any(|f| f.contains("steady: deadline-miss")));
        // A 10x p99 blowup on a 1-core host is NOT gated…
        let mut slow1 = sample_entry("ddd", 1, 0.6);
        for p in &mut slow1.profiles {
            p.p99_ms *= 10.0;
        }
        assert!(regressions(&committed, &slow1).is_empty());
        // …but on an 8-core host it is.
        let committed8 = sample_entry("aaa", 8, 0.6);
        let mut slow8 = sample_entry("ddd", 8, 0.6);
        for p in &mut slow8.profiles {
            p.p99_ms *= 10.0;
        }
        let failures = regressions(&committed8, &slow8);
        assert_eq!(failures.len(), 3, "all three profiles blew their tails");
        assert!(failures.iter().all(|f| f.contains("p99")));
        // Sub-floor jitter never fails: 1 ms → 4 ms is under the floor.
        let mut tiny = sample_entry("aaa", 8, 0.6);
        tiny.profiles[0].p99_ms = 1.0;
        let mut jitter = sample_entry("eee", 8, 0.6);
        jitter.profiles[0].p99_ms = 4.0;
        assert!(regressions(&tiny, &jitter).is_empty());
        // Within-tolerance rate noise passes.
        let noisy = sample_entry("fff", 1, 0.65);
        assert!(regressions(&committed, &noisy).is_empty());
    }
}
