//! `bench host` — real wall-clock GCUPS of the host compute backend.
//!
//! Unlike the paper figures (simulated-clock GPU predictions), this
//! experiment measures the machine it runs on: one full database pass per
//! (backend × kernel-mode × thread-count) cell, best-of-N wall-clock. The
//! workload is *Swissprot-shaped*: `sw-db`'s log-normal synthesizer at
//! 10⁵ sequences by default (`--db-size` overrides), searched
//! length-sorted like every real CUDASW++ database — the 800-sequence
//! uniform toy of the v1 bench never let the pool amortize and reported
//! 4 threads slower than 1. The smoke run is the *same* code path at
//! reduced size, so CI exercises exactly what the full run measures.
//!
//! The baseline row is the pre-backend host path — the portable emulated
//! vectors in word-only mode on one thread — so the numbers directly
//! answer "what did the native byte-mode backend buy over the old code".
//! Every backend is additionally measured in both Lazy-F kernel modes
//! (correction loop vs prefix scan), with the `cudasw.simd.lazy_f.*`
//! counts carried per row for the measured before/after.
//!
//! Scores are asserted identical across every measured cell before any
//! number is reported; a perf figure from diverging kernels is worthless.
//! Results are persisted as an append-only trajectory document
//! (`cudasw.bench.host/v2`, see [`super::host_trajectory`]).

use crate::report::Table;
use crate::workloads;
use sw_db::catalog::PaperDb;
use sw_db::synth::make_query;
use sw_db::Database;
use sw_simd::{search_sequences, AdaptiveStats, BackendKind, KernelMode, Precision, QueryEngine};

/// Sequences in the full Swissprot-shaped synthetic database.
pub const FULL_DB_SIZE: usize = 100_000;

/// Sequences in the smoke run — same log-normal shape, same code path,
/// CI-scale wall-clock.
pub const SMOKE_DB_SIZE: usize = 1_500;

/// Options for a host benchmark run.
#[derive(Debug, Clone, Default)]
pub struct HostBenchOpts {
    /// CI-scale run: smaller database, fewer thread counts, one rep.
    pub smoke: bool,
    /// Override the database size (sequences) of either profile.
    pub db_size: Option<usize>,
}

/// One measured cell: a backend × kernel-mode × precision × thread-count
/// pass over the whole database.
#[derive(Debug, Clone, PartialEq)]
pub struct HostRow {
    /// Backend name (`avx2` / `sse2` / `neon` / `portable`).
    pub backend: String,
    /// `adaptive` (byte first, word rerun) or `word` (exact 16-bit only).
    pub precision: String,
    /// Lazy-F kernel mode (`correction-loop` or `prefix-scan`).
    pub kernel_mode: String,
    /// Worker threads.
    pub threads: usize,
    /// Best-of-reps wall-clock seconds for one database pass.
    pub seconds: f64,
    /// Cells / seconds / 1e9.
    pub gcups: f64,
    /// Alignments resolved in byte mode (adaptive rows).
    pub byte_mode: u64,
    /// Alignments re-run in word mode after overflow.
    pub word_fallbacks: u64,
    /// Lazy-F vector operations (byte + word passes) in the best pass.
    pub lazy_f: u64,
    /// Work-stealing events in the measured (best) pass.
    pub steals: u64,
}

/// Everything `bench host` measured.
#[derive(Debug, Clone)]
pub struct HostBenchResult {
    /// One row per measured cell.
    pub rows: Vec<HostRow>,
    /// DP cells of one database pass.
    pub cells: u64,
    /// Database sequences.
    pub db_size: usize,
    /// Query length.
    pub query_len: usize,
    /// Stable workload key for trajectory matching (shape + size + query).
    pub config: String,
    /// `std::thread::available_parallelism` of this host — thread-scaling
    /// numbers are only meaningful up to this count.
    pub host_threads: usize,
    /// Best single-thread adaptive GCUPS per backend (correction-loop
    /// mode), divided by the emulated baseline (portable word, 1 thread).
    pub speedup_vs_emulated: Vec<(String, f64)>,
    /// Per backend: correction-loop adaptive GCUPS at the highest measured
    /// thread count divided by its own single-thread GCUPS.
    pub thread_scaling: Vec<(String, f64)>,
    /// Per backend: correction-loop lazy-F ops divided by prefix-scan
    /// lazy-F ops (1-thread adaptive rows) — >1 means the scan saved work.
    pub lazy_f_delta: Vec<(String, f64)>,
}

impl HostBenchResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "host backend wall-clock GCUPS (real time, this machine)".to_string(),
            &[
                "backend",
                "precision",
                "kernel-mode",
                "threads",
                "seconds",
                "GCUPS",
                "byte-mode",
                "word-reruns",
                "lazy-F",
                "steals",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.backend.clone(),
                r.precision.clone(),
                r.kernel_mode.clone(),
                r.threads.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.3}", r.gcups),
                r.byte_mode.to_string(),
                r.word_fallbacks.to_string(),
                r.lazy_f.to_string(),
                r.steals.to_string(),
            ]);
        }
        t
    }
}

struct Workload {
    db: Database,
    query: Vec<u8>,
    thread_counts: Vec<usize>,
    reps: usize,
}

fn workload(opts: &HostBenchOpts) -> Workload {
    // One synthesizer for both profiles: the Swissprot-shaped log-normal
    // catalog entry, length-sorted on construction like every Database.
    // The smoke run differs from the full run only in scale.
    if opts.smoke {
        let db_size = opts.db_size.unwrap_or(SMOKE_DB_SIZE);
        Workload {
            db: PaperDb::Swissprot.generate(db_size, workloads::SEED),
            query: make_query(128, workloads::SEED),
            thread_counts: vec![1, 2],
            reps: 1,
        }
    } else {
        let db_size = opts.db_size.unwrap_or(FULL_DB_SIZE);
        Workload {
            db: PaperDb::Swissprot.generate(db_size, workloads::SEED),
            query: make_query(256, workloads::SEED),
            thread_counts: vec![1, 2, 4],
            reps: 2,
        }
    }
}

/// Measure one (engine, threads) cell: best-of-`reps` seconds.
fn measure(
    engine: &QueryEngine,
    db: &Database,
    threads: usize,
    precision: Precision,
    reps: usize,
) -> (f64, Vec<i32>, AdaptiveStats, u64) {
    let mut best_seconds = f64::INFINITY;
    let mut best: Option<(Vec<i32>, AdaptiveStats, u64)> = None;
    for _ in 0..reps.max(1) {
        let r = search_sequences(engine, db.sequences(), threads, precision);
        if r.seconds < best_seconds {
            best_seconds = r.seconds;
            best = Some((r.scores, r.stats, r.steals));
        }
    }
    let (scores, stats, steals) = best.expect("at least one rep");
    (best_seconds, scores, stats, steals)
}

/// Run the host benchmark.
pub fn run(opts: &HostBenchOpts) -> HostBenchResult {
    let w = workload(opts);
    let cells = w.db.total_cells(w.query.len());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = format!("swissprot-synth-{}x{}", w.db.len(), w.query.len());

    let mut rows: Vec<HostRow> = Vec::new();
    let mut reference: Option<Vec<i32>> = None;
    let mut push_row = |backend: BackendKind,
                        mode: KernelMode,
                        precision: Precision,
                        threads: usize,
                        reference: &mut Option<Vec<i32>>|
     -> (f64, u64) {
        let engine = QueryEngine::with_backend_and_mode(
            sw_align::SwParams::cudasw_default(),
            &w.query,
            backend,
            mode,
        );
        let (seconds, scores, stats, steals) = measure(&engine, &w.db, threads, precision, w.reps);
        match reference {
            None => *reference = Some(scores),
            Some(expected) => assert_eq!(
                &scores, expected,
                "scores diverged on {backend} {mode} {precision:?} x{threads}"
            ),
        }
        sw_simd::record_stats(backend, &stats);
        let gcups = if seconds > 0.0 {
            cells as f64 / seconds / 1.0e9
        } else {
            0.0
        };
        let lazy_f = stats.lazy_f_byte + stats.lazy_f_word;
        rows.push(HostRow {
            backend: backend.name().to_string(),
            precision: match precision {
                Precision::Adaptive => "adaptive".to_string(),
                Precision::Word => "word".to_string(),
            },
            kernel_mode: mode.name().to_string(),
            threads,
            seconds,
            gcups,
            byte_mode: stats.byte_mode,
            word_fallbacks: stats.word_fallbacks,
            lazy_f,
            steals,
        });
        (gcups, lazy_f)
    };

    // The emulated baseline: the exact pre-backend host path (portable
    // word-only vectors, correction loop, one thread).
    let (baseline_gcups, _) = push_row(
        BackendKind::Portable,
        KernelMode::CorrectionLoop,
        Precision::Word,
        1,
        &mut reference,
    );

    let backends = BackendKind::available();
    let mut speedup_vs_emulated = Vec::new();
    let mut thread_scaling = Vec::new();
    let mut lazy_f_delta = Vec::new();
    for &backend in &backends {
        let mut loop_one_thread_gcups = 0.0f64;
        let mut loop_max_thread_gcups = 0.0f64;
        let mut loop_lazy_f = 0u64;
        let mut scan_lazy_f = 0u64;
        for mode in KernelMode::ALL {
            for &threads in &w.thread_counts {
                let (gcups, lazy_f) =
                    push_row(backend, mode, Precision::Adaptive, threads, &mut reference);
                if threads == 1 {
                    match mode {
                        KernelMode::CorrectionLoop => {
                            loop_one_thread_gcups = gcups;
                            loop_lazy_f = lazy_f;
                        }
                        KernelMode::PrefixScan => scan_lazy_f = lazy_f,
                    }
                }
                if mode == KernelMode::CorrectionLoop
                    && threads == *w.thread_counts.last().expect("non-empty")
                {
                    loop_max_thread_gcups = gcups;
                }
            }
        }
        if baseline_gcups > 0.0 {
            speedup_vs_emulated.push((
                backend.name().to_string(),
                loop_one_thread_gcups / baseline_gcups,
            ));
        }
        if loop_one_thread_gcups > 0.0 {
            thread_scaling.push((
                backend.name().to_string(),
                loop_max_thread_gcups / loop_one_thread_gcups,
            ));
        }
        if scan_lazy_f > 0 {
            lazy_f_delta.push((
                backend.name().to_string(),
                loop_lazy_f as f64 / scan_lazy_f as f64,
            ));
        }
    }

    HostBenchResult {
        rows,
        cells,
        db_size: w.db.len(),
        query_len: w.query.len(),
        config,
        host_threads,
        speedup_vs_emulated,
        thread_scaling,
        lazy_f_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measures_the_large_db_code_path() {
        // A scaled-down smoke (200 sequences keeps the unit test fast)
        // must still be Swissprot-shaped, length-sorted, and cover both
        // kernel modes on every backend.
        let r = run(&HostBenchOpts {
            smoke: true,
            db_size: Some(200),
        });
        assert_eq!(r.db_size, 200);
        assert_eq!(r.config, format!("swissprot-synth-200x{}", r.query_len));
        // Baseline row first, then adaptive rows per backend × mode.
        assert_eq!(r.rows[0].backend, "portable");
        assert_eq!(r.rows[0].precision, "word");
        assert_eq!(r.rows[0].kernel_mode, "correction-loop");
        let backends = sw_simd::BackendKind::available();
        for kind in &backends {
            for mode in ["correction-loop", "prefix-scan"] {
                assert!(
                    r.rows.iter().any(|row| row.backend == kind.name()
                        && row.kernel_mode == mode
                        && row.precision == "adaptive"),
                    "missing {kind} {mode} row"
                );
            }
        }
        // The scan must have saved lazy-F work on every backend.
        assert_eq!(r.lazy_f_delta.len(), backends.len());
        for (backend, delta) in &r.lazy_f_delta {
            assert!(*delta > 0.0, "{backend}: lazy-F delta must be positive");
        }
        assert!(!r.speedup_vs_emulated.is_empty());
        assert!(!r.thread_scaling.is_empty());
        assert!(r.host_threads >= 1);
    }
}
