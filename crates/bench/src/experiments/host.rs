//! `bench host` — real wall-clock GCUPS of the host compute backend.
//!
//! Unlike the paper figures (simulated-clock GPU predictions), this
//! experiment measures the machine it runs on: one full database pass per
//! (backend × precision × thread-count) cell, best-of-N wall-clock,
//! emitted as `BENCH_host.json` (schema `cudasw.bench.host/v1`). The
//! baseline row is the pre-backend host path — the portable emulated
//! vectors in word-only mode on one thread — so the JSON directly answers
//! "what did the native byte-mode backend buy over the old code".
//!
//! Scores are asserted identical across every measured cell before any
//! number is reported; a perf figure from diverging kernels is worthless.

use crate::report::Table;
use crate::workloads;
use sw_db::synth::{make_query, uniform_database};
use sw_db::Database;
use sw_simd::{search_sequences, AdaptiveStats, BackendKind, Precision, QueryEngine};

/// JSON schema tag of `BENCH_host.json`.
pub const SCHEMA: &str = "cudasw.bench.host/v1";

/// One measured cell: a backend × precision × thread-count pass over the
/// whole database.
#[derive(Debug, Clone)]
pub struct HostRow {
    /// Backend name (`avx2` / `sse2` / `neon` / `portable`).
    pub backend: String,
    /// `adaptive` (byte first, word rerun) or `word` (exact 16-bit only).
    pub precision: String,
    /// Worker threads.
    pub threads: usize,
    /// Best-of-reps wall-clock seconds for one database pass.
    pub seconds: f64,
    /// Cells / seconds / 1e9.
    pub gcups: f64,
    /// Alignments resolved in byte mode (adaptive rows).
    pub byte_mode: u64,
    /// Alignments re-run in word mode after overflow.
    pub word_fallbacks: u64,
    /// Work-stealing events in the measured (best) pass.
    pub steals: u64,
}

/// Everything `bench host` measured.
#[derive(Debug, Clone)]
pub struct HostBenchResult {
    /// One row per measured cell.
    pub rows: Vec<HostRow>,
    /// DP cells of one database pass.
    pub cells: u64,
    /// Database sequences.
    pub db_size: usize,
    /// Query length.
    pub query_len: usize,
    /// `std::thread::available_parallelism` of this host — thread-scaling
    /// numbers are only meaningful up to this count.
    pub host_threads: usize,
    /// Best single-thread adaptive GCUPS per backend, divided by the
    /// emulated baseline (portable word mode, one thread).
    pub speedup_vs_emulated: Vec<(String, f64)>,
    /// Per backend: GCUPS at the highest measured thread count divided by
    /// its own single-thread GCUPS.
    pub thread_scaling: Vec<(String, f64)>,
}

impl HostBenchResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "host backend wall-clock GCUPS (real time, this machine)".to_string(),
            &[
                "backend",
                "precision",
                "threads",
                "seconds",
                "GCUPS",
                "byte-mode",
                "word-reruns",
                "steals",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.backend.clone(),
                r.precision.clone(),
                r.threads.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.3}", r.gcups),
                r.byte_mode.to_string(),
                r.word_fallbacks.to_string(),
                r.steals.to_string(),
            ]);
        }
        t
    }

    /// Serialize as the `cudasw.bench.host/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"db_size\": {},\n", self.db_size));
        out.push_str(&format!("  \"query_len\": {},\n", self.query_len));
        out.push_str(&format!("  \"cells\": {},\n", self.cells));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"backend\": \"{}\", \"precision\": \"{}\", \"threads\": {}, \
                 \"seconds\": {:.6}, \"gcups\": {:.4}, \"byte_mode\": {}, \
                 \"word_fallbacks\": {}, \"steals\": {}}}{}\n",
                r.backend,
                r.precision,
                r.threads,
                r.seconds,
                r.gcups,
                r.byte_mode,
                r.word_fallbacks,
                r.steals,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"speedup_vs_emulated\": {");
        for (i, (name, s)) in self.speedup_vs_emulated.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {s:.3}"));
        }
        out.push_str("},\n");
        out.push_str("  \"thread_scaling\": {");
        for (i, (name, s)) in self.thread_scaling.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {s:.3}"));
        }
        out.push_str("}\n}\n");
        out
    }
}

struct Workload {
    db: Database,
    query: Vec<u8>,
    thread_counts: Vec<usize>,
    reps: usize,
}

fn workload(smoke: bool) -> Workload {
    if smoke {
        Workload {
            db: uniform_database("host-smoke", 48, 30, 90, workloads::SEED),
            query: make_query(48, workloads::SEED),
            thread_counts: vec![1, 2],
            reps: 2,
        }
    } else {
        Workload {
            db: uniform_database("host-bench", 800, 100, 500, workloads::SEED),
            query: make_query(256, workloads::SEED),
            thread_counts: vec![1, 2, 4],
            reps: 3,
        }
    }
}

/// Measure one (engine, precision, threads) cell: best-of-`reps` seconds.
fn measure(
    engine: &QueryEngine,
    db: &Database,
    threads: usize,
    precision: Precision,
    reps: usize,
) -> (f64, Vec<i32>, AdaptiveStats, u64) {
    let mut best_seconds = f64::INFINITY;
    let mut best: Option<(Vec<i32>, AdaptiveStats, u64)> = None;
    for _ in 0..reps.max(1) {
        let r = search_sequences(engine, db.sequences(), threads, precision);
        if r.seconds < best_seconds {
            best_seconds = r.seconds;
            best = Some((r.scores, r.stats, r.steals));
        }
    }
    let (scores, stats, steals) = best.expect("at least one rep");
    (best_seconds, scores, stats, steals)
}

/// Run the host benchmark. `smoke` shrinks the workload to CI scale
/// (fractions of a second) while exercising every backend and the JSON
/// schema.
pub fn run(smoke: bool) -> HostBenchResult {
    let w = workload(smoke);
    let cells = w.db.total_cells(w.query.len());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows: Vec<HostRow> = Vec::new();
    let mut reference: Option<Vec<i32>> = None;
    let mut push_row = |backend: BackendKind,
                        precision: Precision,
                        threads: usize,
                        reference: &mut Option<Vec<i32>>|
     -> f64 {
        let engine =
            QueryEngine::with_backend(sw_align::SwParams::cudasw_default(), &w.query, backend);
        let (seconds, scores, stats, steals) = measure(&engine, &w.db, threads, precision, w.reps);
        match reference {
            None => *reference = Some(scores),
            Some(expected) => assert_eq!(
                &scores, expected,
                "scores diverged on {backend} {precision:?} x{threads}"
            ),
        }
        sw_simd::record_stats(backend, &stats);
        let gcups = if seconds > 0.0 {
            cells as f64 / seconds / 1.0e9
        } else {
            0.0
        };
        rows.push(HostRow {
            backend: backend.name().to_string(),
            precision: match precision {
                Precision::Adaptive => "adaptive".to_string(),
                Precision::Word => "word".to_string(),
            },
            threads,
            seconds,
            gcups,
            byte_mode: stats.byte_mode,
            word_fallbacks: stats.word_fallbacks,
            steals,
        });
        gcups
    };

    // The emulated baseline: the exact pre-backend host path (portable
    // word-only vectors, one thread).
    let baseline_gcups = push_row(BackendKind::Portable, Precision::Word, 1, &mut reference);

    let backends = BackendKind::available();
    let mut speedup_vs_emulated = Vec::new();
    let mut thread_scaling = Vec::new();
    for &backend in &backends {
        let mut one_thread_gcups = 0.0f64;
        let mut max_thread_gcups = 0.0f64;
        for &threads in &w.thread_counts {
            let gcups = push_row(backend, Precision::Adaptive, threads, &mut reference);
            if threads == 1 {
                one_thread_gcups = gcups;
            }
            if threads == *w.thread_counts.last().expect("non-empty") {
                max_thread_gcups = gcups;
            }
        }
        if baseline_gcups > 0.0 {
            speedup_vs_emulated.push((
                backend.name().to_string(),
                one_thread_gcups / baseline_gcups,
            ));
        }
        if one_thread_gcups > 0.0 {
            thread_scaling.push((
                backend.name().to_string(),
                max_thread_gcups / one_thread_gcups,
            ));
        }
    }

    HostBenchResult {
        rows,
        cells,
        db_size: w.db.len(),
        query_len: w.query.len(),
        host_threads,
        speedup_vs_emulated,
        thread_scaling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_emits_valid_schema() {
        let r = run(true);
        assert!(!r.rows.is_empty());
        // Baseline row first, then one adaptive row per backend × threads.
        assert_eq!(r.rows[0].backend, "portable");
        assert_eq!(r.rows[0].precision, "word");
        let json = r.to_json();
        let doc = obs::json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        let rows = doc
            .get("rows")
            .and_then(|r| r.as_arr())
            .expect("rows array");
        assert_eq!(rows.len(), r.rows.len());
        for row in rows {
            for key in [
                "backend",
                "precision",
                "threads",
                "seconds",
                "gcups",
                "byte_mode",
                "word_fallbacks",
                "steals",
            ] {
                assert!(row.get(key).is_some(), "row missing {key}");
            }
            assert!(row.get("gcups").unwrap().as_f64().unwrap() >= 0.0);
        }
        assert!(doc.get("speedup_vs_emulated").unwrap().is_obj());
        assert!(doc.get("thread_scaling").unwrap().is_obj());
        assert!(doc.get("host_threads").unwrap().as_f64().unwrap() >= 1.0);
    }
}
