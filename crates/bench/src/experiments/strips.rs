//! §IV-A — strip-size parameter exploration.
//!
//! "To determine the optimal values for n_th and t_height, we ran
//! CUDASW++ with our implementation of the intra-task kernel using 64,
//! 128, 192, 256 and 320 threads per block and tile height of 4 and 8. We
//! found that a strip size of 512 was optimal on the Tesla C1060 and 1024
//! was optimal on the Tesla C2050." The paper also observes that "several
//! combinations of n_th and t_height result in essentially the same
//! performance" because the *strip height* is the relevant parameter.

use crate::report::Table;
use crate::workloads;
use cudasw_core::model::predict_intra_improved;
use cudasw_core::ImprovedParams;
use gpu_sim::{DeviceSpec, TimingModel};
use sw_db::catalog::PaperDb;

/// One parameter combination's result.
#[derive(Debug, Clone)]
pub struct StripRow {
    /// Threads per block.
    pub n_th: u32,
    /// Tile height.
    pub t_height: usize,
    /// Strip height in rows.
    pub strip: usize,
    /// GCUPs on each device `(C1060, C2050)`.
    pub gcups: (f64, f64),
}

/// The sweep's data.
#[derive(Debug, Clone)]
pub struct StripsResult {
    /// All combinations.
    pub rows: Vec<StripRow>,
}

impl StripsResult {
    /// Best strip height per device `(C1060, C2050)`.
    pub fn best_strips(&self) -> (usize, usize) {
        let best = |f: fn(&StripRow) -> f64| {
            self.rows
                .iter()
                .max_by(|a, b| f(a).partial_cmp(&f(b)).unwrap())
                .map(|r| r.strip)
                .unwrap_or(0)
        };
        (best(|r| r.gcups.0), best(|r| r.gcups.1))
    }

    /// Render as a table.
    pub fn table(&self) -> Table {
        let (b1060, b2050) = self.best_strips();
        let mut t = Table::new(
            format!(
                "§IV-A strip sweep — best strip: {b1060} (C1060), {b2050} (C2050); paper: 512/1024"
            ),
            &["n_th", "t_height", "strip", "C1060 GCUPs", "C2050 GCUPs"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.n_th.to_string(),
                r.t_height.to_string(),
                r.strip.to_string(),
                format!("{:.2}", r.gcups.0),
                format!("{:.2}", r.gcups.1),
            ]);
        }
        t
    }
}

/// Run the sweep over the paper's parameter grid (analytic, paper-scale
/// Swissprot long tail).
pub fn run(query_len: usize) -> StripsResult {
    let tm = TimingModel::default();
    let lengths = workloads::paper_scale_lengths(PaperDb::Swissprot);
    let split = lengths.partition_point(|&l| l < cudasw_core::DEFAULT_THRESHOLD);
    let long: Vec<usize> = lengths[split..].to_vec();
    let c1060 = DeviceSpec::tesla_c1060();
    let c2050 = DeviceSpec::tesla_c2050();
    let mut rows = Vec::new();
    for &n_th in &[64u32, 128, 192, 256, 320] {
        for &t_height in &[4usize, 8] {
            let params = ImprovedParams {
                threads_per_block: n_th,
                tile_height: t_height,
            };
            let g1 = predict_intra_improved(&c1060, &tm, &long, query_len, &params, false);
            let g2 = predict_intra_improved(&c2050, &tm, &long, query_len, &params, false);
            rows.push(StripRow {
                n_th,
                t_height,
                strip: params.strip_rows(),
                gcups: (g1.gcups(), g2.gcups()),
            });
        }
    }
    StripsResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_paper_grid() {
        let r = run(567);
        assert_eq!(r.rows.len(), 10);
        assert!(r.rows.iter().any(|x| x.strip == 512));
        assert!(r.rows.iter().any(|x| x.strip == 1024));
    }

    #[test]
    fn performance_is_strip_height_driven() {
        // §III-C: "several combinations of n_th and t_height result in
        // essentially the same performance" when the strip height matches.
        let r = run(567);
        let same_strip: Vec<&StripRow> = r.rows.iter().filter(|x| x.strip == 1024).collect();
        assert!(same_strip.len() >= 2);
        let g: Vec<f64> = same_strip.iter().map(|x| x.gcups.0).collect();
        let max = g.iter().cloned().fold(f64::MIN, f64::max);
        let min = g.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (max - min) / max < 0.15,
            "same strip, different GCUPs: {min:.2}..{max:.2}"
        );
    }

    #[test]
    fn variation_across_grid_is_moderate() {
        // No configuration should collapse: the kernel is robust to the
        // launch shape (the paper's optimum is within ~20% of neighbours).
        let r = run(567);
        let g: Vec<f64> = r.rows.iter().map(|x| x.gcups.0).collect();
        let max = g.iter().cloned().fold(f64::MIN, f64::max);
        let min = g.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > max * 0.5, "grid spread: {min:.2}..{max:.2}");
    }
}
