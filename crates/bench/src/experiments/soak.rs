//! `repro soak` — the chaos soak gate: a seeded multi-tenant trace served
//! while rolling faults sweep every lane, including one full device loss
//! with a scheduled revival.
//!
//! The service must hold its SLOs *through* the storm, not merely survive
//! it:
//!
//! * **availability** — ≥ 99% of offered requests answered on time (shed
//!   and deadline-missed answers both count against it);
//! * **correctness** — zero duplicate answers, and every score vector
//!   bit-identical to a fault-free replay of the same trace;
//! * **tail** — p999 latency stays bounded (well under the minimum
//!   deadline slack), so degradation is graceful rather than cliff-edged;
//! * **liveness of the resilience machinery itself** — the run must
//!   actually exercise a lane death, a breaker trip and a successful
//!   revival probe, otherwise the gate is vacuous.
//!
//! The fault schedule (per lane): lane 0 carries light random faults plus
//! a full device loss whose revival succeeds on the second probe; lane 1
//! rides rolling transient/corruption bursts; lane 2 takes one later
//! burst. On top of the GPU storm the **host lanes** (hedged dispatches
//! and CPU fallback, both running on the crash-only SIMD pool) carry
//! their own seeded chaos plan — chunk panics, stalls and admission
//! failures — which the pool must absorb without changing any served
//! score. All seeded — the run is deterministic and the JSON it emits
//! (`BENCH_soak.json`, schema `cudasw.bench.soak/v1`) is reproducible
//! byte-for-byte, which is what lets CI regression-gate on availability.

use crate::report::Table;
use crate::workloads;
use cudasw_core::{CudaSwConfig, ImprovedParams, RecoveryPolicy};
use gpu_sim::{DeviceSpec, FaultPlan, FaultRates, FaultSite};
use sw_db::catalog::PaperDb;
use sw_serve::{BatchPolicy, HealthPolicy, SearchService, ServeConfig, ServeReport, TraceConfig};

/// JSON schema tag of `BENCH_soak.json`.
pub const SCHEMA: &str = "cudasw.bench.soak/v1";

/// Everything the soak run measured and asserted.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// Requests offered by the trace.
    pub offered: usize,
    /// Requests answered (on time or late).
    pub served: usize,
    /// Requests shed.
    pub shed: usize,
    /// Requests answered within their deadline.
    pub on_time: usize,
    /// `on_time / offered` — the availability SLO.
    pub availability: f64,
    /// Answered requests whose wave was partly served off-device.
    pub degraded_responses: usize,
    /// Request ids answered more than once (must be zero).
    pub duplicate_answers: usize,
    /// Latency percentiles over answered requests, simulated seconds.
    pub p50_seconds: f64,
    pub p99_seconds: f64,
    pub p999_seconds: f64,
    /// Simulated makespan.
    pub makespan_seconds: f64,
    /// Waves dispatched.
    pub waves: u64,
    /// Lane deaths observed by the executor.
    pub lane_deaths: u64,
    /// Successful device revivals (quarantine → probe → re-admission).
    pub lane_revivals: u64,
    /// Breaker `* → Open` transitions.
    pub breaker_opens: u64,
    /// Waves routed around a quarantined lane.
    pub breaker_skips: u64,
    /// Speculative host hedges issued / won.
    pub hedges_issued: u64,
    pub hedge_host_wins: u64,
    /// Retries and staging retries denied by the deadline budget.
    pub budget_denied_retries: u64,
    pub budget_denied_stagings: u64,
    /// Owed-shard redispatches and host-fallback sequences.
    pub redispatches: u64,
    pub cpu_fallback_seqs: u64,
    /// Faults the simulator injected across all lanes.
    pub injected_faults: u64,
    /// Faults the crash-only host pool injected into hedges/fallbacks.
    pub host_injected_faults: u64,
    /// Host chunks quarantined to the scalar oracle after a panic.
    pub host_quarantines: u64,
    /// True when every answer matched the fault-free replay bit-for-bit.
    pub scores_match_reference: bool,
}

impl SoakResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "soak: rolling faults across all lanes".to_string(),
            &["metric", "value"],
        );
        for (name, value) in [
            ("offered requests", self.offered.to_string()),
            ("served", self.served.to_string()),
            ("shed", self.shed.to_string()),
            ("on time", self.on_time.to_string()),
            ("availability", format!("{:.4}", self.availability)),
            ("degraded responses", self.degraded_responses.to_string()),
            ("p50 latency (s)", format!("{:.5}", self.p50_seconds)),
            ("p99 latency (s)", format!("{:.5}", self.p99_seconds)),
            ("p999 latency (s)", format!("{:.5}", self.p999_seconds)),
            ("waves", self.waves.to_string()),
            ("injected faults", self.injected_faults.to_string()),
            (
                "host faults injected/quarantined",
                format!("{}/{}", self.host_injected_faults, self.host_quarantines),
            ),
            ("lane deaths", self.lane_deaths.to_string()),
            ("lane revivals", self.lane_revivals.to_string()),
            ("breaker opens", self.breaker_opens.to_string()),
            ("breaker skips", self.breaker_skips.to_string()),
            (
                "hedges issued/won",
                format!("{}/{}", self.hedges_issued, self.hedge_host_wins),
            ),
            (
                "budget-denied retries",
                format!(
                    "{}+{} stagings",
                    self.budget_denied_retries, self.budget_denied_stagings
                ),
            ),
            ("redispatches", self.redispatches.to_string()),
            ("cpu fallback seqs", self.cpu_fallback_seqs.to_string()),
            (
                "scores match fault-free replay",
                self.scores_match_reference.to_string(),
            ),
        ] {
            t.push_row(vec![name.to_string(), value]);
        }
        t
    }

    /// Serialize as the `cudasw.bench.soak/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        for (key, value) in [
            ("offered", self.offered.to_string()),
            ("served", self.served.to_string()),
            ("shed", self.shed.to_string()),
            ("on_time", self.on_time.to_string()),
            ("availability", format!("{:.6}", self.availability)),
            ("degraded_responses", self.degraded_responses.to_string()),
            ("duplicate_answers", self.duplicate_answers.to_string()),
            ("p50_seconds", format!("{:.6}", self.p50_seconds)),
            ("p99_seconds", format!("{:.6}", self.p99_seconds)),
            ("p999_seconds", format!("{:.6}", self.p999_seconds)),
            ("makespan_seconds", format!("{:.6}", self.makespan_seconds)),
            ("waves", self.waves.to_string()),
            ("lane_deaths", self.lane_deaths.to_string()),
            ("lane_revivals", self.lane_revivals.to_string()),
            ("breaker_opens", self.breaker_opens.to_string()),
            ("breaker_skips", self.breaker_skips.to_string()),
            ("hedges_issued", self.hedges_issued.to_string()),
            ("hedge_host_wins", self.hedge_host_wins.to_string()),
            (
                "budget_denied_retries",
                self.budget_denied_retries.to_string(),
            ),
            (
                "budget_denied_stagings",
                self.budget_denied_stagings.to_string(),
            ),
            ("redispatches", self.redispatches.to_string()),
            ("cpu_fallback_seqs", self.cpu_fallback_seqs.to_string()),
            ("injected_faults", self.injected_faults.to_string()),
            (
                "host_injected_faults",
                self.host_injected_faults.to_string(),
            ),
            ("host_quarantines", self.host_quarantines.to_string()),
            (
                "scores_match_reference",
                self.scores_match_reference.to_string(),
            ),
        ] {
            out.push_str(&format!("  \"{key}\": {value},\n"));
        }
        // Trailing comma cleanup: replace the final ",\n" with "\n}".
        out.truncate(out.len() - 2);
        out.push_str("\n}\n");
        out
    }
}

/// Search configuration: small inter-task shapes so the reduced database
/// still spans several groups per shard (same as the serve experiment).
fn search_config() -> CudaSwConfig {
    CudaSwConfig {
        threshold: 400,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        ..CudaSwConfig::improved()
    }
}

/// A transient/corruption storm for the burst windows.
fn storm() -> FaultRates {
    FaultRates {
        transient: 0.25,
        launch_hang: 0.0,
        corruption: 0.05,
    }
}

/// The per-lane fault schedules of the soak scenario.
fn fault_plans(seed: u64) -> Vec<FaultPlan> {
    let light = FaultRates {
        transient: 0.01,
        launch_hang: 0.0,
        corruption: 0.002,
    };
    vec![
        // Lane 0: light random noise, then a full device loss at its 20th
        // launch; the first revival probe fails, the second succeeds.
        FaultPlan::random(seed, light).with_device_loss_recovery(FaultSite::Launch, 20, 1),
        // Lane 1: rolling bursts marching along its op stream.
        FaultPlan::none()
            .with_fault_burst(50, 90, storm(), seed ^ 0xB1)
            .with_fault_burst(200, 240, storm(), seed ^ 0xB2)
            .with_fault_burst(500, 540, storm(), seed ^ 0xB3),
        // Lane 2: one later burst, so at least one lane is healthy during
        // every storm.
        FaultPlan::none().with_fault_burst(120, 160, storm(), seed ^ 0xB4),
    ]
}

/// The host-lane chaos plan: chunk panics, stalls and admission failures
/// at storm rates inside every hedge and CPU fallback. Stalls are kept
/// short — the serve host pool is single-threaded (discrete-event
/// determinism), so a stalled chunk is simply absorbed, not re-dispatched,
/// and the sleep is real wall-clock time.
fn host_storm(seed: u64) -> sw_simd::HostFaultPlan {
    sw_simd::HostFaultPlan::random(seed ^ 0x4057_FA17, sw_simd::HostFaultRates::chaos())
        .with_stall_ms(2)
}

fn soak_config() -> ServeConfig {
    ServeConfig {
        devices: 3,
        search: search_config(),
        recovery: RecoveryPolicy {
            watchdog_cycles: Some(50_000_000),
            ..RecoveryPolicy::default()
        },
        health: HealthPolicy {
            // Short cooldown so quarantine, probing and re-admission all
            // fit inside the simulated horizon.
            cooldown_seconds: 5.0e-3,
            ..HealthPolicy::default()
        },
        batch: BatchPolicy {
            urgent_slack_seconds: 5.0e-2,
            ..BatchPolicy::default()
        },
        shed_expired: true,
        ..ServeConfig::default()
    }
}

fn trace_config(requests: usize) -> TraceConfig {
    TraceConfig {
        requests,
        tenants: vec![
            "tenant-a".to_string(),
            "tenant-b".to_string(),
            "tenant-c".to_string(),
        ],
        mean_interarrival_seconds: 2.0e-3,
        deadline_slack_seconds: (1.0, 2.0),
        ..TraceConfig::small(requests, workloads::SEED)
    }
}

/// Ids answered more than once.
fn duplicates(report: &ServeReport) -> usize {
    let mut ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.windows(2).filter(|w| w[0] == w[1]).count()
}

/// Run the soak. `smoke` shrinks the trace to CI scale while still
/// exercising the device loss, every burst window on lane 1's op stream
/// is only reached in the full run.
pub fn run(spec: &DeviceSpec, smoke: bool) -> SoakResult {
    let requests = if smoke { 30 } else { 120 };
    let db = workloads::functional_db(PaperDb::Swissprot, 120);
    let mut cfg = soak_config();
    cfg.host_faults = host_storm(workloads::SEED);
    let trace = trace_config(requests).generate();
    let plans = fault_plans(workloads::SEED);

    let before = obs::snapshot_metrics();
    let mut service = SearchService::new(spec, &cfg, &db, &plans);
    let report = service
        .run_trace(&trace)
        .expect("the soak must terminate with an answer for every request");
    let delta = obs::snapshot_metrics().diff(&before);

    // Fault-free replay of the identical trace (GPU *and* host lanes
    // clean): the correctness oracle.
    let mut ref_cfg = cfg.clone();
    ref_cfg.host_faults = sw_simd::HostFaultPlan::none();
    let mut reference_service = SearchService::new(spec, &ref_cfg, &db, &[]);
    let reference = reference_service
        .run_trace(&trace)
        .expect("fault-free replay");
    let scores_match_reference = report.responses.iter().all(|resp| {
        reference
            .responses
            .iter()
            .find(|r| r.id == resp.id)
            .is_some_and(|r| r.scores == resp.scores)
    }) && report.responses.len() == reference.responses.len();

    let on_time = report
        .responses
        .iter()
        .filter(|r| !r.deadline_missed)
        .count();
    let offered = trace.len();
    let counter = |name: &str| delta.counter_sum(name, &[]) as u64;
    let r = SoakResult {
        offered,
        served: report.responses.len(),
        shed: report.sheds.len(),
        on_time,
        availability: on_time as f64 / offered as f64,
        degraded_responses: report.responses.iter().filter(|resp| resp.degraded).count(),
        duplicate_answers: duplicates(&report),
        p50_seconds: report.latency_percentile(50.0),
        p99_seconds: report.latency_percentile(99.0),
        p999_seconds: report.latency_percentile(99.9),
        makespan_seconds: report.makespan_seconds,
        waves: report.waves,
        lane_deaths: counter("cudasw.serve.lane_deaths"),
        lane_revivals: counter("cudasw.serve.lane_revivals"),
        breaker_opens: delta
            .counter_sum("cudasw.serve.health.breaker_transitions", &[("to", "open")])
            as u64,
        breaker_skips: counter("cudasw.serve.breaker_skips"),
        hedges_issued: counter("cudasw.serve.hedge.issued"),
        hedge_host_wins: delta.counter_sum("cudasw.serve.hedge.wins", &[("winner", "host")]) as u64,
        budget_denied_retries: report.recovery.budget_denied_retries,
        budget_denied_stagings: counter("cudasw.serve.budget_denied_stagings"),
        redispatches: report.recovery.shard_redispatches,
        cpu_fallback_seqs: report.recovery.cpu_fallback_seqs,
        injected_faults: counter("cudasw.gpu_sim.fault.injected"),
        host_injected_faults: counter("cudasw.simd.pool.faults_injected"),
        host_quarantines: counter("cudasw.simd.pool.quarantines"),
        scores_match_reference,
    };

    // The gate. Each assertion names the SLO it protects.
    assert!(
        r.availability >= 0.99,
        "availability SLO violated: {:.4} < 0.99",
        r.availability
    );
    assert_eq!(r.duplicate_answers, 0, "duplicate answers");
    assert!(r.scores_match_reference, "scores diverged from replay");
    assert!(
        r.p999_seconds < 1.0,
        "p999 {:.4}s reached the minimum deadline slack",
        r.p999_seconds
    );
    assert!(r.injected_faults > 0, "the storm never landed");
    assert!(
        r.host_injected_faults > 0,
        "the host-lane storm never landed"
    );
    assert!(r.lane_deaths >= 1, "the device loss never happened");
    assert!(r.lane_revivals >= 1, "the lost device never revived");
    assert!(r.breaker_opens >= 1, "no breaker ever opened");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soaks_through_the_storm_and_emits_valid_schema() {
        let (r, _run) = obs::capture(|| run(&DeviceSpec::tesla_c1060(), true));
        assert!(r.availability >= 0.99);
        assert!(r.scores_match_reference);
        assert_eq!(r.duplicate_answers, 0);
        assert!(r.lane_deaths >= 1 && r.lane_revivals >= 1 && r.breaker_opens >= 1);
        // The host-lane storm landed and was absorbed by the crash-only
        // pool without changing a single served score.
        assert!(r.host_injected_faults > 0);

        let json = r.to_json();
        let doc = obs::json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        for key in [
            "offered",
            "served",
            "shed",
            "on_time",
            "availability",
            "duplicate_answers",
            "p50_seconds",
            "p99_seconds",
            "p999_seconds",
            "waves",
            "lane_deaths",
            "lane_revivals",
            "breaker_opens",
            "breaker_skips",
            "hedges_issued",
            "hedge_host_wins",
            "budget_denied_retries",
            "budget_denied_stagings",
            "redispatches",
            "cpu_fallback_seqs",
            "injected_faults",
            "host_injected_faults",
            "host_quarantines",
            "scores_match_reference",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert!(doc.get("availability").unwrap().as_f64().unwrap() >= 0.99);
    }
}
