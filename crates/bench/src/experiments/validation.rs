//! Model validation — functional simulation vs the analytic twin.
//!
//! The sweep experiments run the analytic models at paper scale; this
//! experiment quantifies how well those models track the functional
//! simulator on workloads small enough to execute cell by cell.

use crate::report::Table;
use crate::workloads;
use cudasw_core::model::{predict_search, PredictedIntra};
use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, IntraKernelChoice, VariantConfig};
use gpu_sim::{DeviceSpec, TimingModel};
use sw_db::catalog::PaperDb;

/// One validation row.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Configuration label.
    pub config: String,
    /// Functional kernel seconds.
    pub functional_s: f64,
    /// Predicted kernel seconds.
    pub predicted_s: f64,
    /// Relative error of the prediction.
    pub rel_error: f64,
    /// Functional vs predicted intra-task global transactions.
    pub transactions: (u64, u64),
}

/// The validation data.
#[derive(Debug, Clone)]
pub struct ValidationResult {
    /// All rows.
    pub rows: Vec<ValidationRow>,
}

impl ValidationResult {
    /// Worst relative time error.
    pub fn worst_error(&self) -> f64 {
        self.rows.iter().map(|r| r.rel_error).fold(0.0, f64::max)
    }

    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Model validation — analytic vs functional (worst time error {:.0}%)",
                self.worst_error() * 100.0
            ),
            &[
                "config",
                "functional s",
                "predicted s",
                "rel err",
                "intra transactions (f/p)",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.config.clone(),
                format!("{:.5}", r.functional_s),
                format!("{:.5}", r.predicted_s),
                format!("{:.0}%", r.rel_error * 100.0),
                format!("{}/{}", r.transactions.0, r.transactions.1),
            ]);
        }
        t
    }
}

/// Run the validation on a scaled Swissprot database.
pub fn run(db_size: usize, query_len: usize) -> ValidationResult {
    let db = workloads::functional_db(PaperDb::Swissprot, db_size);
    let query = workloads::query(query_len);
    let tm = TimingModel::default();
    let mut rows = Vec::new();
    for (label, spec, intra_choice, intra_pred) in [
        (
            "C1060/original",
            DeviceSpec::tesla_c1060(),
            IntraKernelChoice::Original,
            PredictedIntra::Original,
        ),
        (
            "C1060/improved",
            DeviceSpec::tesla_c1060(),
            IntraKernelChoice::Improved(VariantConfig::improved()),
            PredictedIntra::Improved,
        ),
        (
            "C2050/original",
            DeviceSpec::tesla_c2050(),
            IntraKernelChoice::Original,
            PredictedIntra::Original,
        ),
        (
            "C2050/improved",
            DeviceSpec::tesla_c2050(),
            IntraKernelChoice::Improved(VariantConfig::improved()),
            PredictedIntra::Improved,
        ),
    ] {
        let mut cfg = CudaSwConfig::improved();
        cfg.intra = intra_choice;
        let mut driver = CudaSwDriver::new(spec.clone(), cfg);
        let functional = driver.search(&query, &db).expect("search");
        let predicted = predict_search(
            &spec,
            &tm,
            &db,
            query.len(),
            3072,
            intra_pred,
            &ImprovedParams::default(),
            false,
        );
        let f = functional.kernel_seconds();
        let p = predicted.kernel_seconds();
        rows.push(ValidationRow {
            config: label.to_string(),
            functional_s: f,
            predicted_s: p,
            rel_error: ((p - f) / f).abs(),
            transactions: (
                functional.intra.global_transactions,
                predicted.intra.global_transactions,
            ),
        });
    }
    ValidationResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_functional_within_tolerance() {
        let r = run(800, 144);
        assert_eq!(r.rows.len(), 4);
        assert!(
            r.worst_error() < 0.6,
            "worst model error {:.0}%",
            r.worst_error() * 100.0
        );
    }

    #[test]
    fn model_preserves_the_kernel_ordering() {
        // Whatever the absolute error, the prediction must agree with the
        // functional run about which kernel is faster.
        let r = run(600, 144);
        let f_orig = r.rows[0].functional_s;
        let f_imp = r.rows[1].functional_s;
        let p_orig = r.rows[0].predicted_s;
        let p_imp = r.rows[1].predicted_s;
        assert_eq!(f_imp < f_orig, p_imp < p_orig);
    }
}
