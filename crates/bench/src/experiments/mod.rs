//! One module per paper table/figure (see DESIGN.md §4 for the index).

pub mod ablation;
pub mod chaos;
pub mod device_opt;
pub mod device_trajectory;
pub mod extensions;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod host;
pub mod host_chaos;
pub mod host_trajectory;
pub mod integrity;
pub mod multigpu;
pub mod retune;
pub mod serve;
pub mod serve_rt;
pub mod serve_trajectory;
pub mod soak;
pub mod strips;
pub mod table1;
pub mod table2;
pub mod validation;

use cudasw_core::model::{predict_search_lengths, PredictedIntra, PredictedSearch};
use cudasw_core::ImprovedParams;
use gpu_sim::{DeviceSpec, TimingModel};

/// The four configurations of Figures 5/6/7: (label, device, kernel).
pub fn four_configs() -> Vec<(String, DeviceSpec, PredictedIntra)> {
    vec![
        (
            "Imp. Intratask (Tesla C2050)".to_string(),
            DeviceSpec::tesla_c2050(),
            PredictedIntra::Improved,
        ),
        (
            "Orig. Intratask (Tesla C2050)".to_string(),
            DeviceSpec::tesla_c2050(),
            PredictedIntra::Original,
        ),
        (
            "Imp. Intratask (Tesla C1060)".to_string(),
            DeviceSpec::tesla_c1060(),
            PredictedIntra::Improved,
        ),
        (
            "Orig. Intratask (Tesla C1060)".to_string(),
            DeviceSpec::tesla_c1060(),
            PredictedIntra::Original,
        ),
    ]
}

/// Predict one whole search at paper scale (helper shared by the sweeps).
pub fn predict(
    spec: &DeviceSpec,
    lengths: &[usize],
    query_len: usize,
    threshold: usize,
    intra: PredictedIntra,
    caches_off: bool,
) -> PredictedSearch {
    predict_search_lengths(
        spec,
        &TimingModel::default(),
        lengths,
        query_len,
        threshold,
        intra,
        &ImprovedParams::default(),
        caches_off,
    )
}

/// Fraction of `lengths` (sorted) at or above `threshold`, in percent.
pub fn pct_over(lengths: &[usize], threshold: usize) -> f64 {
    if lengths.is_empty() {
        return 0.0;
    }
    let split = lengths.partition_point(|&l| l < threshold);
    (lengths.len() - split) as f64 / lengths.len() as f64 * 100.0
}

/// The threshold sweep of Figures 3/5/6: the default 3072 decreased by 100
/// per step, 20 runs ("decreasing the threshold by 100 for each of the 20
/// runs").
pub fn paper_threshold_sweep() -> Vec<usize> {
    (0..20).map(|i| 3072 - i * 100).collect()
}
