//! The device-optimization perf trajectory (`BENCH_device.json`, schema
//! `cudasw.bench.device/v1`).
//!
//! Like `BENCH_host.json` (see [`super::host_trajectory`]) the document
//! is **append-only**: one entry per measured run of the §VII
//! optimization matrix, keyed by `(git rev, workload config, device)`,
//! so the committed file *is* the device-perf history of the repo.
//!
//! Two gate families read the trajectory in `verify.sh`:
//!
//! * **invariant gates** ([`invariant_gates`]) — properties every entry
//!   must satisfy on its own, fresh or committed: identical score CRCs
//!   and cell counts across the matrix, the counted per-optimization
//!   claims (staging cuts global transactions ≥
//!   [`STAGING_MIN_TRANSACTION_CUT`]×, fusion hides stalls the baseline
//!   exposes, streaming hides copy time without changing bytes, balance
//!   never worsens block skew), and the all-on row beating the baseline.
//! * **regression comparator** ([`regressions`]) — the fresh entry
//!   against the most recent committed entry with the same config and
//!   device, row by row: GCUPs must not drop beyond [`GCUPS_TOLERANCE`]
//!   and global transactions must not grow beyond
//!   [`TRANSACTION_TOLERANCE`].

use super::device_opt::{DeviceOptResult, DeviceOptRow};
use obs::json::{escape, parse, Json};

/// JSON schema tag of the trajectory document.
pub const SCHEMA: &str = "cudasw.bench.device/v1";

/// Allowed fractional GCUPs drop vs the committed baseline row. The
/// simulated clock is deterministic, so this only has to absorb model
/// retunes, not wall-clock noise.
pub const GCUPS_TOLERANCE: f64 = 0.25;

/// Allowed fractional growth of a row's inter-task global transactions
/// vs the committed baseline row.
pub const TRANSACTION_TOLERANCE: f64 = 0.05;

/// Minimum factor by which boundary staging must cut inter-task global
/// transactions (the §VII claim: strip-boundary traffic moves to shared
/// memory, leaving only per-strip edge words).
pub const STAGING_MIN_TRANSACTION_CUT: f64 = 4.0;

/// Minimum factor by which SaLoBa balance must cut intra-task block
/// imbalance — applied only when the baseline skew is at least
/// [`BALANCE_GATE_MIN_SKEW`] (a near-uniform workload has nothing to
/// cut; the non-regression half of the gate always applies).
pub const BALANCE_MIN_IMBALANCE_CUT: f64 = 1.5;

/// Baseline max/min block-cycle skew below which the balance *cut* gate
/// does not apply.
pub const BALANCE_GATE_MIN_SKEW: f64 = 2.0;

/// Relative tolerance on the streamed-copy accounting identity
/// `exposed + hidden == synchronous` (float summation only).
pub const ACCOUNTING_TOLERANCE: f64 = 1e-9;

/// One measured run in the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Git revision (short hash) the run was measured at.
    pub rev: String,
    /// Stable workload key (`devopt-<mode>-<db>x<query>`).
    pub config: String,
    /// Device the matrix ran on.
    pub device: String,
    /// Database sequences.
    pub db_size: usize,
    /// Query length.
    pub query_len: usize,
    /// DP cells of one database pass.
    pub cells: u64,
    /// One row per measured optimization configuration.
    pub rows: Vec<DeviceOptRow>,
}

impl TrajectoryEntry {
    /// Wrap a fresh measurement for the trajectory.
    pub fn from_result(r: &DeviceOptResult, rev: &str) -> Self {
        Self {
            rev: rev.to_string(),
            config: r.config.clone(),
            device: r.device.clone(),
            db_size: r.db_size,
            query_len: r.query_len,
            cells: r.cells,
            rows: r.rows.clone(),
        }
    }

    /// The key that decides replace-vs-append on merge.
    fn key(&self) -> (String, String, String) {
        (self.rev.clone(), self.config.clone(), self.device.clone())
    }

    fn row(&self, label: &str) -> Option<&DeviceOptRow> {
        self.rows.iter().find(|r| r.label == label)
    }
}

/// The whole append-only document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// Entries in file order (oldest first).
    pub entries: Vec<TrajectoryEntry>,
}

impl Trajectory {
    /// Append a run, replacing a prior entry with the identical
    /// `(rev, config, device)` key, never touching any other entry.
    pub fn append(&mut self, entry: TrajectoryEntry) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.key() == entry.key()) {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Most recent committed entry comparable to `new` (same workload
    /// config and device).
    pub fn baseline_for<'a>(&'a self, new: &TrajectoryEntry) -> Option<&'a TrajectoryEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.config == new.config && e.device == new.device)
    }

    /// Serialize the document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&entry_to_json(e, "    "));
            out.push_str(if i + 1 == self.entries.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a trajectory file.
    pub fn parse(text: &str) -> Result<Trajectory, String> {
        let doc = parse(text)?;
        match doc.get("schema").and_then(|s| s.as_str()) {
            Some(s) if s == SCHEMA => {
                let entries = doc
                    .get("entries")
                    .and_then(|e| e.as_arr())
                    .ok_or("document without entries array")?;
                Ok(Trajectory {
                    entries: entries
                        .iter()
                        .map(entry_from_json)
                        .collect::<Result<_, _>>()?,
                })
            }
            Some(other) => Err(format!("unknown device bench schema {other:?}")),
            None => Err("document has no schema field".to_string()),
        }
    }
}

fn entry_to_json(e: &TrajectoryEntry, indent: &str) -> String {
    let mut out = format!("{indent}{{\n");
    out.push_str(&format!("{indent}  \"rev\": \"{}\",\n", escape(&e.rev)));
    out.push_str(&format!(
        "{indent}  \"config\": \"{}\",\n",
        escape(&e.config)
    ));
    out.push_str(&format!(
        "{indent}  \"device\": \"{}\",\n",
        escape(&e.device)
    ));
    out.push_str(&format!("{indent}  \"db_size\": {},\n", e.db_size));
    out.push_str(&format!("{indent}  \"query_len\": {},\n", e.query_len));
    out.push_str(&format!("{indent}  \"cells\": {},\n", e.cells));
    out.push_str(&format!("{indent}  \"rows\": [\n"));
    for (i, r) in e.rows.iter().enumerate() {
        out.push_str(&format!(
            "{indent}    {{\"config\": \"{}\", \"gcups\": {:.4}, \
             \"kernel_seconds\": {:.9}, \"cells\": {}, \
             \"inter_global_transactions\": {}, \"hidden_latency_cycles\": {}, \
             \"h2d_seconds\": {:.9}, \"h2d_hidden_seconds\": {:.9}, \
             \"h2d_bytes\": {}, \"intra_imbalance\": {:.4}, \
             \"score_crc\": {}}}{}\n",
            escape(&r.label),
            r.gcups,
            r.kernel_seconds,
            r.cells,
            r.inter_global_transactions,
            r.hidden_latency_cycles,
            r.h2d_seconds,
            r.h2d_hidden_seconds,
            r.h2d_bytes,
            r.intra_imbalance,
            r.score_crc,
            if i + 1 == e.rows.len() { "" } else { "," },
        ));
    }
    out.push_str(&format!("{indent}  ]\n"));
    out.push_str(&format!("{indent}}}"));
    out
}

fn num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|n| n.as_f64())
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn text(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|s| s.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn row_from_json(v: &Json) -> Result<DeviceOptRow, String> {
    Ok(DeviceOptRow {
        label: text(v, "config")?,
        gcups: num(v, "gcups")?,
        kernel_seconds: num(v, "kernel_seconds")?,
        cells: num(v, "cells")? as u64,
        inter_global_transactions: num(v, "inter_global_transactions")? as u64,
        hidden_latency_cycles: num(v, "hidden_latency_cycles")? as u64,
        h2d_seconds: num(v, "h2d_seconds")?,
        h2d_hidden_seconds: num(v, "h2d_hidden_seconds")?,
        h2d_bytes: num(v, "h2d_bytes")? as u64,
        intra_imbalance: num(v, "intra_imbalance")?,
        score_crc: num(v, "score_crc")? as u32,
    })
}

fn entry_from_json(v: &Json) -> Result<TrajectoryEntry, String> {
    let rows = v
        .get("rows")
        .and_then(|r| r.as_arr())
        .ok_or("entry without rows array")?;
    Ok(TrajectoryEntry {
        rev: text(v, "rev")?,
        config: text(v, "config")?,
        device: text(v, "device")?,
        db_size: num(v, "db_size")? as usize,
        query_len: num(v, "query_len")? as usize,
        cells: num(v, "cells")? as u64,
        rows: rows.iter().map(row_from_json).collect::<Result<_, _>>()?,
    })
}

/// The standalone counted gates every entry must satisfy. Returns
/// human-readable failures (empty = pass).
pub fn invariant_gates(e: &TrajectoryEntry) -> Vec<String> {
    let mut failures = Vec::new();
    let required = [
        "none", "staging", "shared", "fusion", "stream", "balance", "all",
    ];
    for label in required {
        if e.row(label).is_none() {
            failures.push(format!("matrix row {label:?} missing"));
        }
    }
    if !failures.is_empty() {
        return failures;
    }
    let row = |label: &str| e.row(label).expect("presence checked above");
    let none = row("none");

    // The optimizations are pure memory/overlap moves: same answers,
    // same DP work, everywhere.
    for r in &e.rows {
        if r.score_crc != none.score_crc {
            failures.push(format!(
                "row {}: score CRC {:08x} differs from baseline {:08x}",
                r.label, r.score_crc, none.score_crc
            ));
        }
        if r.cells != none.cells {
            failures.push(format!(
                "row {}: {} cells vs baseline {}",
                r.label, r.cells, none.cells
            ));
        }
    }

    // Shared-memory staging: the strip-boundary traffic leaves global
    // memory.
    let staging = row("staging");
    if (none.inter_global_transactions as f64)
        < STAGING_MIN_TRANSACTION_CUT * staging.inter_global_transactions as f64
    {
        failures.push(format!(
            "staging cut {} -> {} global transactions, below the \
             {STAGING_MIN_TRANSACTION_CUT}x gate",
            none.inter_global_transactions, staging.inter_global_transactions
        ));
    }
    let shared = row("shared");
    if shared.inter_global_transactions >= none.inter_global_transactions {
        failures.push(format!(
            "shared-only kernel did not reduce global transactions: {} vs {}",
            shared.inter_global_transactions, none.inter_global_transactions
        ));
    }
    let all = row("all");
    if all.inter_global_transactions > staging.inter_global_transactions {
        failures.push(format!(
            "all-on row has more global transactions ({}) than staging alone ({})",
            all.inter_global_transactions, staging.inter_global_transactions
        ));
    }

    // Cross-strip fusion: the baseline exposes every inter-strip stall,
    // the fused kernel hides a counted number of them.
    if none.hidden_latency_cycles != 0 {
        failures.push(format!(
            "unfused baseline claims {} hidden cycles",
            none.hidden_latency_cycles
        ));
    }
    let fusion = row("fusion");
    if fusion.hidden_latency_cycles == 0 {
        failures.push("fusion hid zero stall cycles".to_string());
    }

    // Streamed H2D: same bytes, part of the copy time hidden, and the
    // accounting identity holds.
    let stream = row("stream");
    if stream.h2d_bytes != none.h2d_bytes {
        failures.push(format!(
            "streaming changed H2D bytes: {} vs {}",
            stream.h2d_bytes, none.h2d_bytes
        ));
    }
    if stream.h2d_hidden_seconds <= 0.0 {
        failures.push("streaming hid no copy time".to_string());
    }
    if stream.h2d_seconds >= none.h2d_seconds {
        failures.push(format!(
            "streaming did not shrink exposed H2D time: {} vs {}",
            stream.h2d_seconds, none.h2d_seconds
        ));
    }
    let identity = (stream.h2d_seconds + stream.h2d_hidden_seconds - none.h2d_seconds).abs();
    if identity > ACCOUNTING_TOLERANCE * none.h2d_seconds.max(1e-12) {
        failures.push(format!(
            "streamed accounting identity broken: exposed {} + hidden {} != sync {}",
            stream.h2d_seconds, stream.h2d_hidden_seconds, none.h2d_seconds
        ));
    }

    // SaLoBa balance: never worse, and a real cut when the baseline is
    // actually skewed.
    let balance = row("balance");
    if balance.intra_imbalance > none.intra_imbalance {
        failures.push(format!(
            "balance worsened block imbalance: {:.2} vs {:.2}",
            balance.intra_imbalance, none.intra_imbalance
        ));
    }
    if none.intra_imbalance >= BALANCE_GATE_MIN_SKEW
        && none.intra_imbalance < BALANCE_MIN_IMBALANCE_CUT * balance.intra_imbalance
    {
        failures.push(format!(
            "balance cut {:.2} -> {:.2}, below the {BALANCE_MIN_IMBALANCE_CUT}x gate",
            none.intra_imbalance, balance.intra_imbalance
        ));
    }

    // All optimizations together must not be slower than none of them.
    if all.kernel_seconds > none.kernel_seconds {
        failures.push(format!(
            "all-on row is slower than the baseline: {:.6}s vs {:.6}s",
            all.kernel_seconds, none.kernel_seconds
        ));
    }
    failures
}

/// Compare a fresh entry against its committed baseline, row by row
/// (matched on configuration label): GCUPs must not drop beyond
/// [`GCUPS_TOLERANCE`] and inter-task global transactions must not grow
/// beyond [`TRANSACTION_TOLERANCE`]. Returns failures (empty = pass).
pub fn regressions(baseline: &TrajectoryEntry, new: &TrajectoryEntry) -> Vec<String> {
    let mut failures = Vec::new();
    for old in &baseline.rows {
        let Some(fresh) = new.rows.iter().find(|r| r.label == old.label) else {
            continue;
        };
        if fresh.gcups < old.gcups * (1.0 - GCUPS_TOLERANCE) {
            failures.push(format!(
                "{}: {:.3} GCUPs vs committed {:.3} (allowed floor {:.3})",
                fresh.label,
                fresh.gcups,
                old.gcups,
                old.gcups * (1.0 - GCUPS_TOLERANCE),
            ));
        }
        let ceiling = old.inter_global_transactions as f64 * (1.0 + TRANSACTION_TOLERANCE);
        if fresh.inter_global_transactions as f64 > ceiling {
            failures.push(format!(
                "{}: {} global transactions vs committed {} (allowed ceiling {:.0})",
                fresh.label,
                fresh.inter_global_transactions,
                old.inter_global_transactions,
                ceiling,
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(label: &str) -> DeviceOptRow {
        let (glob, hidden, h2d, h2d_hidden, imb) = match label {
            "none" => (40_000, 0, 0.004, 0.0, 3.2),
            "staging" => (5_000, 0, 0.004, 0.0, 3.2),
            "shared" => (31_000, 0, 0.004, 0.0, 3.2),
            "fusion" => (40_000, 9_000, 0.004, 0.0, 3.2),
            "stream" => (40_000, 0, 0.0025, 0.0015, 3.2),
            "balance" => (40_000, 0, 0.004, 0.0, 1.2),
            "all" => (5_000, 9_000, 0.0025, 0.0015, 1.2),
            other => panic!("unknown sample row {other}"),
        };
        DeviceOptRow {
            label: label.to_string(),
            gcups: if label == "all" { 3.4 } else { 3.0 },
            kernel_seconds: if label == "all" { 0.0042 } else { 0.005 },
            cells: 14_900_000,
            inter_global_transactions: glob,
            hidden_latency_cycles: hidden,
            h2d_seconds: h2d,
            h2d_hidden_seconds: h2d_hidden,
            h2d_bytes: 65_536,
            intra_imbalance: imb,
            score_crc: 0xdeadbeef,
        }
    }

    fn sample_entry(rev: &str) -> TrajectoryEntry {
        TrajectoryEntry {
            rev: rev.to_string(),
            config: "devopt-full-208x300".to_string(),
            device: "tesla-c2050/sm4x1".to_string(),
            db_size: 208,
            query_len: 300,
            cells: 14_900_000,
            rows: [
                "none", "staging", "shared", "fusion", "stream", "balance", "all",
            ]
            .iter()
            .map(|l| sample_row(l))
            .collect(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let mut t = Trajectory::default();
        t.append(sample_entry("abc1234"));
        t.append(sample_entry("def5678"));
        let parsed = Trajectory::parse(&t.to_json()).expect("valid document");
        assert_eq!(parsed.entries.len(), 2);
        for (a, b) in t.entries.iter().zip(&parsed.entries) {
            assert_eq!(a.rev, b.rev);
            assert_eq!(a.config, b.config);
            assert_eq!(a.device, b.device);
            assert_eq!(a.cells, b.cells);
            assert_eq!(a.rows.len(), b.rows.len());
            for (x, y) in a.rows.iter().zip(&b.rows) {
                assert_eq!(x.label, y.label);
                assert_eq!(x.inter_global_transactions, y.inter_global_transactions);
                assert_eq!(x.hidden_latency_cycles, y.hidden_latency_cycles);
                assert_eq!(x.h2d_bytes, y.h2d_bytes);
                assert_eq!(x.score_crc, y.score_crc);
                assert!((x.gcups - y.gcups).abs() < 1e-3);
                assert!((x.h2d_seconds - y.h2d_seconds).abs() < 1e-8);
                assert!((x.intra_imbalance - y.intra_imbalance).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn append_is_append_only_except_for_identical_keys() {
        let mut t = Trajectory::default();
        t.append(sample_entry("aaa"));
        t.append(sample_entry("bbb"));
        assert_eq!(t.entries.len(), 2);
        // Same (rev, config, device): replaced in place.
        let mut rerun = sample_entry("bbb");
        rerun.rows[0].gcups = 3.1;
        t.append(rerun);
        assert_eq!(t.entries.len(), 2);
        assert!((t.entries[1].rows[0].gcups - 3.1).abs() < 1e-9);
        // A different config is a different key even at the same rev.
        let mut smoke = sample_entry("bbb");
        smoke.config = "devopt-smoke-168x160".to_string();
        t.append(smoke);
        assert_eq!(t.entries.len(), 3);
    }

    #[test]
    fn baseline_matching_requires_config_and_device() {
        let mut t = Trajectory::default();
        t.append(sample_entry("aaa"));
        let mut other_device = sample_entry("bbb");
        other_device.device = "tesla-c1060".to_string();
        assert!(t.baseline_for(&other_device).is_none());
        let mut other_config = sample_entry("bbb");
        other_config.config = "devopt-smoke-168x160".to_string();
        assert!(t.baseline_for(&other_config).is_none());
        let same = sample_entry("bbb");
        assert_eq!(t.baseline_for(&same).map(|e| e.rev.as_str()), Some("aaa"));
    }

    #[test]
    fn invariant_gates_pass_on_a_healthy_entry() {
        assert_eq!(invariant_gates(&sample_entry("aaa")), Vec::<String>::new());
    }

    #[test]
    fn invariant_gates_catch_each_broken_claim() {
        let trip = |mutate: fn(&mut TrajectoryEntry), needle: &str| {
            let mut e = sample_entry("aaa");
            mutate(&mut e);
            let failures = invariant_gates(&e);
            assert!(
                failures.iter().any(|f| f.contains(needle)),
                "expected a failure containing {needle:?}, got {failures:?}"
            );
        };
        trip(|e| e.rows[1].score_crc ^= 1, "score CRC");
        trip(|e| e.rows[3].cells += 1, "cells vs baseline");
        trip(
            |e| e.rows[1].inter_global_transactions = 20_000,
            "below the 4x gate",
        );
        trip(
            |e| e.rows[2].inter_global_transactions = 40_000,
            "did not reduce",
        );
        trip(
            |e| e.rows[6].inter_global_transactions = 6_000,
            "more global transactions",
        );
        trip(|e| e.rows[0].hidden_latency_cycles = 5, "unfused baseline");
        trip(
            |e| e.rows[3].hidden_latency_cycles = 0,
            "hid zero stall cycles",
        );
        trip(|e| e.rows[4].h2d_bytes += 8, "changed H2D bytes");
        trip(
            |e| e.rows[4].h2d_hidden_seconds = 0.0,
            "accounting identity",
        );
        trip(
            |e| e.rows[5].intra_imbalance = 3.5,
            "worsened block imbalance",
        );
        trip(|e| e.rows[5].intra_imbalance = 2.5, "below the 1.5x gate");
        trip(
            |e| e.rows[6].kernel_seconds = 0.006,
            "slower than the baseline",
        );
        trip(
            |e| {
                e.rows.remove(2);
            },
            "missing",
        );
    }

    #[test]
    fn balance_cut_gate_is_conditional_on_baseline_skew() {
        // Near-uniform baseline: a small residual imbalance passes even
        // though the cut is under 1.5x (nothing to cut).
        let mut e = sample_entry("aaa");
        for r in &mut e.rows {
            r.intra_imbalance = match r.label.as_str() {
                "balance" | "all" => 1.3,
                _ => 1.5,
            };
        }
        assert_eq!(invariant_gates(&e), Vec::<String>::new());
    }

    #[test]
    fn comparator_rejects_slowdowns_and_transaction_growth() {
        let committed = sample_entry("aaa");
        let mut slow = sample_entry("bbb");
        slow.rows[6].gcups = 1.0;
        let failures = regressions(&committed, &slow);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("all:"));
        let mut chatty = sample_entry("ccc");
        chatty.rows[1].inter_global_transactions = 8_000;
        let failures = regressions(&committed, &chatty);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("allowed ceiling"));
        // Within-tolerance noise passes; unmatched rows are skipped.
        let mut noisy = sample_entry("ddd");
        for r in &mut noisy.rows {
            r.gcups *= 0.9;
        }
        assert!(regressions(&committed, &noisy).is_empty());
        let mut extra = sample_entry("eee");
        extra.rows.push(DeviceOptRow {
            label: "staging+fusion".to_string(),
            ..sample_row("staging")
        });
        assert!(regressions(&committed, &extra).is_empty());
    }
}
