//! Table II — GCUPs of both CUDASW++ versions on six databases, two GPUs,
//! across the paper's query lengths.
//!
//! "We see that the improved intra-task kernel increases the performance
//! of CUDASW++ on all databases tested. The performance gain is typically
//! more pronounced when there are more sequences over the threshold, with
//! the lowest performance gain occurring on the TAIR database with only
//! 0.06% of the sequences over the threshold."

use crate::experiments::{pct_over, predict};
use crate::report::Table;
use crate::workloads;
use cudasw_core::model::PredictedIntra;
use cudasw_core::DEFAULT_THRESHOLD;
use gpu_sim::DeviceSpec;
use sw_db::catalog::{paper_query_lengths, PaperDb};

/// One database × device × kernel row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Database name.
    pub db: &'static str,
    /// Realized % of sequences over the threshold.
    pub pct_over: f64,
    /// Device name.
    pub device: String,
    /// `"Original"` or `"Improved"`.
    pub kernel: &'static str,
    /// GCUPs per paper query length.
    pub gcups: Vec<f64>,
}

/// Table II's data.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// All rows, in the paper's order.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Mean gain (improved/original − 1) per database on a device.
    pub fn mean_gain(&self, db: &str, device: &str) -> f64 {
        let find = |kernel: &str| {
            self.rows
                .iter()
                .find(|r| r.db == db && r.device == device && r.kernel == kernel)
                .expect("row exists")
        };
        let imp = find("Improved");
        let orig = find("Original");
        imp.gcups
            .iter()
            .zip(&orig.gcups)
            .map(|(i, o)| i / o - 1.0)
            .sum::<f64>()
            / imp.gcups.len() as f64
    }

    /// Render in the paper's layout (a subset of query columns keeps the
    /// table printable).
    pub fn table(&self, query_cols: &[usize]) -> Table {
        let all_queries = paper_query_lengths();
        let mut headers = vec![
            "Database".to_string(),
            "% over".to_string(),
            "GPU".to_string(),
            "Kernel".to_string(),
        ];
        for q in query_cols {
            headers.push(q.to_string());
        }
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            "Table II — GCUPs for both CUDASW++ versions on several databases",
            &headers_ref,
        );
        for row in &self.rows {
            let mut cells = vec![
                row.db.to_string(),
                format!("{:.2}%", row.pct_over),
                row.device.clone(),
                row.kernel.to_string(),
            ];
            for q in query_cols {
                let idx = all_queries
                    .iter()
                    .position(|x| x == q)
                    .expect("query column exists");
                cells.push(format!("{:.1}", row.gcups[idx]));
            }
            t.push_row(cells);
        }
        t
    }
}

/// Run Table II at paper scale (analytic).
pub fn run() -> Table2Result {
    let queries = paper_query_lengths();
    let mut rows = Vec::new();
    for db in PaperDb::all() {
        let lengths = workloads::paper_scale_lengths(db);
        let pct = pct_over(&lengths, DEFAULT_THRESHOLD);
        for spec in [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_c2050()] {
            for (kernel, intra) in [
                ("Original", PredictedIntra::Original),
                ("Improved", PredictedIntra::Improved),
            ] {
                let gcups: Vec<f64> = queries
                    .iter()
                    .map(|&q| predict(&spec, &lengths, q, DEFAULT_THRESHOLD, intra, false).gcups())
                    .collect();
                rows.push(Table2Row {
                    db: db.name(),
                    pct_over: pct,
                    device: spec.name.clone(),
                    kernel,
                    gcups,
                });
            }
        }
    }
    Table2Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improved_wins_on_every_database_and_device() {
        let r = run();
        for db in PaperDb::all() {
            for dev in ["Tesla C1060", "Tesla C2050"] {
                let gain = r.mean_gain(db.name(), dev);
                assert!(gain > 0.0, "{} on {dev}: gain {gain:.3}", db.name());
            }
        }
    }

    #[test]
    fn tair_has_the_smallest_gain() {
        // "the lowest performance gain occurring on the TAIR database".
        let r = run();
        for dev in ["Tesla C1060", "Tesla C2050"] {
            let tair = r.mean_gain(PaperDb::Tair.name(), dev);
            for db in PaperDb::all() {
                if db != PaperDb::Tair {
                    assert!(
                        r.mean_gain(db.name(), dev) >= tair * 0.9,
                        "{} gain below TAIR on {dev}",
                        db.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gains_larger_on_c1060_than_c2050() {
        // "The gains of the improved intra-task kernel are also more
        // noticeable on the Tesla C1060 than the C2050" (Fermi caches help
        // the original kernel).
        let r = run();
        let mut c1060_sum = 0.0;
        let mut c2050_sum = 0.0;
        for db in PaperDb::all() {
            c1060_sum += r.mean_gain(db.name(), "Tesla C1060");
            c2050_sum += r.mean_gain(db.name(), "Tesla C2050");
        }
        assert!(
            c1060_sum > c2050_sum,
            "C1060 total gain {c1060_sum:.2} <= C2050 {c2050_sum:.2}"
        );
    }

    #[test]
    fn table_renders_selected_columns() {
        let r = run();
        let t = r.table(&[144, 567, 5478]);
        assert_eq!(t.rows.len(), 24); // 6 dbs × 2 devices × 2 kernels
    }
}
