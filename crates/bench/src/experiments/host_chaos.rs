//! `repro host-chaos` — the crash-only host engine under seeded faults.
//!
//! The GPU side has `repro chaos` (random device faults, byte-identical
//! merge) and `repro soak` (rolling lane storms under SLOs). This is the
//! host-lane counterpart: the protected SIMD pool runs a seeded fault
//! matrix — every seed × every [`HostFaultKind`] — plus a full chaos
//! storm per seed, and each cell must reproduce the fault-free scores
//! bit-for-bit with zero lost and zero duplicated sequences.
//!
//! Each forced cell plants one guaranteed fault of its kind at a known
//! chunk identity (on top of light seeded background noise), so the
//! matrix provably exercises all three recovery paths:
//!
//! * **panic** → the chunk is caught by the isolation boundary,
//!   quarantined, and its uncommitted sequences are recomputed on the
//!   scalar Farrar oracle;
//! * **stall** → the watchdog sees a flat heartbeat and re-dispatches the
//!   claimed chunk to a survivor, with the exactly-once commit absorbing
//!   whatever the stalled worker later produces;
//! * **alloc-fail** → admission denies the chunk, which is split in half
//!   and re-queued until it fits (or reaches the minimum forced size).
//!
//! The run is deterministic per seed and the JSON it emits
//! (`BENCH_host_chaos.json`, schema `cudasw.bench.host_chaos/v1`) is the
//! CI gate artifact. Unlike the simulated-clock experiments the stall
//! cells sleep real milliseconds, so timing fields are wall-clock.

use crate::report::Table;
use crate::workloads;
use sw_align::SwParams;
use sw_db::catalog::PaperDb;
use sw_simd::{
    length_aware_chunks, search_protected_with_chunks, search_sequences, HostFaultKind,
    HostFaultPlan, HostFaultRates, PoolConfig, Precision, QueryEngine,
};

/// JSON schema tag of `BENCH_host_chaos.json`.
pub const SCHEMA: &str = "cudasw.bench.host_chaos/v1";

/// The seeds of the default CI matrix (≥ 3, per the robustness gate).
pub const DEFAULT_SEEDS: [u64; 3] = [11, 22, 33];

/// Worker threads for the matrix cells: enough that the watchdog has
/// survivors to re-dispatch a stalled claim to.
const THREADS: usize = 3;

/// Forced-stall length vs. watchdog arm time: the stall must overshoot
/// the watchdog by a wide margin so re-dispatch demonstrably wins.
const STALL_MS: u64 = 120;
const WATCHDOG_STALL_MS: u64 = 15;
const WATCHDOG_POLL_MS: u64 = 5;

/// One cell of the fault matrix.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Fault seed of this cell.
    pub seed: u64,
    /// `panic` / `stall` / `alloc-fail` for forced cells, `storm` for the
    /// all-kinds chaos run.
    pub fault: String,
    /// Faults the plan actually injected.
    pub injected: u64,
    /// Chunk panics caught at the isolation boundary.
    pub panics: u64,
    /// Chunks quarantined to the scalar oracle.
    pub quarantined_chunks: u64,
    /// Sequences scored by the oracle recompute.
    pub oracle_scored: u64,
    /// Watchdog re-dispatches of stalled claims.
    pub redispatches: u64,
    /// Chunks split under admission pressure.
    pub rechunks: u64,
    /// Duplicate commits absorbed by the exactly-once gate.
    pub duplicates_suppressed: u64,
    /// Scores bit-identical to the fault-free run.
    pub scores_match: bool,
}

/// Outcome of the whole matrix.
#[derive(Debug, Clone)]
pub struct HostChaosResult {
    /// Database size (sequences).
    pub db_size: usize,
    /// Query length.
    pub query_len: usize,
    /// Worker threads per cell.
    pub threads: usize,
    /// All matrix cells (forced kinds first, then storms), in run order.
    pub cells: Vec<CellResult>,
    /// Faults injected across the whole matrix.
    pub total_injected: u64,
    /// Every cell reproduced the fault-free scores bit-for-bit.
    pub all_scores_match: bool,
    /// Sequences that went unanswered in any cell (must be zero: every
    /// score vector is full-length by the exactly-once reassembly).
    pub lost_sequences: u64,
}

impl HostChaosResult {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "host chaos matrix ({} seeds × {} forced kinds + storms, {} threads)",
                self.cells.iter().filter(|c| c.fault == "storm").count(),
                HostFaultKind::ALL.len(),
                self.threads
            ),
            &[
                "cell", "injected", "panics", "quarant.", "oracle", "redisp.", "rechunks", "dupes",
                "match",
            ],
        );
        for c in &self.cells {
            t.push_row(vec![
                format!("seed {} / {}", c.seed, c.fault),
                c.injected.to_string(),
                c.panics.to_string(),
                c.quarantined_chunks.to_string(),
                c.oracle_scored.to_string(),
                c.redispatches.to_string(),
                c.rechunks.to_string(),
                c.duplicates_suppressed.to_string(),
                c.scores_match.to_string(),
            ]);
        }
        t
    }

    /// Serialize as the `cudasw.bench.host_chaos/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"db_size\": {},\n", self.db_size));
        out.push_str(&format!("  \"query_len\": {},\n", self.query_len));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"total_injected\": {},\n", self.total_injected));
        out.push_str(&format!(
            "  \"all_scores_match\": {},\n",
            self.all_scores_match
        ));
        out.push_str(&format!("  \"lost_sequences\": {},\n", self.lost_sequences));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seed\": {}, \"fault\": \"{}\", \"injected\": {}, \"panics\": {}, \
                 \"quarantined_chunks\": {}, \"oracle_scored\": {}, \"redispatches\": {}, \
                 \"rechunks\": {}, \"duplicates_suppressed\": {}, \"scores_match\": {}}}{}\n",
                c.seed,
                c.fault,
                c.injected,
                c.panics,
                c.quarantined_chunks,
                c.oracle_scored,
                c.redispatches,
                c.rechunks,
                c.duplicates_suppressed,
                c.scores_match,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Background noise for the forced cells: light enough that the forced
/// fault dominates the cell, non-zero so different seeds genuinely deal
/// different schedules.
fn light_rates() -> HostFaultRates {
    HostFaultRates {
        panic: 0.05,
        stall: 0.0, // background stalls would make cell timing additive
        alloc_fail: 0.05,
    }
}

/// Run the matrix: for each seed, one forced cell per [`HostFaultKind`]
/// plus one full chaos storm, all over the same database and chunk list,
/// every cell checked bit-for-bit against the fault-free run.
pub fn run(seeds: &[u64], db_size: usize, query_len: usize) -> HostChaosResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let db = workloads::functional_db(PaperDb::Swissprot, db_size);
    let seqs = db.sequences();
    let query = workloads::query(query_len);
    let engine = QueryEngine::new(SwParams::cudasw_default(), &query);

    // Fault-free reference (single-threaded: scores are thread-count
    // independent, but this keeps the oracle maximally boring).
    let clean = search_sequences(&engine, seqs, 1, Precision::Adaptive);
    assert!(clean.faults.is_clean(), "reference run must be fault-free");

    // A fixed residue-balanced chunk list shared by every cell, so the
    // forced chunk identity (start, len) is stable across the matrix.
    let chunks = length_aware_chunks(seqs, THREADS * 8);
    let mid = &chunks[chunks.len() / 2];
    let forced_chunk = (mid.start, mid.len());

    let mut cells = Vec::new();
    for &seed in seeds {
        // Forced cells: one guaranteed fault of each kind. Only the stall
        // cell arms the aggressive watchdog — with it armed everywhere, a
        // descheduled worker mid-quarantine can have its claim re-dispatched
        // and the survivor then wins every commit, hiding the oracle path
        // this matrix exists to demonstrate.
        for kind in HostFaultKind::ALL {
            let plan = HostFaultPlan::random(seed, light_rates())
                .with_fault_at(forced_chunk, kind)
                .with_stall_ms(STALL_MS);
            let mut cfg = PoolConfig::new(THREADS, Precision::Adaptive).with_fault_plan(plan);
            if kind == HostFaultKind::Stall {
                cfg = cfg.with_watchdog(WATCHDOG_STALL_MS, WATCHDOG_POLL_MS);
            }
            cells.push(run_cell(
                &engine,
                seqs,
                &chunks,
                &cfg,
                seed,
                kind.name(),
                &clean.scores,
            ));
        }
        // The storm: every kind at chaos rates, short stalls so the
        // watchdog still fires without dominating wall-clock.
        let storm = HostFaultPlan::random(seed ^ 0x5707_AC1D, HostFaultRates::chaos())
            .with_stall_ms(2 * WATCHDOG_STALL_MS);
        let cfg = PoolConfig::new(THREADS, Precision::Adaptive)
            .with_fault_plan(storm)
            .with_watchdog(WATCHDOG_STALL_MS, WATCHDOG_POLL_MS);
        cells.push(run_cell(
            &engine,
            seqs,
            &chunks,
            &cfg,
            seed,
            "storm",
            &clean.scores,
        ));
    }

    let r = HostChaosResult {
        db_size,
        query_len,
        threads: THREADS,
        total_injected: cells.iter().map(|c| c.injected).sum(),
        all_scores_match: cells.iter().all(|c| c.scores_match),
        lost_sequences: 0, // asserted per-cell in run_cell
        cells,
    };

    // The gate. Each assertion names the recovery path it protects.
    assert!(
        r.all_scores_match,
        "a faulted cell diverged from the clean run"
    );
    assert!(r.total_injected > 0, "the matrix never injected a fault");
    for c in &r.cells {
        match c.fault.as_str() {
            "panic" => {
                assert!(c.panics >= 1, "seed {}: forced panic never fired", c.seed);
                assert!(
                    c.quarantined_chunks >= 1 && c.oracle_scored >= 1,
                    "seed {}: panic was not quarantined to the oracle",
                    c.seed
                );
            }
            "stall" => assert!(
                c.redispatches >= 1,
                "seed {}: the watchdog never re-dispatched the stalled claim",
                c.seed
            ),
            "alloc-fail" => assert!(
                c.rechunks >= 1,
                "seed {}: admission failure never split the chunk",
                c.seed
            ),
            _ => assert!(c.injected > 0, "seed {}: the storm never landed", c.seed),
        }
    }
    r
}

/// One matrix cell: run the protected pool under `cfg`, compare against
/// the clean scores, and fold the fault report into a [`CellResult`].
fn run_cell(
    engine: &QueryEngine,
    seqs: &[sw_db::Sequence],
    chunks: &[std::ops::Range<usize>],
    cfg: &PoolConfig,
    seed: u64,
    fault: &str,
    clean: &[i32],
) -> CellResult {
    let r = search_protected_with_chunks(engine, seqs, cfg, chunks)
        .expect("no cancel token: the protected search is infallible");
    assert_eq!(
        r.scores.len(),
        seqs.len(),
        "seed {seed}/{fault}: a sequence was lost"
    );
    let f = r.faults;
    CellResult {
        seed,
        fault: fault.to_string(),
        injected: f.injected(),
        panics: f.panics,
        quarantined_chunks: f.quarantined_chunks,
        oracle_scored: f.oracle_scored,
        redispatches: f.redispatches,
        rechunks: f.rechunks,
        duplicates_suppressed: f.duplicates_suppressed,
        scores_match: r.scores == clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_recovers_exact_scores_and_exercises_every_path() {
        let (r, run) = obs::capture(|| run(&DEFAULT_SEEDS, 96, 48));
        assert!(r.all_scores_match);
        assert!(r.total_injected >= r.cells.len() as u64 - DEFAULT_SEEDS.len() as u64);
        assert_eq!(r.lost_sequences, 0);
        // 3 forced kinds + 1 storm per seed.
        assert_eq!(
            r.cells.len(),
            DEFAULT_SEEDS.len() * (HostFaultKind::ALL.len() + 1)
        );
        // The pool published its fault counters.
        let m = &run.metrics;
        assert!(m.counter_sum("cudasw.simd.pool.panics", &[]) as u64 >= DEFAULT_SEEDS.len() as u64);
        assert!(m.counter_sum("cudasw.simd.pool.redispatches", &[]) >= 1.0);
        assert!(m.counter_sum("cudasw.simd.pool.rechunks", &[]) >= 1.0);

        let json = r.to_json();
        let doc = obs::json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        let cells = doc
            .get("cells")
            .and_then(|c| c.as_arr())
            .expect("cells array");
        assert_eq!(cells.len(), r.cells.len());
        assert!(cells.iter().all(|c| c.get("scores_match").is_some()));
    }
}
