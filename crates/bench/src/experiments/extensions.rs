//! §VI — future-work extensions, measured.
//!
//! Covers the kernel-level extensions (coalesced boundary I/O, shared
//! boundary, continuous pipeline) via `cudasw_core::extensions`, plus the
//! streamed host→device copy.

use crate::report::Table;
use crate::workloads;
use cudasw_core::extensions::{compare_extensions, streamed_copy_report, ExtensionRow};
use cudasw_core::ImprovedParams;
use gpu_sim::DeviceSpec;
use sw_db::catalog::PaperDb;

/// The extension experiment's data.
#[derive(Debug, Clone)]
pub struct ExtensionsResult {
    /// Kernel-extension comparison rows.
    pub kernel_rows: Vec<ExtensionRow>,
    /// Streamed-copy report `(sync seconds, streamed seconds, hidden %)`.
    pub streaming: (f64, f64, f64),
}

impl ExtensionsResult {
    /// Kernel extensions as a table.
    pub fn table_kernels(&self) -> Table {
        let mut t = Table::new(
            "§VI kernel extensions on long sequences (functional)",
            &["variant", "GCUPs", "global transactions", "syncs"],
        );
        for r in &self.kernel_rows {
            t.push_row(vec![
                r.name.to_string(),
                format!("{:.2}", r.gcups),
                r.global_transactions.to_string(),
                r.syncs.to_string(),
            ]);
        }
        t
    }

    /// Streaming as a table.
    pub fn table_streaming(&self) -> Table {
        let mut t = Table::new(
            "§VI streamed host→device database copy",
            &["strategy", "total seconds", "copy hidden"],
        );
        t.push_row(vec![
            "copy-then-compute".to_string(),
            format!("{:.4}", self.streaming.0),
            "-".to_string(),
        ]);
        t.push_row(vec![
            "streamed".to_string(),
            format!("{:.4}", self.streaming.1),
            format!("{:.0}%", self.streaming.2 * 100.0),
        ]);
        t
    }
}

/// Run the extension measurements.
pub fn run(
    spec: &DeviceSpec,
    long_seqs: usize,
    mean_len: usize,
    query_len: usize,
) -> ExtensionsResult {
    let db = workloads::long_tail_db(long_seqs, mean_len);
    let query = workloads::query(query_len);
    let kernel_rows = compare_extensions(spec, &db, &query, 3072, ImprovedParams::default())
        .expect("extension comparison");

    // Streaming: a realistic Swissprot staging with a compute phase of the
    // size our calibrated model predicts for one query-567 search.
    let big_db = workloads::functional_db(PaperDb::Swissprot, 4000);
    let cells = big_db.total_cells(query_len) as f64;
    let compute_seconds = cells / 17.0e9; // ≈ the paper's 17 GCUPs
    let report = streamed_copy_report(spec, &big_db, compute_seconds, 256 * 1024);
    ExtensionsResult {
        kernel_rows,
        streaming: (
            report.synchronous_seconds,
            report.streamed_seconds,
            report.copy_hidden_fraction(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_report_is_complete() {
        let r = run(&DeviceSpec::tesla_c2050(), 2, 3300, 300);
        assert_eq!(r.kernel_rows.len(), 5);
        assert!(r.streaming.1 <= r.streaming.0, "streaming can't be slower");
        assert!(r.streaming.2 >= 0.0 && r.streaming.2 <= 1.0);
    }

    #[test]
    fn coalesced_io_improves_gcups_on_multi_strip_queries() {
        // Query of 300 rows with default n_th=256 is single-strip; use a
        // long query so boundary traffic exists to coalesce.
        let r = run(&DeviceSpec::tesla_c1060(), 2, 3300, 2200);
        let base = r.kernel_rows.iter().find(|x| x.name == "improved").unwrap();
        let coal = r
            .kernel_rows
            .iter()
            .find(|x| x.name == "+coalesced-io")
            .unwrap();
        assert!(coal.global_transactions < base.global_transactions);
        assert!(coal.gcups >= base.gcups * 0.95);
    }
}
