//! Standard workloads shared by the experiments and benches.
//!
//! Sizes follow the scaling policy of DESIGN.md §5: analytic experiments
//! run at realistic database scale (lengths only), functional experiments
//! use reduced sequence counts whose runtime stays in seconds. Every
//! workload is seeded and deterministic.

use sw_db::catalog::PaperDb;
use sw_db::stats::LogNormalParams;
use sw_db::synth::{make_query, sample_lengths};
use sw_db::{Database, SynthConfig};

/// Workload seed base (fixed so every run regenerates identical inputs).
pub const SEED: u64 = 2011; // the paper's year

/// Paper-scale sequence lengths of one benchmark database (sorted).
///
/// A log-normal fit underestimates the extreme tail of real protein
/// databases: Swissprot's longest entries (titin and friends) exceed
/// 35,000 residues — which is exactly why §II-C raises the threshold to
/// 36,000 to push *everything* through the inter-task kernel. Those
/// outliers are what make that configuration collapse (a 35k-residue
/// alignment run by a single thread dominates the launch), so each preset
/// appends a small deterministic extreme tail.
pub fn paper_scale_lengths(db: PaperDb) -> Vec<usize> {
    let mut lengths = sample_lengths(
        db.realistic_seq_count(),
        db.lognormal(),
        20,
        36_000,
        SEED ^ db.paper_fraction_over_threshold().to_bits(),
    );
    let tail: &[usize] = match db {
        PaperDb::Swissprot => &[
            35_213, 22_152, 18_141, 14_507, 13_100, 12_464, 11_103, 10_624,
        ],
        // The mammalian genome databases contain titin (~34k) and a few
        // other giants.
        PaperDb::EnsemblDog | PaperDb::EnsemblRat | PaperDb::RefSeqHuman | PaperDb::RefSeqMouse => {
            &[34_350, 22_000, 13_000, 8_800]
        }
        // Arabidopsis tops out near 5.4k (midasin); no titin-scale outliers.
        PaperDb::Tair => &[5_393, 5_098, 5_002],
    };
    lengths.extend_from_slice(tail);
    lengths.sort_unstable();
    lengths
}

/// A functional (residues materialized) scaled version of a paper database.
pub fn functional_db(db: PaperDb, num_seqs: usize) -> Database {
    db.generate(num_seqs, SEED)
}

/// The Figure 2 database construction: `s` sequences with log-normal
/// lengths of the given standard deviation around a fixed median (the
/// paper: median 1000, σ between 100 and 4000).
///
/// The lengths are **unsorted**: the paper runs the kernels directly on
/// the generated random databases ("we generated several random databases
/// containing s sequences"), so threads of one warp get arbitrary-length
/// sequences — which is precisely the load imbalance Figure 2 exposes.
/// CUDASW++'s sorting pass is the mitigation, not part of this experiment.
pub fn fig2_lengths(std_dev: f64, s: usize, median: f64) -> Vec<usize> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rand_distr::{Distribution, LogNormal};
    let params = LogNormalParams::from_median_and_std(median, std_dev);
    let mut rng = StdRng::seed_from_u64(SEED ^ std_dev.to_bits());
    let dist = LogNormal::new(params.mu, params.sigma).expect("validated sigma");
    (0..s)
        .map(|_| (dist.sample(&mut rng).round() as usize).clamp(20, 36_000))
        .collect()
}

/// Functional variant of the Figure 2 database.
pub fn fig2_database(std_dev: f64, s: usize, median: f64) -> Database {
    let params = LogNormalParams::from_median_and_std(median, std_dev);
    SynthConfig::new(
        format!("lognormal(median={median}, std={std_dev})"),
        s,
        params,
        SEED ^ std_dev.to_bits(),
    )
    .generate()
}

/// The query of the threshold experiments (the paper uses lengths 567,
/// 572 and 576 across Figures 2/3/5; one deterministic query per length).
pub fn query(len: usize) -> Vec<u8> {
    make_query(len, SEED)
}

/// The paper's Figure 7 / Table II query lengths.
pub fn paper_queries() -> Vec<Vec<u8>> {
    sw_db::catalog::paper_query_lengths()
        .iter()
        .map(|&l| query(l))
        .collect()
}

/// Long-sequence workload for intra-task kernel experiments: `count`
/// sequences of roughly Swissprot-tail lengths.
pub fn long_tail_db(count: usize, mean_len: usize) -> Database {
    let params = LogNormalParams::from_mean_std(mean_len as f64, mean_len as f64 * 0.2);
    let mut cfg = SynthConfig::new(format!("tail-{mean_len}"), count, params, SEED + 7);
    cfg.min_len = 3072;
    cfg.max_len = 3 * mean_len;
    cfg.generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_lengths_match_tail_target() {
        let lens = paper_scale_lengths(PaperDb::Swissprot);
        assert_eq!(lens.len(), 500_008); // 500k sampled + 8 extreme outliers
        let over = lens.iter().filter(|&&l| l >= 3072).count() as f64 / lens.len() as f64;
        assert!((over - 0.0012).abs() < 6e-4, "tail = {over}");
    }

    #[test]
    fn fig2_lengths_hit_requested_std() {
        let lens = fig2_lengths(1000.0, 30_000, 1000.0);
        let stats = sw_db::LengthStats::from_lengths(lens.iter().copied());
        assert!(
            (stats.std_dev - 1000.0).abs() < 120.0,
            "std = {}",
            stats.std_dev
        );
    }

    #[test]
    fn queries_are_deterministic() {
        assert_eq!(query(567), query(567));
        assert_eq!(paper_queries().len(), 15);
        assert_eq!(paper_queries()[0].len(), 144);
    }

    #[test]
    fn long_tail_db_is_all_over_threshold() {
        let db = long_tail_db(8, 4000);
        assert_eq!(db.len(), 8);
        assert!(db.sequences().iter().all(|s| s.len() >= 3072));
    }
}
