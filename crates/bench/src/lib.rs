//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment module produces the same rows/series the paper reports
//! (see DESIGN.md §4 for the experiment index). Two execution modes are
//! used, following the scaling policy of DESIGN.md §5:
//!
//! * **functional** — the kernels execute every DP cell through the
//!   simulated memory system (exact counters; used for Table I, the
//!   ablations, and anchor points);
//! * **analytic** — the validated closed-form models of
//!   `cudasw_core::model` run at full paper scale (500k-sequence
//!   Swissprot; used for the sweep curves of Figures 2/3/5/6/7 and
//!   Table II).
//!
//! The `repro` binary drives everything: `repro all` regenerates the whole
//! evaluation section.

pub mod experiments;
pub mod report;
pub mod workloads;

pub use report::{Series, Table};
