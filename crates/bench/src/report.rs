//! Plain-text rendering of experiment results: fixed-width tables and
//! x/y series (one line per point, gnuplot-friendly).

use std::fmt::Write as _;

/// A printable table (one per paper table, or per figure's data).
#[derive(Debug, Clone)]
pub struct Table {
    /// Title shown above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row must match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(s, " {:<w$} |", cell, w = widths[c]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        let _ = writeln!(out);
        assert!(cols > 0);
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One labelled curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, e.g. `"Imp. Intratask (Tesla C2050)"`.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Start an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Largest y value (0 when empty).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Smallest y value (0 when empty).
    pub fn min_y(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
    }
}

/// Render several series that share an x axis as one table: first column
/// x, one column per series.
pub fn series_table(title: &str, x_label: &str, series: &[Series]) -> Table {
    let mut headers: Vec<&str> = vec![x_label];
    for s in series {
        headers.push(&s.label);
    }
    let mut table = Table::new(title, &headers);
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..n {
        let mut row = Vec::with_capacity(headers.len());
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(f64::NAN);
        row.push(format_num(x));
        for s in series {
            row.push(
                s.points
                    .get(i)
                    .map(|p| format_num(p.1))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        table.push_row(row);
    }
    table
}

/// Compact number formatting: integers plain, small floats with 2–3
/// significant decimals.
pub fn format_num(v: f64) -> String {
    if !v.is_finite() {
        return "-".to_string();
    }
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| long-name |"));
        assert!(s.contains("| a         |"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn series_table_shares_x() {
        let mut a = Series::new("A");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("B");
        b.push(1.0, 11.0);
        let t = series_table("fig", "x", &[a, b]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][2], "-");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(3.25678), "3.26");
        assert_eq!(format_num(123.456), "123.5");
        assert_eq!(format_num(0.01234), "0.0123");
        assert_eq!(format_num(f64::NAN), "-");
    }

    #[test]
    fn series_extrema() {
        let mut s = Series::new("s");
        s.push(0.0, 5.0);
        s.push(1.0, 2.0);
        assert_eq!(s.max_y(), 5.0);
        assert_eq!(s.min_y(), 2.0);
    }
}
