//! Offline shim for `parking_lot`: a non-poisoning `Mutex` facade over
//! `std::sync::Mutex` with the `parking_lot` calling convention
//! (`lock()` returns the guard directly).

use std::sync::MutexGuard;

/// Mutual exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
