//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Admissible sizes for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
        };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `Vec` strategy over `element` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
