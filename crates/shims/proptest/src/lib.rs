//! Offline shim for `proptest`.
//!
//! Provides deterministic random testing with the `proptest!` macro,
//! strategies (ranges, tuples, `collection::vec`, `prop_map`, `Just`,
//! `prop_oneof!`, `any`) and the `prop_assert*` family. Inputs are drawn
//! from a SplitMix64 stream seeded by the test name, so every run explores
//! the same cases. There is **no shrinking**: a failing case panics with
//! the case number, which is reproducible because generation is
//! deterministic.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Deterministic generator feeding the strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary byte string (typically the test name).
    pub fn deterministic(tag: &str) -> Self {
        // FNV-1a, then a warm-up step.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// Next 64 random bits (SplitMix64).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: strategy::Strategy<Value = Self>;

    /// Full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for `T` (e.g. `any::<u32>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// The prelude mirrors `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip this case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed_sampler($strat)),+
        ])
    };
}

/// Define deterministic property tests.
///
/// Supports the upstream surface this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0u32..10, v in proptest::collection::vec(any::<u32>(), 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    // The block runs per case; prop_assume! skips via `continue`.
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}
