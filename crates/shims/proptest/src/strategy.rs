//! Strategy trait and the combinators the workspace uses.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies are usable through references (the `proptest!` macro samples
/// through `&strat`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain integer strategy (returned by `any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(pub(crate) PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain bool strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// A boxed sampling closure producing values of type `V`.
pub type Sampler<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Erase a strategy into a boxed sampling closure (used by `prop_oneof!`;
/// a plain generic function so integer-literal types unify across arms).
pub fn boxed_sampler<S>(strategy: S) -> Sampler<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| strategy.sample(rng))
}

/// Uniform choice among boxed samplers (built by `prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<Sampler<V>>,
}

impl<V> OneOf<V> {
    /// Build from at least one sampler.
    pub fn new(options: Vec<Sampler<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        (self.options[i])(rng)
    }
}
