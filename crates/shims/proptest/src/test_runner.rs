//! Runner configuration.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream defaults to 256; the shim keeps the functional GPU
        // simulator suites fast while still exploring a meaningful space.
        Config { cases: 64 }
    }
}
