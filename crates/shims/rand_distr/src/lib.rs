//! Offline shim for the `rand_distr` crate: the `LogNormal` distribution
//! used by the synthetic database generators, sampled via Box–Muller.

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error from distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Scale parameter was negative or non-finite.
    BadVariance,
    /// Location parameter was non-finite.
    BadMean,
}

/// Normal distribution (mean, standard deviation).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Build a normal distribution; `std_dev` must be finite and `>= 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() {
            return Err(Error::BadMean);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 is kept away from zero so ln() stays finite.
        let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Build from the *underlying normal's* location and scale.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_matches_moments() {
        // mean = exp(mu + sigma^2/2), here mu=ln(100), sigma=0.5.
        let mu = 100.0f64.ln();
        let sigma = 0.5;
        let d = LogNormal::new(mu, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = (mu + sigma * sigma / 2.0).exp();
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }
}
