//! Offline shim for `criterion`.
//!
//! Runs each benchmark closure a fixed small number of timed iterations
//! and prints a one-line summary. Statistical machinery (outlier analysis,
//! HTML reports) is intentionally absent. The generated `main` only runs
//! when the binary is invoked with `--bench` (as `cargo bench` does), so
//! `cargo test` builds bench targets without executing them.

use std::fmt;
use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    iterations: u32,
    last_nanos_per_iter: f64,
}

impl Bencher {
    /// Time `f`, running it a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        self.last_nanos_per_iter = elapsed / self.iterations as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Iterations per measurement (upstream: samples per estimate).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size,
            last_nanos_per_iter: 0.0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size,
            last_nanos_per_iter: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = bencher.last_nanos_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:.3} MB/s", n as f64 / per_iter * 1e3)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter{}",
            self.name,
            id.name,
            per_iter / 1e6,
            rate
        );
        let _ = &self.criterion;
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from_parameter(name), f);
        group.finish();
        self
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Define a benchmark-group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups when invoked with `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` invokes bench binaries with `--bench`;
            // `cargo test` builds and runs them without it. Skip in the
            // latter case so the test suite stays fast.
            if !std::env::args().any(|a| a == "--bench") {
                return;
            }
            $($group();)+
        }
    };
}
