//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API this workspace uses on top
//! of a SplitMix64 generator. Seeded streams are deterministic across runs
//! and platforms (but not bit-compatible with upstream `rand`).

pub mod rngs;

pub mod distributions;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
