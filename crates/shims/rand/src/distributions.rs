//! Distribution sampling (the subset the workspace uses).

use crate::RngCore;
use std::borrow::Borrow;

/// Types that can draw values of `T` from a generator.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error building a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// All weights are zero.
    AllWeightsZero,
}

/// Samples indices proportionally to a weight table.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from any iterator of (borrowed) `f64` weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(Self { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let x = crate::unit_f64(rng) * self.total;
        // First cumulative weight strictly greater than x.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_tracks_weights() {
        let dist = WeightedIndex::new([1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let ones = (0..n).filter(|_| dist.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn invalid_weights_rejected() {
        assert_eq!(
            WeightedIndex::new(std::iter::empty::<f64>()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new([-1.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }
}
