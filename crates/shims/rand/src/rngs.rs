//! Generator implementations.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut rng = StdRng { state: seed };
        // Warm up so that small seeds (0, 1, 2, ...) diverge immediately.
        rng.next_u64();
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }
}
