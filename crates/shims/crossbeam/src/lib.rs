//! Offline shim for `crossbeam`: an unbounded MPMC channel built on
//! `std::sync` primitives — enough for the SWPS3-style work queue.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] (never produced here: the queue
    /// is unbounded and receivers are not tracked, matching how the
    /// workspace uses the channel).
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().expect("channel lock");
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel lock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen: Vec<usize> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                seen.extend(h.join().unwrap());
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
