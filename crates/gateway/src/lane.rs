//! Lane workers: real threads executing wave shard-work concurrently.
//!
//! The gateway shards the database round-robin over `devices + 1` lanes
//! ([`cudasw_core::multi_gpu::shard_database`] layout: shard `s`
//! position `j` is database sequence `s + j·k`). Lanes `0..devices` are
//! gpu-sim device lanes; lane `devices` is the **host lane**, computing
//! its shard on the crash-only work-stealing SIMD pool. Each worker owns
//! its driver and shard outright and talks to the dispatcher only
//! through channels, so a wave's shard parts genuinely execute in
//! parallel on the wall clock.
//!
//! Failure semantics mirror the simulated executor, scoped to what a
//! worker thread can do on its own:
//!
//! * a device lane serves each query from the device-resident staging
//!   fast path, dropping to [`CudaSwDriver::search_resilient`] when the
//!   staged handle faults; an unrecoverable lane death reports the
//!   remaining queries as unserved (`None`) and the dispatcher re-owes
//!   them to the host lane;
//! * the host lane runs every search under
//!   [`sw_simd::search_protected`] with the gateway's shared
//!   [`CancelToken`] installed — injected host faults (panics, stalls,
//!   alloc failures) are absorbed bit-identically, and shutdown
//!   cancellation makes queued chunks exit at their first poll instead
//!   of stalling the drain.
//!
//! Scores are exact on every path, so which lane (or fallback) served a
//! shard never changes a response byte.

use crate::gateway::FrontMsg;
use cudasw_core::{CudaSwConfig, CudaSwDriver, RecoveryPolicy, StagedDatabase};
use gpu_sim::{DeviceSpec, FaultPlan};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;
use sw_db::Database;
use sw_serve::Wave;
use sw_simd::{search_protected, CancelToken, HostFaultPlan, PoolConfig, Precision, QueryEngine};

/// A command from the dispatcher to a lane worker.
pub(crate) enum LaneCmd {
    /// Execute the worker's own shard of `wave`.
    Exec {
        wave_id: u64,
        wave: std::sync::Arc<Wave>,
    },
    /// Host lane only: compute shard `shard_of` of `wave` on behalf of a
    /// dead or quarantined device lane.
    Owed {
        wave_id: u64,
        wave: std::sync::Arc<Wave>,
        shard_of: usize,
    },
    /// Drain and exit the worker thread.
    Stop,
}

/// One lane's result for one wave's shard part.
pub(crate) struct LaneDone {
    /// Reporting lane index.
    pub lane: usize,
    /// The wave this part belongs to.
    pub wave_id: u64,
    /// Which shard these scores cover (== `lane` except for owed work).
    pub shard_of: usize,
    /// Per logical request index: shard-order scores, or `None` when the
    /// lane died or was cancelled before serving it.
    pub scores: Vec<Option<Vec<i32>>>,
    /// DP cells computed for this part.
    pub cells: u64,
    /// True when recovery machinery degraded part of the work.
    pub degraded: bool,
    /// True when the device faulted during the wave (breaker signal).
    pub faulted: bool,
    /// True when the lane is (now) dead.
    pub died: bool,
    /// True when shutdown cancellation interrupted the part.
    pub cancelled: bool,
    /// Wall seconds this part occupied the worker.
    pub seconds: f64,
}

/// A spawned worker: its command channel and join handle.
pub(crate) struct LaneHandle {
    pub tx: Sender<LaneCmd>,
    pub join: std::thread::JoinHandle<()>,
}

/// Spawn a gpu-sim device lane worker over `shard`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_device_lane(
    lane: usize,
    spec: &DeviceSpec,
    config: &CudaSwConfig,
    shard: Database,
    plan: FaultPlan,
    policy: &RecoveryPolicy,
    out: Sender<FrontMsg>,
) -> LaneHandle {
    let (tx, rx) = std::sync::mpsc::channel();
    let spec = spec.clone();
    let config = config.clone();
    let policy = policy.clone();
    let join = std::thread::spawn(move || {
        let mut driver = CudaSwDriver::new(spec, config);
        driver.dev.inject_faults(plan);
        driver.dev.set_integrity_checks(policy.integrity_checks);
        driver.dev.set_watchdog_cycles(policy.watchdog_cycles);
        let mut worker = DeviceLaneWorker {
            lane,
            driver,
            shard,
            staged: None,
            alive: true,
            policy,
        };
        while let Ok(cmd) = rx.recv() {
            match cmd {
                LaneCmd::Exec { wave_id, wave } => {
                    let done = worker.exec(wave_id, &wave);
                    if out.send(FrontMsg::Done(done)).is_err() {
                        break;
                    }
                }
                // Device lanes never receive owed work (the dispatcher
                // routes it to the host lane); acknowledge defensively so
                // a routing bug cannot wedge a wave.
                LaneCmd::Owed {
                    wave_id,
                    wave,
                    shard_of,
                } => {
                    let n = wave.requests.len();
                    let done = LaneDone {
                        lane,
                        wave_id,
                        shard_of,
                        scores: vec![None; n],
                        cells: 0,
                        degraded: false,
                        faulted: false,
                        died: false,
                        cancelled: false,
                        seconds: 0.0,
                    };
                    if out.send(FrontMsg::Done(done)).is_err() {
                        break;
                    }
                }
                LaneCmd::Stop => break,
            }
        }
    });
    LaneHandle { tx, join }
}

struct DeviceLaneWorker {
    lane: usize,
    driver: CudaSwDriver,
    shard: Database,
    staged: Option<StagedDatabase>,
    alive: bool,
    policy: RecoveryPolicy,
}

impl DeviceLaneWorker {
    /// The per-lane recovery policy: no CPU fallback (the dispatcher
    /// owns re-dispatch) and no modeled deadline budget — in wall-clock
    /// mode tail control comes from admission, cancellation and the
    /// breakers, not from the simulated device clock.
    fn lane_policy(&self) -> RecoveryPolicy {
        RecoveryPolicy {
            cpu_fallback: false,
            deadline_seconds: None,
            ..self.policy.clone()
        }
    }

    /// Stage the shard, retrying transient faults. Backoff is modeled on
    /// the worker's thread-local simulated device clock (no wall sleep —
    /// a simulated device's retry pause must not stall a real wave).
    fn stage(&mut self) {
        let mut attempt = 0u32;
        loop {
            let shard = self.shard.clone();
            match self.driver.stage_database(&shard) {
                Ok(staged) => {
                    self.staged = Some(staged);
                    obs::counter_add("cudasw.gateway.db_stagings", &[], 1.0);
                    return;
                }
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    let backoff =
                        self.policy.backoff_base_seconds * f64::from(1u32 << attempt.min(20));
                    obs::advance(backoff);
                    obs::counter_add("cudasw.gateway.staging_retries", &[], 1.0);
                }
                Err(gpu_sim::GpuError::DeviceLost) => {
                    self.alive = false;
                    return;
                }
                Err(_) => {
                    // OOM or retries exhausted: serve un-staged (the
                    // resilient path re-chunks around OOM itself).
                    obs::counter_add("cudasw.gateway.staging_fallbacks", &[], 1.0);
                    return;
                }
            }
        }
    }

    fn exec(&mut self, wave_id: u64, wave: &Wave) -> LaneDone {
        let t0 = Instant::now();
        let n = wave.requests.len();
        let mut scores: Vec<Option<Vec<i32>>> = vec![None; n];
        let mut cells = 0u64;
        let mut degraded = false;
        let alive_at_start = self.alive;
        let faults_before = self.driver.dev.fault_stats().total();
        if alive_at_start {
            self.driver.config.params = wave.requests[0].params.clone();
            if self.staged.is_none() {
                self.stage();
            }
            for &q in &wave.exec_order {
                if !self.alive {
                    break;
                }
                let req = &wave.requests[q];
                let mut served = false;
                // Fast path: the device-resident shard.
                if let Some(staged) = self.staged.clone() {
                    match self.driver.search_staged(&req.query, &staged) {
                        Ok(r) => {
                            cells += r.total_cells();
                            scores[q] = Some(r.scores);
                            served = true;
                        }
                        Err(e) if e.is_recoverable() => {
                            // Handle invalidated by recovery machinery:
                            // drop it, take the resilient path.
                            self.staged = None;
                            obs::counter_add("cudasw.gateway.staged_faults", &[], 1.0);
                        }
                        Err(_) => {
                            // Non-recoverable device error: the worker
                            // cannot propagate it, so the lane dies and
                            // the dispatcher re-owes the work.
                            self.alive = false;
                        }
                    }
                }
                if !served && self.alive {
                    let shard = self.shard.clone();
                    match self
                        .driver
                        .search_resilient(&req.query, &shard, &self.lane_policy())
                    {
                        Ok(rr) => {
                            cells += rr.result.total_cells();
                            scores[q] = Some(rr.result.scores);
                            if rr.recovery.degraded {
                                degraded = true;
                            }
                            // search_resilient reset the allocator; any
                            // staged handle is stale now.
                            self.staged = None;
                        }
                        Err(_) => {
                            self.alive = false;
                        }
                    }
                }
            }
        }
        let faulted = self.driver.dev.fault_stats().total() > faults_before;
        LaneDone {
            lane: self.lane,
            wave_id,
            shard_of: self.lane,
            scores,
            cells,
            degraded,
            faulted,
            died: !self.alive,
            cancelled: false,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

/// Spawn the host SIMD lane worker. It owns shard `lane` (the last
/// round-robin shard) and keeps every shard so it can absorb owed work
/// from dead device lanes.
pub(crate) fn spawn_host_lane(
    lane: usize,
    shards: Vec<Database>,
    threads: usize,
    faults: HostFaultPlan,
    cancel: CancelToken,
    out: Sender<FrontMsg>,
) -> LaneHandle {
    let (tx, rx) = std::sync::mpsc::channel();
    let join = std::thread::spawn(move || {
        let worker = HostLaneWorker {
            lane,
            shards,
            threads,
            faults,
            cancel,
        };
        host_lane_loop(&worker, &rx, &out);
    });
    LaneHandle { tx, join }
}

struct HostLaneWorker {
    lane: usize,
    shards: Vec<Database>,
    threads: usize,
    faults: HostFaultPlan,
    cancel: CancelToken,
}

fn host_lane_loop(worker: &HostLaneWorker, rx: &Receiver<LaneCmd>, out: &Sender<FrontMsg>) {
    while let Ok(cmd) = rx.recv() {
        let done = match cmd {
            LaneCmd::Exec { wave_id, wave } => worker.exec(wave_id, &wave, worker.lane),
            LaneCmd::Owed {
                wave_id,
                wave,
                shard_of,
            } => worker.exec(wave_id, &wave, shard_of),
            LaneCmd::Stop => break,
        };
        if out.send(FrontMsg::Done(done)).is_err() {
            break;
        }
    }
}

impl HostLaneWorker {
    /// Compute shard `shard_of` for every request of `wave` on the
    /// protected pool. A cancelled search (gateway shutdown) reports the
    /// remaining requests as unserved.
    fn exec(&self, wave_id: u64, wave: &Wave, shard_of: usize) -> LaneDone {
        let t0 = Instant::now();
        let n = wave.requests.len();
        let mut scores: Vec<Option<Vec<i32>>> = vec![None; n];
        let mut cells = 0u64;
        let mut cancelled = false;
        let params = wave.requests[0].params.clone();
        let shard = &self.shards[shard_of.min(self.shards.len().saturating_sub(1))];
        for &q in &wave.exec_order {
            if self.cancel.is_cancelled() {
                cancelled = true;
                break;
            }
            let req = &wave.requests[q];
            if shard.is_empty() {
                scores[q] = Some(Vec::new());
                continue;
            }
            let engine = QueryEngine::new(params.clone(), &req.query);
            let cfg = PoolConfig::new(self.threads, Precision::Adaptive)
                .with_fault_plan(self.faults.clone())
                .with_cancel(self.cancel.clone());
            match search_protected(&engine, shard.sequences(), &cfg) {
                Ok(r) => {
                    sw_simd::record_stats(engine.kind(), &r.stats);
                    cells += shard.total_cells(req.query.len());
                    scores[q] = Some(r.scores);
                }
                Err(_cancelled) => {
                    cancelled = true;
                    break;
                }
            }
        }
        LaneDone {
            lane: self.lane,
            wave_id,
            shard_of,
            scores,
            cells,
            degraded: false,
            faulted: false,
            died: false,
            cancelled,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }
}
