//! The in-process front-end and wall-clock wave dispatcher.
//!
//! Architecture (one box per thread):
//!
//! ```text
//!  tenants ──► GatewayHandle::submit ──► mpsc ──► Dispatcher ──► device lane 0
//!                 (stamps arrival,                  │  ▲    ──► device lane 1
//!                  returns a Ticket)                │  │    ──► host SIMD lane
//!                                                   ▼  │
//!                                      admission / EDF batcher / health
//!                                      (same sw-serve types, WallClock)
//! ```
//!
//! The dispatcher owns the [`AdmissionQueue`], [`Batcher`] and
//! [`HealthTracker`] — the exact types the simulated service uses — and
//! replaces the discrete-event `run_trace` loop with a channel loop on
//! the monotonic [`WallClock`]: `recv_timeout` until the batcher's next
//! dispatch instant, fan each wave's shard parts out to lane workers,
//! and assemble full-database scores as parts come back. Waves pipeline:
//! up to [`GatewayConfig::max_inflight_waves`] waves may be in flight
//! across the lanes at once.
//!
//! **Overload semantics.** Arrivals are open-loop; the only backpressure
//! is the bounded admission queue and per-tenant quotas. A shed request
//! resolves its [`Ticket`] with [`Outcome::Shed`] immediately; an
//! admitted request resolves exactly once, ever — served, or aborted by
//! shutdown. End-to-end latency is `respond − enqueue` on the wall
//! clock, so queueing delay under overload lands in the p999, not on
//! the floor.
//!
//! **Drain.** `shutdown` closes intake, flushes the queue through the
//! batcher, and waits up to [`GatewayConfig::drain_grace_seconds`]; past
//! the grace it cancels in-flight and queued host chunks via the shared
//! [`CancelToken`] (the crash-only pool polls it every few stripe
//! columns) and aborts whatever remains. No path joins indefinitely.

use crate::lane::{spawn_device_lane, spawn_host_lane, LaneCmd, LaneDone, LaneHandle};
use cudasw_core::multi_gpu::shard_database;
use cudasw_core::{CudaSwConfig, RecoveryPolicy};
use gpu_sim::{DeviceSpec, FaultPlan};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;
use sw_db::Database;
use sw_serve::clock::{ServiceClock, WallClock};
use sw_serve::{
    AdmissionConfig, AdmissionQueue, BatchPolicy, Batcher, HealthPolicy, HealthTracker,
    SearchRequest, Shed, ShedReason, Wave,
};
use sw_simd::{CancelToken, HostFaultPlan};

/// Hard backstop after a forced cancel before the dispatcher abandons
/// unresponsive workers, seconds. Generous: a cancelled host chunk exits
/// at its first poll and device waves are bounded compute.
const ABANDON_AFTER_CANCEL_SECONDS: f64 = 10.0;

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// gpu-sim device lanes. The database is sharded over `devices + 1`
    /// lanes: the extra lane is the host SIMD lane.
    pub devices: usize,
    /// Worker threads for the host lane's work-stealing SIMD pool.
    pub host_threads: usize,
    /// Admission-control bounds (the only open-loop backpressure).
    pub admission: AdmissionConfig,
    /// Wave-forming policy; linger is real wall time here.
    pub batch: BatchPolicy,
    /// Driver configuration shared by every device lane.
    pub search: CudaSwConfig,
    /// Per-lane recovery policy (deadline budgets are stripped: wall
    /// mode bounds tails with admission + cancellation, not the modeled
    /// device clock).
    pub recovery: RecoveryPolicy,
    /// Cross-wave lane-health policy (breakers quarantine flaky lanes;
    /// their shard work routes to the host lane).
    pub health: HealthPolicy,
    /// Shed queued requests whose deadline already passed instead of
    /// serving them late.
    pub shed_expired: bool,
    /// Seeded fault schedule for host-lane work.
    pub host_faults: HostFaultPlan,
    /// Graceful-drain budget before shutdown cancels in-flight host
    /// chunks through the [`CancelToken`] path.
    pub drain_grace_seconds: f64,
    /// Maximum waves dispatched-but-unfinished at once (pipelining depth
    /// across the lane channels; also bounds how much queued work a
    /// forced drain must wait out).
    pub max_inflight_waves: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            devices: 2,
            host_threads: 1,
            admission: AdmissionConfig::default(),
            batch: BatchPolicy::default(),
            search: CudaSwConfig::improved(),
            recovery: RecoveryPolicy::default(),
            health: HealthPolicy::default(),
            shed_expired: false,
            host_faults: HostFaultPlan::none(),
            drain_grace_seconds: 5.0,
            max_inflight_waves: 4,
        }
    }
}

/// One served request, as the ticket holder sees it.
#[derive(Debug, Clone)]
pub struct GatewayResponse {
    /// The request id.
    pub id: u64,
    /// The tenant it belonged to.
    pub tenant: String,
    /// Full-database scores, `db.sequences()` order.
    pub scores: Vec<i32>,
    /// End-to-end `respond − enqueue`, wall seconds.
    pub latency_seconds: f64,
    /// True when the response missed its deadline (served anyway).
    pub deadline_missed: bool,
    /// True when part of the response was served off its device lane.
    pub degraded: bool,
}

/// The terminal state of a submitted request. Every ticket resolves to
/// exactly one of these.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Answered with full-database scores.
    Served(GatewayResponse),
    /// Refused by admission control.
    Shed(ShedReason),
    /// The gateway shut down before the request completed.
    Aborted,
}

/// A claim ticket for one submitted request.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<Outcome>,
}

impl Ticket {
    /// The request id this ticket tracks.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request resolves. A vanished dispatcher counts as
    /// an abort.
    pub fn wait(self) -> Outcome {
        self.rx.recv().unwrap_or(Outcome::Aborted)
    }

    /// [`Ticket::wait`], also counting any duplicate resolutions that
    /// arrive before the gateway drops its side of the channel. The
    /// exactly-once contract says the second value is always `0`.
    pub fn wait_counting_duplicates(self) -> (Outcome, usize) {
        let first = self.rx.recv().unwrap_or(Outcome::Aborted);
        let mut extra = 0;
        while self.rx.recv().is_ok() {
            extra += 1;
        }
        (first, extra)
    }
}

/// One response, summarized for the report (scores travel on the ticket,
/// not the report — a million-query run must not retain a million score
/// vectors).
#[derive(Debug, Clone)]
pub struct ResponseSummary {
    /// The request id.
    pub id: u64,
    /// The tenant it belonged to.
    pub tenant: String,
    /// End-to-end latency, wall seconds.
    pub latency_seconds: f64,
    /// True when the response missed its deadline.
    pub deadline_missed: bool,
    /// True when part of the response was served off its device lane.
    pub degraded: bool,
}

/// Everything a gateway run produced, returned by
/// [`Gateway::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct GatewayReport {
    /// Answered requests, completion order.
    pub responses: Vec<ResponseSummary>,
    /// Refused requests, arrival order.
    pub sheds: Vec<Shed>,
    /// Requests aborted by shutdown.
    pub aborted: Vec<u64>,
    /// Waves dispatched.
    pub waves: u64,
    /// DP cells computed across all lanes.
    pub total_cells: u64,
    /// Wall seconds from the first submission to the last completion.
    pub wall_seconds: f64,
    /// Device lanes lost over the run.
    pub lane_deaths: u64,
    /// Shard parts re-dispatched to the host lane (dead or quarantined
    /// device lanes).
    pub owed_to_host: u64,
    /// True when the drain grace expired and shutdown force-cancelled
    /// in-flight host work.
    pub forced_cancel: bool,
    /// The dispatcher thread's metrics snapshot (front-end counters and
    /// the end-to-end latency histogram).
    pub metrics: obs::MetricsRegistry,
}

impl GatewayReport {
    /// Requests offered: served + shed + aborted.
    pub fn offered(&self) -> usize {
        self.responses.len() + self.sheds.len() + self.aborted.len()
    }

    /// Aggregate throughput over the wall makespan, GCUPS.
    pub fn gcups(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.total_cells as f64 / self.wall_seconds / 1.0e9
        }
    }

    /// Completed queries per wall second.
    pub fn queries_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.responses.len() as f64 / self.wall_seconds
        }
    }

    /// Fraction of offered requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.sheds.len() as f64 / offered as f64
        }
    }

    /// Fraction of answered requests that missed their deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let missed = self.responses.iter().filter(|r| r.deadline_missed).count();
        missed as f64 / self.responses.len() as f64
    }

    /// Fraction of answered requests that were degraded.
    pub fn degraded_rate(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let n = self.responses.iter().filter(|r| r.degraded).count();
        n as f64 / self.responses.len() as f64
    }

    /// End-to-end latency at percentile `p` ∈ [0, 100] (nearest-rank on
    /// exact wall latencies; 0 when nothing completed).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.responses.iter().map(|r| r.latency_seconds).collect();
        lat.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.clamp(1, lat.len()) - 1]
    }
}

/// A message into the dispatcher.
pub(crate) enum FrontMsg {
    /// A tenant submission (arrival already stamped by the front-end).
    Submit {
        req: SearchRequest,
        reply: Sender<Outcome>,
    },
    /// A lane worker finished a shard part.
    Done(LaneDone),
    /// Close intake and drain.
    Drain,
}

/// The cloneable multi-tenant front-end: each tenant thread holds one
/// and submits independently.
#[derive(Clone)]
pub struct GatewayHandle {
    tx: Sender<FrontMsg>,
    clock: Arc<WallClock>,
}

impl GatewayHandle {
    /// Submit a request. The schedule's `arrival → deadline` slack is
    /// preserved, but both are re-stamped onto the wall clock at enqueue
    /// — this instant is what end-to-end latency is measured from.
    pub fn submit(&self, req: SearchRequest) -> Ticket {
        let now = self.clock.now();
        let slack = (req.deadline_seconds - req.arrival_seconds).max(0.0);
        let id = req.id;
        let req = SearchRequest {
            arrival_seconds: now,
            deadline_seconds: now + slack,
            ..req
        };
        obs::counter_add("cudasw.gateway.submitted", &[], 1.0);
        let (reply, rx) = std::sync::mpsc::channel();
        let _ = self.tx.send(FrontMsg::Submit { req, reply });
        Ticket { id, rx }
    }

    /// Wall seconds since the gateway started.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Sleep until gateway-relative instant `t` (open-loop pacing).
    pub fn wait_until(&self, t: f64) {
        self.clock.wait_until(t);
    }
}

/// The wall-clock serving gateway. Construction spawns the dispatcher
/// and lane worker threads; [`Gateway::shutdown`] drains and reports.
pub struct Gateway {
    handle: GatewayHandle,
    dispatcher: Option<std::thread::JoinHandle<GatewayReport>>,
    cancel: CancelToken,
}

impl Gateway {
    /// Bring up the gateway over `db`: `cfg.devices` gpu-sim lanes (with
    /// `plans[i]` installed on lane `i`) plus the host SIMD lane, all
    /// sharing one round-robin sharding of the database.
    pub fn start(
        spec: &DeviceSpec,
        cfg: &GatewayConfig,
        db: &Database,
        plans: &[FaultPlan],
    ) -> Self {
        let devices = cfg.devices;
        let k = devices + 1;
        let shards = shard_database(db, k);
        let clock = Arc::new(WallClock::new());
        let cancel = CancelToken::new();
        let (tx, rx) = std::sync::mpsc::channel();

        let mut device_lanes = Vec::with_capacity(devices);
        for (s, shard) in shards.iter().take(devices).cloned().enumerate() {
            device_lanes.push(spawn_device_lane(
                s,
                spec,
                &cfg.search,
                shard,
                plans.get(s).cloned().unwrap_or_else(FaultPlan::none),
                &cfg.recovery,
                tx.clone(),
            ));
        }
        let host = spawn_host_lane(
            devices,
            shards,
            cfg.host_threads.max(1),
            cfg.host_faults.clone(),
            cancel.clone(),
            tx.clone(),
        );

        let dispatcher = Dispatcher {
            cfg: cfg.clone(),
            clock: clock.clone(),
            cancel: cancel.clone(),
            rx,
            queue: AdmissionQueue::new(cfg.admission.clone()),
            batcher: Batcher::new(cfg.batch.clone()),
            health: HealthTracker::new(devices, cfg.health.clone()),
            device_lanes,
            lane_alive: vec![true; devices],
            host: Some(host),
            k,
            db_len: db.len(),
            replies: HashMap::new(),
            inflight: HashMap::new(),
            next_wave_id: 0,
            responses: Vec::new(),
            sheds: Vec::new(),
            aborted: Vec::new(),
            waves: 0,
            total_cells: 0,
            lane_deaths: 0,
            owed_to_host: 0,
            forced_cancel: false,
            first_submit: None,
            last_completion: 0.0,
        };
        let join = std::thread::spawn(move || dispatcher.run());
        Self {
            handle: GatewayHandle { tx, clock },
            dispatcher: Some(join),
            cancel,
        }
    }

    /// A cloneable front-end handle for tenant threads.
    pub fn handle(&self) -> GatewayHandle {
        self.handle.clone()
    }

    /// Submit a request from the owning thread (see
    /// [`GatewayHandle::submit`]).
    pub fn submit(&self, req: SearchRequest) -> Ticket {
        self.handle.submit(req)
    }

    /// Graceful drain: close intake, flush and serve the queue, then
    /// return the report. Past the drain grace, in-flight host chunks
    /// are cancelled and stragglers resolve as [`Outcome::Aborted`].
    pub fn shutdown(mut self) -> GatewayReport {
        let _ = self.handle.tx.send(FrontMsg::Drain);
        match self.dispatcher.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => GatewayReport::default(),
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        if let Some(h) = self.dispatcher.take() {
            // Abandonment (no shutdown call): cancel immediately rather
            // than waiting out the drain grace, then reap the threads.
            let _ = self.handle.tx.send(FrontMsg::Drain);
            self.cancel.cancel();
            let _ = h.join();
        }
    }
}

/// One in-flight wave's assembly state.
struct Inflight {
    wave: Arc<Wave>,
    /// Shard parts dispatched but not yet reported.
    parts_pending: usize,
    /// `[shard][logical request] → shard-order scores`.
    shard_scores: Vec<Vec<Option<Vec<i32>>>>,
    /// Shards already re-dispatched to the host lane (owed once, ever).
    owed_issued: Vec<bool>,
    /// A part of this wave was cut short by shutdown cancellation.
    cancelled: bool,
    /// Recovery machinery degraded part of the wave.
    degraded: bool,
    /// A device shard was served off-device.
    off_device: bool,
}

struct Dispatcher {
    cfg: GatewayConfig,
    clock: Arc<WallClock>,
    cancel: CancelToken,
    rx: Receiver<FrontMsg>,
    queue: AdmissionQueue,
    batcher: Batcher,
    health: HealthTracker,
    device_lanes: Vec<LaneHandle>,
    lane_alive: Vec<bool>,
    host: Option<LaneHandle>,
    k: usize,
    db_len: usize,
    replies: HashMap<u64, Sender<Outcome>>,
    inflight: HashMap<u64, Inflight>,
    next_wave_id: u64,
    responses: Vec<ResponseSummary>,
    sheds: Vec<Shed>,
    aborted: Vec<u64>,
    waves: u64,
    total_cells: u64,
    lane_deaths: u64,
    owed_to_host: u64,
    forced_cancel: bool,
    first_submit: Option<f64>,
    last_completion: f64,
}

impl Dispatcher {
    fn run(mut self) -> GatewayReport {
        let loop_start = self.clock.now();
        let mut draining = false;
        let mut drain_deadline = f64::INFINITY;
        let mut abandon_at = f64::INFINITY;
        loop {
            let now = self.clock.now();
            if self.cfg.shed_expired && !draining {
                for req in self.queue.take_expired(now) {
                    self.respond_shed(req.id, req.tenant, ShedReason::DeadlineExpired);
                }
            }
            // Dispatch as many waves as the pipelining depth allows. In
            // drain mode the batcher flushes (no-starvation), matching
            // the simulated scheduler's end-of-trace semantics.
            if !self.cancel.is_cancelled() {
                while self.inflight.len() < self.cfg.max_inflight_waves.max(1) {
                    let now = self.clock.now();
                    let Some(wave) = self.batcher.next_wave(&mut self.queue, now, draining) else {
                        break;
                    };
                    self.dispatch(wave, now);
                }
            }
            if draining {
                if self.queue.is_empty() && self.inflight.is_empty() {
                    break;
                }
                let now = self.clock.now();
                if !self.cancel.is_cancelled() && now >= drain_deadline {
                    // Drain grace expired: cancel in-flight and queued
                    // host chunks (the PR 8 CancelToken path) instead of
                    // joining indefinitely, and abort undispatched work.
                    self.cancel.cancel();
                    self.forced_cancel = true;
                    obs::counter_add("cudasw.gateway.drain.forced_cancels", &[], 1.0);
                    abandon_at = now + ABANDON_AFTER_CANCEL_SECONDS;
                    self.abort_queue();
                }
                if self.cancel.is_cancelled() && now >= abandon_at {
                    // Backstop: a worker stopped responding entirely.
                    self.abort_queue();
                    let ids: Vec<u64> = self.replies.keys().copied().collect();
                    for id in ids {
                        self.respond_aborted(id);
                    }
                    self.inflight.clear();
                    break;
                }
            }
            let now = self.clock.now();
            let timeout = if draining {
                Duration::from_millis(10)
            } else {
                match self.batcher.next_dispatch_at(&self.queue, now) {
                    Some(t) => Duration::from_secs_f64((t - now).clamp(2.0e-4, 0.25)),
                    None => Duration::from_millis(250),
                }
            };
            match self.rx.recv_timeout(timeout) {
                Ok(FrontMsg::Submit { req, reply }) => {
                    if draining {
                        // Intake is closed; resolve instead of queueing
                        // work that will never dispatch.
                        self.aborted.push(req.id);
                        obs::counter_add("cudasw.gateway.aborted", &[], 1.0);
                        let _ = reply.send(Outcome::Aborted);
                        continue;
                    }
                    if self.first_submit.is_none() {
                        self.first_submit = Some(req.arrival_seconds);
                    }
                    let id = req.id;
                    let tenant = req.tenant.clone();
                    match self.queue.offer(req) {
                        Ok(()) => {
                            obs::counter_add("cudasw.gateway.admitted", &[], 1.0);
                            self.replies.insert(id, reply);
                        }
                        Err(reason) => {
                            obs::counter_add(
                                "cudasw.gateway.shed",
                                &[("reason", reason.as_str())],
                                1.0,
                            );
                            self.sheds.push(Shed { id, tenant, reason });
                            let _ = reply.send(Outcome::Shed(reason));
                        }
                    }
                }
                Ok(FrontMsg::Done(done)) => self.integrate(done),
                Ok(FrontMsg::Drain) | Err(RecvTimeoutError::Disconnected) => {
                    if !draining {
                        draining = true;
                        drain_deadline = self.clock.now() + self.cfg.drain_grace_seconds.max(0.0);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        // Exactly-once: anything still unresolved is aborted before the
        // report goes out.
        let ids: Vec<u64> = self.replies.keys().copied().collect();
        for id in ids {
            self.respond_aborted(id);
        }
        // Stop and reap the workers (they drain their queued commands
        // first; cancelled host chunks exit at their first poll).
        let lanes = std::mem::take(&mut self.device_lanes);
        for lane in &lanes {
            let _ = lane.tx.send(LaneCmd::Stop);
        }
        if let Some(host) = &self.host {
            let _ = host.tx.send(LaneCmd::Stop);
        }
        for lane in lanes {
            let _ = lane.join.join();
        }
        if let Some(host) = self.host.take() {
            let _ = host.join.join();
        }
        let end = self.clock.now();
        let wall_seconds = match self.first_submit {
            Some(t0) => (self.last_completion.max(t0) - t0).max(0.0),
            None => (end - loop_start).max(0.0),
        };
        GatewayReport {
            responses: self.responses,
            sheds: self.sheds,
            aborted: self.aborted,
            waves: self.waves,
            total_cells: self.total_cells,
            wall_seconds,
            lane_deaths: self.lane_deaths,
            owed_to_host: self.owed_to_host,
            forced_cancel: self.forced_cancel,
            metrics: obs::snapshot_metrics(),
        }
    }

    /// Fan one wave's shard parts out to the lanes. Dead or quarantined
    /// device lanes have their shards owed to the host lane immediately.
    fn dispatch(&mut self, wave: Wave, now: f64) {
        let wave = Arc::new(wave);
        let wave_id = self.next_wave_id;
        self.next_wave_id += 1;
        let n = wave.requests.len();
        let devices = self.k - 1;
        let mut inf = Inflight {
            wave: wave.clone(),
            parts_pending: 0,
            shard_scores: vec![vec![None; n]; self.k],
            owed_issued: vec![false; self.k],
            cancelled: false,
            degraded: false,
            off_device: false,
        };
        for s in 0..devices {
            if self.lane_alive[s] && self.health.admits(s, now) {
                if self.device_lanes[s]
                    .tx
                    .send(LaneCmd::Exec {
                        wave_id,
                        wave: wave.clone(),
                    })
                    .is_ok()
                {
                    inf.parts_pending += 1;
                    continue;
                }
                // Worker thread is gone: treat as a lane death.
                self.lane_alive[s] = false;
                self.lane_deaths += 1;
                obs::counter_add("cudasw.gateway.lane_deaths", &[], 1.0);
            } else if self.lane_alive[s] {
                obs::counter_add("cudasw.gateway.breaker_skips", &[], 1.0);
            }
            if self.send_owed(&mut inf, wave_id, s) {
                inf.parts_pending += 1;
            }
        }
        if let Some(host) = &self.host {
            if host
                .tx
                .send(LaneCmd::Exec {
                    wave_id,
                    wave: wave.clone(),
                })
                .is_ok()
            {
                inf.parts_pending += 1;
            }
        }
        obs::counter_add("cudasw.gateway.waves", &[], 1.0);
        self.waves += 1;
        if inf.parts_pending == 0 {
            // No lane could take any part (all workers gone): abort.
            for req in wave.requests.iter() {
                self.respond_aborted(req.id);
            }
        } else {
            self.inflight.insert(wave_id, inf);
        }
    }

    /// Re-dispatch shard `s` of an in-flight wave to the host lane.
    /// Returns true when the command was accepted.
    fn send_owed(&mut self, inf: &mut Inflight, wave_id: u64, s: usize) -> bool {
        if inf.owed_issued[s] {
            return false;
        }
        inf.owed_issued[s] = true;
        if s != self.k - 1 {
            inf.off_device = true;
        }
        self.owed_to_host += 1;
        obs::counter_add("cudasw.gateway.owed_to_host", &[], 1.0);
        match &self.host {
            Some(host) => host
                .tx
                .send(LaneCmd::Owed {
                    wave_id,
                    wave: inf.wave.clone(),
                    shard_of: s,
                })
                .is_ok(),
            None => false,
        }
    }

    /// Fold one lane's shard part into its wave; finish the wave when
    /// every part reported.
    fn integrate(&mut self, done: LaneDone) {
        let now = self.clock.now();
        let devices = self.k - 1;
        if done.shard_of == done.lane && done.lane < devices {
            if done.died {
                if self.lane_alive[done.lane] {
                    self.lane_alive[done.lane] = false;
                    self.lane_deaths += 1;
                    obs::counter_add("cudasw.gateway.lane_deaths", &[], 1.0);
                }
                self.health.observe_death(done.lane, now);
            } else {
                self.health.observe_wave(done.lane, done.faulted, now);
                self.health.observe_latency(done.lane, done.seconds);
            }
        }
        self.total_cells += done.cells;
        let Some(inf) = self.inflight.get_mut(&done.wave_id) else {
            return;
        };
        if done.degraded {
            inf.degraded = true;
        }
        if done.cancelled {
            inf.cancelled = true;
        }
        for (q, part) in done.scores.into_iter().enumerate() {
            if let Some(v) = part {
                inf.shard_scores[done.shard_of][q] = Some(v);
            }
        }
        inf.parts_pending -= 1;
        if inf.parts_pending == 0 {
            self.finish_wave(done.wave_id);
        }
    }

    /// All parts of `wave_id` reported: re-owe missing shards once (dead
    /// lanes), then assemble and respond.
    fn finish_wave(&mut self, wave_id: u64) {
        let Some(mut inf) = self.inflight.remove(&wave_id) else {
            return;
        };
        let n = inf.wave.requests.len();
        if !inf.cancelled && !self.cancel.is_cancelled() {
            let missing: Vec<usize> = (0..self.k)
                .filter(|&s| inf.shard_scores[s].iter().any(|x| x.is_none()))
                .collect();
            let mut reissued = false;
            for s in missing {
                if self.send_owed(&mut inf, wave_id, s) {
                    inf.parts_pending += 1;
                    reissued = true;
                }
            }
            if reissued {
                self.inflight.insert(wave_id, inf);
                return;
            }
        }
        let now = self.clock.now();
        let degraded = inf.degraded || inf.off_device;
        for q in 0..n {
            let req = &inf.wave.requests[q];
            let complete = (0..self.k).all(|s| inf.shard_scores[s][q].is_some());
            if !complete {
                // Only reachable through shutdown cancellation (or a
                // worker lost with no host lane left to absorb it).
                self.respond_aborted(req.id);
                continue;
            }
            let mut scores = vec![0i32; self.db_len];
            for (s, per_shard) in inf.shard_scores.iter().enumerate() {
                if let Some(part) = &per_shard[q] {
                    for (j, &v) in part.iter().enumerate() {
                        scores[s + j * self.k] = v;
                    }
                }
            }
            let latency = now - req.arrival_seconds;
            let deadline_missed = now > req.deadline_seconds;
            self.respond_served(
                req.id,
                req.tenant.clone(),
                scores,
                latency,
                deadline_missed,
                degraded,
            );
        }
        self.last_completion = now;
    }

    /// Resolve a ticket exactly once. A second resolution attempt for
    /// the same id is a bug, surfaced on the `duplicate_commits` counter
    /// (pinned to 0 by the tests) rather than a double send.
    fn take_reply(&mut self, id: u64) -> Option<Sender<Outcome>> {
        let found = self.replies.remove(&id);
        if found.is_none() {
            obs::counter_add("cudasw.gateway.duplicate_commits", &[], 1.0);
        }
        found
    }

    fn respond_served(
        &mut self,
        id: u64,
        tenant: String,
        scores: Vec<i32>,
        latency_seconds: f64,
        deadline_missed: bool,
        degraded: bool,
    ) {
        let Some(reply) = self.take_reply(id) else {
            return;
        };
        // End-to-end latency at the front-end: enqueue → response.
        obs::observe_latency("cudasw.serve.latency_seconds", &[], latency_seconds);
        obs::counter_add("cudasw.gateway.completed", &[], 1.0);
        self.responses.push(ResponseSummary {
            id,
            tenant: tenant.clone(),
            latency_seconds,
            deadline_missed,
            degraded,
        });
        let _ = reply.send(Outcome::Served(GatewayResponse {
            id,
            tenant,
            scores,
            latency_seconds,
            deadline_missed,
            degraded,
        }));
    }

    fn respond_shed(&mut self, id: u64, tenant: String, reason: ShedReason) {
        let Some(reply) = self.take_reply(id) else {
            return;
        };
        obs::counter_add("cudasw.gateway.shed", &[("reason", reason.as_str())], 1.0);
        self.sheds.push(Shed { id, tenant, reason });
        let _ = reply.send(Outcome::Shed(reason));
    }

    fn respond_aborted(&mut self, id: u64) {
        let Some(reply) = self.take_reply(id) else {
            return;
        };
        obs::counter_add("cudasw.gateway.aborted", &[], 1.0);
        self.aborted.push(id);
        let _ = reply.send(Outcome::Aborted);
    }

    /// Abort everything still queued (forced drain: it will never
    /// dispatch).
    fn abort_queue(&mut self) {
        let idx: Vec<usize> = (0..self.queue.depth()).collect();
        if idx.is_empty() {
            return;
        }
        for req in self.queue.take(&idx) {
            self.respond_aborted(req.id);
        }
    }
}
