//! `sw-gateway`: wall-clock real-time serving over the `sw-serve` stack.
//!
//! Every sw-serve number before this crate came from the discrete-event
//! simulated clock. The gateway is the other execution mode: the *same*
//! admission queue, EDF batcher, deadline semantics and lane-health
//! breakers, but driven by [`sw_serve::clock::WallClock`] with waves
//! executing **concurrently** on real worker threads:
//!
//! * [`gateway`] — the in-process front-end and dispatcher. Tenants
//!   submit through a cloneable [`GatewayHandle`] and get a [`Ticket`]
//!   per request; a dispatcher thread owns admission/batching/health and
//!   fans waves out over channels; latency is accounted **end-to-end**
//!   (front-end enqueue → response), so tail percentiles include
//!   queueing delay under overload — not just per-wave service time.
//! * [`lane`] — the execution backend: one worker thread per gpu-sim
//!   shard lane (device-resident staging fast path, resilient fallback,
//!   lane-death reporting) plus one host lane running shard work on the
//!   crash-only work-stealing SIMD pool
//!   ([`sw_simd::search_protected`], multi-threaded). Work owed by dead
//!   or breaker-quarantined device lanes is re-dispatched to the host
//!   lane — the wall-clock analogue of the simulated redispatch ladder.
//! * [`loadgen`] — a seeded open-loop load generator: deterministic
//!   arrival schedules under steady, bursty and overload profiles
//!   (Poisson arrivals; the bursty profile alternates hot and cold
//!   phases) and a driver that replays a schedule against a gateway in
//!   real time.
//!
//! Shutdown is crash-only friendly: [`gateway::Gateway::shutdown`]
//! drains gracefully, and when the drain grace expires it cancels
//! in-flight and queued host chunks through the PR 8
//! [`sw_simd::CancelToken`] path instead of joining indefinitely —
//! every outstanding request still resolves exactly once (as
//! [`gateway::Outcome::Aborted`]).
//!
//! Scores are exact integer Smith-Waterman scores on every path, so a
//! gateway response is bit-identical to the simulated service's answer
//! for the same query — the property the both-clock-modes test pins.
//!
//! Metrics (`cudasw.gateway.*`): `submitted`, `admitted`, `shed{reason}`,
//! `waves`, `completed`, `aborted`, `lane_deaths`, `owed_to_host`,
//! `breaker_skips`, `duplicate_commits` (always 0),
//! `drain.forced_cancels`; plus the shared end-to-end
//! `cudasw.serve.latency_seconds` histogram on
//! [`obs::LATENCY_SECONDS_BOUNDS`]. Worker-thread metrics stay on the
//! worker's thread-local recorder; the dispatcher snapshot in
//! [`gateway::GatewayReport::metrics`] covers the front-end view.
// Crash-only discipline: library code may not panic through `unwrap` /
// `expect` — every fallible path must recover or return a typed error.
// (Unit tests, compiled with `cfg(test)`, are exempt.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gateway;
pub mod lane;
pub mod loadgen;

pub use gateway::{
    Gateway, GatewayConfig, GatewayHandle, GatewayReport, GatewayResponse, Outcome,
    ResponseSummary, Ticket,
};
pub use loadgen::{drive, LoadConfig, LoadProfile};
