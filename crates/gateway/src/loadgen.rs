//! Seeded open-loop load generation against a live gateway.
//!
//! The generator produces a deterministic arrival *schedule* (gateway-
//! relative instants, queries, deadline slacks) from a seed, and
//! [`drive`] replays that schedule in real time: sleep until each
//! arrival instant, submit, keep the ticket. Arrivals are **open-loop**
//! — the next submission never waits for the previous response — so
//! overload manifests as queueing delay and shed, exactly like the
//! simulated traces in [`sw_serve::TraceConfig`], but on the wall
//! clock.
//!
//! Three profiles shape the arrival process:
//!
//! * [`LoadProfile::Steady`] — Poisson arrivals at the configured mean
//!   rate; the service should keep up.
//! * [`LoadProfile::Bursty`] — alternating hot/cold phases of
//!   [`LoadConfig::burst_period_seconds`]: hot phases run
//!   `burst_factor×` the steady rate, cold phases `1/burst_factor×`.
//!   Stresses the EDF batcher and the admission queue's depth bound.
//! * [`LoadProfile::Overload`] — sustained `overload_factor×` the
//!   steady rate. The open-loop arrivals outrun service capacity; the
//!   gateway must shed (bounded queue, tenant quotas) rather than let
//!   latency grow without bound.
//!
//! Schedules are pure functions of the config (seed included): the
//! determinism proptest pins that equal configs produce byte-identical
//! schedules and different seeds diverge.

use crate::gateway::{GatewayHandle, Ticket};
use rand::{rngs::StdRng, Rng, SeedableRng};
use sw_align::SwParams;
use sw_db::synth::make_query;
use sw_serve::SearchRequest;

/// Arrival-process shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadProfile {
    /// Poisson arrivals at the steady mean rate.
    Steady,
    /// Alternating hot/cold phases around the steady rate.
    Bursty,
    /// Sustained arrivals past service capacity.
    Overload,
}

impl LoadProfile {
    /// Stable lowercase name (bench configs, reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            LoadProfile::Steady => "steady",
            LoadProfile::Bursty => "bursty",
            LoadProfile::Overload => "overload",
        }
    }
}

/// Configuration of a seeded open-loop load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Arrival-process shape.
    pub profile: LoadProfile,
    /// Number of requests to generate.
    pub requests: usize,
    /// Tenant names to draw from (uniformly).
    pub tenants: Vec<String>,
    /// Mean interarrival gap at the steady rate, wall seconds.
    pub mean_interarrival_seconds: f64,
    /// Hot/cold phase length for [`LoadProfile::Bursty`], seconds.
    pub burst_period_seconds: f64,
    /// Rate multiplier inside a hot phase (and divisor inside a cold
    /// one) for [`LoadProfile::Bursty`].
    pub burst_factor: f64,
    /// Rate multiplier for [`LoadProfile::Overload`].
    pub overload_factor: f64,
    /// Query lengths, drawn uniformly from this inclusive range.
    pub query_len: (usize, usize),
    /// Deadline slack over the arrival instant, drawn uniformly from
    /// this range of seconds.
    pub deadline_slack_seconds: (f64, f64),
    /// Parameter classes to draw from (uniformly); distinct classes
    /// never share a wave.
    pub param_classes: Vec<SwParams>,
    /// RNG seed; equal configs generate identical schedules.
    pub seed: u64,
}

impl LoadConfig {
    /// A small steady run: one tenant, one parameter class.
    pub fn small(requests: usize, seed: u64) -> Self {
        Self {
            profile: LoadProfile::Steady,
            requests,
            tenants: vec!["tenant-a".to_string()],
            mean_interarrival_seconds: 2.0e-3,
            burst_period_seconds: 0.25,
            burst_factor: 4.0,
            overload_factor: 8.0,
            query_len: (24, 64),
            deadline_slack_seconds: (0.5, 1.0),
            param_classes: vec![SwParams::cudasw_default()],
            seed,
        }
    }

    /// The profile's effective mean interarrival at instant `now`.
    fn mean_at(&self, now: f64) -> f64 {
        match self.profile {
            LoadProfile::Steady => self.mean_interarrival_seconds,
            LoadProfile::Overload => self.mean_interarrival_seconds / self.overload_factor.max(1.0),
            LoadProfile::Bursty => {
                let period = self.burst_period_seconds.max(1.0e-6);
                let factor = self.burst_factor.max(1.0);
                // Hot phase first, then cold, alternating.
                if ((now / period) as u64).is_multiple_of(2) {
                    self.mean_interarrival_seconds / factor
                } else {
                    self.mean_interarrival_seconds * factor
                }
            }
        }
    }

    /// Generate the schedule: arrival-sorted requests with ids
    /// `0..requests` and gateway-relative arrival instants. Pure
    /// function of `self`.
    pub fn schedule(&self) -> Vec<SearchRequest> {
        assert!(!self.tenants.is_empty(), "need at least one tenant");
        assert!(!self.param_classes.is_empty(), "need a parameter class");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4C4F_4144); // "LOAD"
        let mut now = 0.0f64;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            // Exponential interarrival at the phase-local rate:
            // -mean · ln(1 - U), U ∈ [0, 1).
            let u: f64 = rng.gen_range(0.0..1.0);
            now += -self.mean_at(now) * (1.0 - u).ln();
            let tenant = self.tenants[rng.gen_range(0..self.tenants.len())].clone();
            let params = self.param_classes[rng.gen_range(0..self.param_classes.len())].clone();
            let (lo, hi) = self.query_len;
            let len = rng.gen_range(lo..=hi);
            let (slo, shi) = self.deadline_slack_seconds;
            let slack = if shi > slo {
                rng.gen_range(slo..shi)
            } else {
                slo
            };
            out.push(SearchRequest {
                id,
                tenant,
                query: make_query(len, self.seed ^ id),
                params,
                arrival_seconds: now,
                deadline_seconds: now + slack,
            });
        }
        out
    }
}

/// Replay `schedule` against the gateway in real time: for each request,
/// sleep until its arrival instant (relative to the first call), submit,
/// collect the ticket. Returns tickets in submission order.
///
/// Open-loop: submission never waits on outcomes. Resolve the tickets
/// (e.g. from another thread, or after the driver returns) to observe
/// responses.
pub fn drive(handle: &GatewayHandle, schedule: &[SearchRequest]) -> Vec<Ticket> {
    let base = handle.now();
    let mut tickets = Vec::with_capacity(schedule.len());
    for req in schedule {
        handle.wait_until(base + req.arrival_seconds);
        tickets.push(handle.submit(req.clone()));
    }
    tickets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_stable_names() {
        assert_eq!(LoadProfile::Steady.as_str(), "steady");
        assert_eq!(LoadProfile::Bursty.as_str(), "bursty");
        assert_eq!(LoadProfile::Overload.as_str(), "overload");
    }

    #[test]
    fn overload_schedule_arrives_faster() {
        let steady = LoadConfig::small(200, 9).schedule();
        let overload = LoadConfig {
            profile: LoadProfile::Overload,
            ..LoadConfig::small(200, 9)
        }
        .schedule();
        let last = |s: &[SearchRequest]| s.last().map_or(0.0, |r| r.arrival_seconds);
        assert!(last(&overload) < last(&steady) / 2.0);
    }

    #[test]
    fn bursty_alternates_rates() {
        let cfg = LoadConfig {
            profile: LoadProfile::Bursty,
            ..LoadConfig::small(2_000, 11)
        };
        // Count arrivals in hot vs cold phases; hot must dominate.
        let sched = cfg.schedule();
        let period = cfg.burst_period_seconds;
        let (mut hot, mut cold) = (0usize, 0usize);
        for r in &sched {
            if ((r.arrival_seconds / period) as u64).is_multiple_of(2) {
                hot += 1;
            } else {
                cold += 1;
            }
        }
        assert!(hot > cold * 2, "hot {hot} cold {cold}");
    }
}
