//! Both-clock-modes contract: the wall-clock gateway and the simulated
//! service give **bit-identical answers** for the same queries.
//!
//! Scores are exact integer Smith-Waterman scores on every engine and
//! every path (device kernels, host SIMD, owed re-dispatch), so the
//! clock — simulated or monotonic — must not change a single score.
//! Timing-dependent *policy* outcomes (which wave a request lands in,
//! queueing latency) legitimately differ between modes; correctness
//! outcomes (scores, exactly-once resolution, shed-free under light
//! load) must not.

use cudasw_core::{CudaSwConfig, CudaSwDriver, ImprovedParams, RecoveryPolicy};
use gpu_sim::DeviceSpec;
use sw_db::synth::database_with_lengths;
use sw_db::Database;
use sw_gateway::loadgen::drive;
use sw_gateway::{Gateway, GatewayConfig, Outcome};
use sw_serve::{SearchService, ServeConfig, TraceConfig};

fn spec() -> DeviceSpec {
    DeviceSpec::tesla_c1060()
}

fn search_config() -> CudaSwConfig {
    CudaSwConfig {
        threshold: 100,
        improved: ImprovedParams {
            threads_per_block: 32,
            tile_height: 4,
        },
        ..CudaSwConfig::improved()
    }
}

fn test_db() -> Database {
    database_with_lengths(
        "gateway-db",
        &[20, 35, 45, 60, 80, 95, 110, 120, 150, 300],
        71,
    )
}

/// Ground truth: a standalone resilient search on a clean device.
fn standalone_scores(query: &[u8], db: &Database) -> Vec<i32> {
    let mut driver = CudaSwDriver::new(spec(), search_config());
    driver
        .search_resilient(query, db, &RecoveryPolicy::default())
        .expect("clean standalone search")
        .result
        .scores
}

#[test]
fn wall_and_simulated_clocks_give_bit_identical_answers() {
    let db = test_db();
    // Light load, generous deadlines: both modes must be shed-free so
    // the answer sets line up one-to-one.
    let trace = TraceConfig {
        mean_interarrival_seconds: 2.0e-3,
        deadline_slack_seconds: (30.0, 60.0),
        tenants: vec!["tenant-a".into(), "tenant-b".into()],
        ..TraceConfig::small(24, 9)
    }
    .generate();

    // Simulated-clock mode: the discrete-event service, 2 device lanes.
    let sim_cfg = ServeConfig {
        devices: 2,
        search: search_config(),
        ..ServeConfig::default()
    };
    let mut service = SearchService::new(&spec(), &sim_cfg, &db, &[]);
    let sim = service.run_trace(&trace).expect("sim run");
    assert!(
        sim.sheds.is_empty(),
        "sim must be shed-free under light load"
    );

    // Wall-clock mode: the gateway, 2 device lanes + the host lane.
    let gw_cfg = GatewayConfig {
        devices: 2,
        host_threads: 1,
        search: search_config(),
        drain_grace_seconds: 60.0,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(&spec(), &gw_cfg, &db, &[]);
    let tickets = drive(&gateway.handle(), &trace);
    let mut wall_scores = std::collections::HashMap::new();
    let mut duplicates = 0usize;
    for t in tickets {
        let id = t.id();
        let (outcome, extra) = t.wait_counting_duplicates();
        duplicates += extra;
        match outcome {
            Outcome::Served(resp) => {
                assert_eq!(resp.id, id);
                assert!(resp.latency_seconds >= 0.0);
                assert!(!resp.deadline_missed, "generous deadlines never miss");
                let prev = wall_scores.insert(id, resp.scores);
                assert!(prev.is_none(), "request {id} answered twice");
            }
            other => panic!("request {id} not served under light load: {other:?}"),
        }
    }
    assert_eq!(duplicates, 0, "exactly-once: no duplicate resolutions");
    let report = gateway.shutdown();
    assert!(report.sheds.is_empty(), "gateway must be shed-free too");
    assert!(report.aborted.is_empty(), "graceful drain aborts nothing");
    assert!(!report.forced_cancel);
    assert_eq!(report.responses.len(), trace.len());
    assert_eq!(
        report
            .metrics
            .counter("cudasw.gateway.duplicate_commits", &[]),
        0.0
    );
    assert!(report.gcups() > 0.0);
    // End-to-end latency landed in the shared serving histogram.
    let hist = report
        .metrics
        .histogram("cudasw.serve.latency_seconds", &[])
        .expect("latency histogram recorded");
    assert_eq!(hist.count, trace.len() as u64);
    assert_eq!(hist.bounds, obs::LATENCY_SECONDS_BOUNDS);

    // The contract: per-request scores agree across clock modes, and
    // both agree with the standalone ground truth.
    assert_eq!(sim.responses.len(), trace.len());
    for resp in &sim.responses {
        let wall = &wall_scores[&resp.id];
        assert_eq!(
            &resp.scores, wall,
            "request {}: simulated and wall-clock scores must be bit-identical",
            resp.id
        );
        let req = trace.iter().find(|r| r.id == resp.id).expect("trace id");
        assert_eq!(
            wall,
            &standalone_scores(&req.query, &db),
            "request {}: gateway scores must match standalone ground truth",
            resp.id
        );
    }
}

#[test]
fn deterministic_shed_decisions_match_under_saturated_admission() {
    // Saturate the *admission queue*, the clock-independent part of
    // shedding: with a zero-capacity tenant quota every request sheds
    // with the same reason in both modes, regardless of timing.
    let db = test_db();
    let trace = TraceConfig::small(6, 21).generate();
    let admission = sw_serve::AdmissionConfig {
        queue_capacity: 256,
        tenant_quota: 0,
    };

    let sim_cfg = ServeConfig {
        devices: 1,
        search: search_config(),
        admission: admission.clone(),
        ..ServeConfig::default()
    };
    let mut service = SearchService::new(&spec(), &sim_cfg, &db, &[]);
    let sim = service.run_trace(&trace).expect("sim run");
    assert_eq!(sim.sheds.len(), trace.len());

    let gw_cfg = GatewayConfig {
        devices: 1,
        search: search_config(),
        admission,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(&spec(), &gw_cfg, &db, &[]);
    let tickets = drive(&gateway.handle(), &trace);
    for t in tickets {
        match t.wait() {
            Outcome::Shed(reason) => assert_eq!(reason, sw_serve::ShedReason::TenantQuota),
            other => panic!("expected shed, got {other:?}"),
        }
    }
    let report = gateway.shutdown();
    assert_eq!(report.sheds.len(), trace.len());
    assert!(sim
        .sheds
        .iter()
        .zip(report.sheds.iter())
        .all(|(a, b)| a.reason == b.reason));
}
