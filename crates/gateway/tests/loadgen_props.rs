//! Load-generator determinism properties: a schedule is a pure function
//! of its config — equal configs (seed included) produce byte-identical
//! schedules under every profile; different seeds diverge. Without this,
//! `repro serve-rt` runs would not be reproducible across hosts.

use proptest::prelude::*;
use sw_gateway::{LoadConfig, LoadProfile};

fn profile_of(tag: u8) -> LoadProfile {
    match tag % 3 {
        0 => LoadProfile::Steady,
        1 => LoadProfile::Bursty,
        _ => LoadProfile::Overload,
    }
}

proptest! {
    #[test]
    fn schedule_is_a_pure_function_of_config(
        seed in any::<u64>(),
        n in 1usize..80,
        tag in 0u8..3,
    ) {
        let cfg = LoadConfig {
            profile: profile_of(tag),
            tenants: vec!["a".into(), "b".into(), "c".into()],
            ..LoadConfig::small(n, seed)
        };
        let s1 = cfg.schedule();
        let s2 = cfg.schedule();
        prop_assert_eq!(s1.len(), n);
        prop_assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(&s2) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.tenant, &b.tenant);
            prop_assert_eq!(&a.query, &b.query);
            prop_assert_eq!(a.arrival_seconds, b.arrival_seconds);
            prop_assert_eq!(a.deadline_seconds, b.deadline_seconds);
        }
        // Structural invariants: ids dense, arrivals sorted and strictly
        // positive gaps impossible to reorder, lengths and slacks in range.
        let (lo, hi) = cfg.query_len;
        let (slo, shi) = cfg.deadline_slack_seconds;
        for (i, r) in s1.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64);
            prop_assert!((lo..=hi).contains(&r.query.len()));
            let slack = r.deadline_seconds - r.arrival_seconds;
            prop_assert!(slack >= slo && slack <= shi.max(slo));
        }
        prop_assert!(s1.windows(2).all(|w| w[0].arrival_seconds <= w[1].arrival_seconds));
        prop_assert!(s1.iter().all(|r| r.arrival_seconds >= 0.0));
    }

    #[test]
    fn different_seeds_diverge(seed in any::<u64>(), tag in 0u8..3) {
        let mk = |s: u64| LoadConfig {
            profile: profile_of(tag),
            ..LoadConfig::small(24, s)
        }
        .schedule();
        let a = mk(seed);
        let b = mk(seed ^ 0x9E37_79B9_7F4A_7C15);
        prop_assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.query != y.query || x.arrival_seconds != y.arrival_seconds)
        );
    }
}
