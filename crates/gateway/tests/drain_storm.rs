//! Drain under a host-stall storm: shutdown must stay bounded even when
//! the host lane's fault plan stalls chunks, because the forced-drain
//! path cancels in-flight and queued host chunks through the PR 8
//! [`sw_simd::CancelToken`] (the crash-only pool polls it at every chunk
//! start, *before* the injected stall sleep). The exactly-once contract
//! holds throughout: offered = served + shed + aborted, every ticket
//! resolves once.

use cudasw_core::{CudaSwConfig, ImprovedParams};
use gpu_sim::DeviceSpec;
use std::time::Instant;
use sw_db::synth::database_with_lengths;
use sw_gateway::loadgen::drive;
use sw_gateway::{Gateway, GatewayConfig, LoadConfig, Outcome};
use sw_simd::{HostFaultPlan, HostFaultRates};

#[test]
fn forced_drain_cancels_stalled_host_chunks_and_resolves_every_ticket() {
    let db = database_with_lengths(
        "storm-db",
        &[20, 35, 45, 60, 80, 95, 110, 120, 150, 300],
        71,
    );
    // Stall storm on the host lane: most chunks sleep 150 ms before
    // computing. With a ~0.2 s drain grace, queued waves cannot finish
    // politely — shutdown must take the cancel path.
    let stall_plan = HostFaultPlan::random(
        0xD5A1,
        HostFaultRates {
            panic: 0.0,
            stall: 0.9,
            alloc_fail: 0.0,
        },
    )
    .with_stall_ms(150);
    let cfg = GatewayConfig {
        devices: 1,
        host_threads: 1,
        search: CudaSwConfig {
            threshold: 100,
            improved: ImprovedParams {
                threads_per_block: 32,
                tile_height: 4,
            },
            ..CudaSwConfig::improved()
        },
        host_faults: stall_plan,
        drain_grace_seconds: 0.2,
        ..GatewayConfig::default()
    };
    // A quick burst of submissions, then immediate shutdown while the
    // stalled host lane still owes most of its shard parts.
    let schedule = LoadConfig {
        mean_interarrival_seconds: 1.0e-4,
        deadline_slack_seconds: (30.0, 60.0),
        ..LoadConfig::small(30, 77)
    }
    .schedule();

    let started = Instant::now();
    let gateway = Gateway::start(&DeviceSpec::tesla_c1060(), &cfg, &db, &[]);
    let tickets = drive(&gateway.handle(), &schedule);
    let report = gateway.shutdown();
    let elapsed = started.elapsed().as_secs_f64();

    // Bounded shutdown: the grace is 0.2 s and a cancelled chunk exits at
    // its first poll; nothing waits out 30 × 150 ms of stalls serially.
    assert!(
        elapsed < 15.0,
        "drain must be bounded under a stall storm, took {elapsed:.1}s"
    );
    assert!(
        report.forced_cancel,
        "a 0.2s grace under 150ms stalls must force-cancel"
    );
    assert_eq!(
        report
            .metrics
            .counter("cudasw.gateway.drain.forced_cancels", &[]),
        1.0
    );

    // Exactly-once accounting across the storm.
    assert_eq!(
        report.offered(),
        schedule.len(),
        "served {} + shed {} + aborted {} must equal offered {}",
        report.responses.len(),
        report.sheds.len(),
        report.aborted.len(),
        schedule.len()
    );
    assert_eq!(
        report
            .metrics
            .counter("cudasw.gateway.duplicate_commits", &[]),
        0.0
    );
    let mut resolved = 0usize;
    for t in tickets {
        let (outcome, extra) = t.wait_counting_duplicates();
        assert_eq!(extra, 0, "no ticket resolves twice");
        match outcome {
            Outcome::Served(resp) => assert!(resp.latency_seconds >= 0.0),
            Outcome::Shed(_) | Outcome::Aborted => {}
        }
        resolved += 1;
    }
    assert_eq!(resolved, schedule.len());
    // The storm actually aborted something (otherwise the test proves
    // nothing about cancellation).
    assert!(
        !report.aborted.is_empty(),
        "expected in-flight or queued work to be cut short"
    );
}
