//! Differential property tests across dispatched backends.
//!
//! The tentpole invariant of the host backend: **scores are bit-identical
//! everywhere**. For random sequences and gap models, byte mode, word
//! mode, and every backend available on this host (AVX2 / SSE2 / NEON /
//! portable) must produce exactly the score of the `sw_align` scalar
//! reference — and the byte-mode overflow verdict must not depend on the
//! backend's lane count either.

use proptest::prelude::*;
use sw_align::smith_waterman::{sw_score, SwParams};
use sw_simd::{AdaptiveStats, BackendKind, Precision, QueryEngine};

fn protein_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 1..=max_len)
}

fn params() -> SwParams {
    SwParams::cudasw_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_backend_equals_scalar_adaptive(q in protein_seq(150), d in protein_seq(150)) {
        let p = params();
        let expected = sw_score(&p, &q, &d);
        for kind in BackendKind::available() {
            let engine = QueryEngine::with_backend(p.clone(), &q, kind);
            let mut stats = AdaptiveStats::default();
            let got = engine.score_with(&d, Precision::Adaptive, &mut stats);
            prop_assert_eq!(got, expected, "adaptive mismatch on {}", kind);
        }
    }

    #[test]
    fn every_backend_equals_scalar_word(q in protein_seq(100), d in protein_seq(100)) {
        let p = params();
        let expected = sw_score(&p, &q, &d);
        for kind in BackendKind::available() {
            let engine = QueryEngine::with_backend(p.clone(), &q, kind);
            let mut stats = AdaptiveStats::default();
            let got = engine.score_with(&d, Precision::Word, &mut stats);
            prop_assert_eq!(got, expected, "word mismatch on {}", kind);
        }
    }

    #[test]
    fn overflow_verdict_is_backend_independent(q in protein_seq(120), d in protein_seq(120)) {
        // The byte-mode overflow check triggers on the running maximum,
        // which is layout-independent — so whether a pair fell back to
        // word mode must agree across lane counts.
        let p = params();
        let mut verdicts = Vec::new();
        for kind in BackendKind::available() {
            let engine = QueryEngine::with_backend(p.clone(), &q, kind);
            let mut stats = AdaptiveStats::default();
            engine.score_with(&d, Precision::Adaptive, &mut stats);
            verdicts.push((kind, stats.word_fallbacks));
        }
        for window in verdicts.windows(2) {
            prop_assert_eq!(
                window[0].1, window[1].1,
                "overflow verdict differs: {} vs {}", window[0].0, window[1].0
            );
        }
    }

    #[test]
    fn every_backend_with_other_gap_models(
        q in protein_seq(60),
        d in protein_seq(60),
        open in 1i32..20,
        extend in 1i32..5,
    ) {
        prop_assume!(open >= extend);
        let mut p = params();
        p.gaps = sw_align::GapPenalties::new(open, extend).unwrap();
        let expected = sw_score(&p, &q, &d);
        for kind in BackendKind::available() {
            let engine = QueryEngine::with_backend(p.clone(), &q, kind);
            let mut stats = AdaptiveStats::default();
            let got = engine.score_with(&d, Precision::Adaptive, &mut stats);
            prop_assert_eq!(got, expected, "gaps=({},{}) on {}", open, extend, kind);
        }
    }
}

/// Deliberately overflow-prone input: long near-identical sequences score
/// far above 255, so every backend must take the word-mode rerun path and
/// still agree with the scalar reference.
#[test]
fn forced_overflow_agrees_everywhere() {
    let p = params();
    let q: Vec<u8> = (0..400).map(|i| (i % 20) as u8).collect();
    let mut d = q.clone();
    d[13] = (d[13] + 1) % 20;
    let expected = sw_score(&p, &q, &d);
    assert!(expected > 255, "case must exceed the byte range");
    for kind in BackendKind::available() {
        let engine = QueryEngine::with_backend(p.clone(), &q, kind);
        let mut stats = AdaptiveStats::default();
        assert_eq!(
            engine.score_with(&d, Precision::Adaptive, &mut stats),
            expected,
            "{kind}"
        );
        assert_eq!(stats.word_fallbacks, 1, "{kind} must have fallen back");
        assert!(stats.lazy_f_byte > 0, "{kind} byte pass counted");
        assert!(stats.lazy_f_word > 0, "{kind} word rerun counted");
    }
}

/// The `SW_SIMD_BACKEND` names round-trip through detection when the
/// backend is available (exercised here for every *available* kind without
/// mutating the process environment).
#[test]
fn engines_report_their_backend() {
    let p = params();
    let q: Vec<u8> = (0..40).map(|i| (i % 20) as u8).collect();
    for kind in BackendKind::available() {
        let engine = QueryEngine::with_backend(p.clone(), &q, kind);
        assert_eq!(engine.kind(), kind);
    }
}
