//! Cooperative cancellation is all-or-nothing.
//!
//! The contract of `search_with_cancel` / `QueryEngine::score_with_cancel`:
//! for *any* cancellation point, the search either completes with scores
//! bit-identical to the uncancelled run or returns `Cancelled` — never a
//! partial, reordered, or perturbed result. `CancelToken::after_polls`
//! makes the cancellation point deterministic (the poll sequence of a
//! single-threaded search is a pure function of the workload), so the
//! property is exhaustive over poll budgets, backends, and kernel modes.

use proptest::prelude::*;
use sw_align::smith_waterman::SwParams;
use sw_db::synth::{database_with_lengths, make_query};
use sw_db::Sequence;
use sw_simd::{
    search_sequences, search_with_cancel, AdaptiveStats, BackendKind, CancelToken, Cancelled,
    KernelMode, Precision, QueryEngine, CANCEL_CHECK_COLS,
};

fn params() -> SwParams {
    SwParams::cudasw_default()
}

fn protein_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 1..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Pool-level: any poll budget yields the full bit-identical result
    // or `Cancelled`, with no partial scores observable.
    #[test]
    fn pool_cancellation_is_all_or_nothing(
        q in protein_seq(100),
        db in proptest::collection::vec(protein_seq(120), 1..8),
        budget in 0u64..600,
    ) {
        let seqs: Vec<Sequence> = db
            .into_iter()
            .enumerate()
            .map(|(i, residues)| Sequence::new(format!("s{i}"), residues))
            .collect();
        let engine = QueryEngine::new(params(), &q);
        let reference = search_sequences(&engine, &seqs, 1, Precision::Adaptive);
        let token = CancelToken::after_polls(budget);
        match search_with_cancel(&engine, &seqs, 1, Precision::Adaptive, &token) {
            Ok(r) => {
                prop_assert_eq!(r.scores, reference.scores, "budget={}", budget);
                prop_assert_eq!(r.stats, reference.stats, "budget={}", budget);
            }
            Err(Cancelled) => prop_assert!(token.is_cancelled()),
        }
    }

    // Engine-level, across every available backend and both kernel
    // modes: same all-or-nothing contract, and a completed cancellable
    // score equals the plain score exactly.
    #[test]
    fn engine_cancellation_across_backends_and_modes(
        q in protein_seq(90),
        d in protein_seq(90),
        budget in 0u64..64,
    ) {
        let p = params();
        for kind in BackendKind::available() {
            for mode in KernelMode::ALL {
                let engine = QueryEngine::with_backend_and_mode(p.clone(), &q, kind, mode);
                let mut plain_stats = AdaptiveStats::default();
                let expected = engine.score_with(&d, Precision::Adaptive, &mut plain_stats);
                let token = CancelToken::after_polls(budget);
                let mut stats = AdaptiveStats::default();
                match engine.score_with_cancel(&d, Precision::Adaptive, &mut stats, &token) {
                    Ok(got) => {
                        prop_assert_eq!(got, expected, "{} / {}", kind, mode);
                        prop_assert_eq!(stats, plain_stats, "{} / {}", kind, mode);
                    }
                    Err(Cancelled) => {
                        prop_assert!(token.is_cancelled(), "{} / {}", kind, mode);
                        // No partial stats may leak from an abandoned run.
                        prop_assert_eq!(stats, AdaptiveStats::default(), "{} / {}", kind, mode);
                    }
                }
            }
        }
    }
}

/// Cancellation is honored *within one chunk*: once the token trips, the
/// kernels bail at their next stripe-column checkpoint instead of
/// finishing the chunk (or even the current alignment). The poll counter
/// pins this to the checkpoint interval: a budget-`k` token on a database
/// whose full scan polls hundreds of times must stop at poll `k`, give or
/// take the final checkpoint that observes the trip.
#[test]
fn cancellation_is_honored_at_the_next_checkpoint() {
    let query = make_query(80, 5);
    // One chunk of one long sequence: the full byte-mode scan alone has
    // ~len / CANCEL_CHECK_COLS in-kernel checkpoints.
    let db = database_with_lengths("t", &[20_000], 3);
    let engine = QueryEngine::new(params(), &query);

    let full = CancelToken::new();
    let complete = search_with_cancel(&engine, db.sequences(), 1, Precision::Adaptive, &full)
        .unwrap_or_else(|e| panic!("uncancelled search must complete: {e}"));
    let full_polls = full.polls();
    assert!(
        full_polls as usize >= 20_000 / CANCEL_CHECK_COLS,
        "full scan must poll at least once per {CANCEL_CHECK_COLS} columns (saw {full_polls})"
    );

    let budget = 3u64;
    let token = CancelToken::after_polls(budget);
    let r = search_with_cancel(&engine, db.sequences(), 1, Precision::Adaptive, &token);
    assert_eq!(r.err(), Some(Cancelled));
    assert!(
        token.polls() <= budget + 2,
        "cancelled at poll {budget} but {} polls ran — the kernel must stop at the next \
         stripe-column checkpoint, not finish the chunk",
        token.polls()
    );
    assert!(complete.scores[0] > 0, "sanity: the alignment scores");
}

/// A token cancelled before the search starts yields `Cancelled` without
/// scoring anything.
#[test]
fn pre_cancelled_token_short_circuits() {
    let query = make_query(40, 1);
    let db = database_with_lengths("t", &[50, 60], 2);
    let engine = QueryEngine::new(params(), &query);
    let token = CancelToken::new();
    token.cancel();
    let polls_before = token.polls();
    let r = search_with_cancel(&engine, db.sequences(), 1, Precision::Adaptive, &token);
    assert_eq!(r.err(), Some(Cancelled));
    assert!(
        token.polls() <= polls_before + 1,
        "at most the boundary poll"
    );
}

/// Multi-threaded cancellation: every worker observes the trip and the
/// search returns `Cancelled` (or, if workers raced past the budget,
/// the complete bit-identical result — never anything in between).
#[test]
fn threaded_cancellation_is_all_or_nothing() {
    let lens: Vec<usize> = (0..64).map(|i| 200 + (i * 13) % 300).collect();
    let db = database_with_lengths("t", &lens, 7);
    let query = make_query(64, 9);
    let engine = QueryEngine::new(params(), &query);
    let reference = search_sequences(&engine, db.sequences(), 1, Precision::Adaptive);
    for budget in [0u64, 1, 5, 20, 100, 10_000_000] {
        for threads in [2usize, 4] {
            let token = CancelToken::after_polls(budget);
            match search_with_cancel(
                &engine,
                db.sequences(),
                threads,
                Precision::Adaptive,
                &token,
            ) {
                Ok(r) => assert_eq!(
                    r.scores, reference.scores,
                    "budget={budget} threads={threads}"
                ),
                Err(Cancelled) => assert!(token.is_cancelled()),
            }
        }
    }
}
