//! Property tests: every vectorized aligner equals the scalar reference.

use proptest::prelude::*;
use sw_align::smith_waterman::{sw_score, SwParams};
use sw_simd::byte_mode::{sw_striped_adaptive, AdaptiveStats, ByteProfile};
use sw_simd::farrar::sw_striped_score;
use sw_simd::rognes::sw_vertical;
use sw_simd::wozniak::sw_antidiagonal;

fn protein_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 1..=max_len)
}

fn params() -> SwParams {
    SwParams::cudasw_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn striped_equals_scalar(q in protein_seq(96), d in protein_seq(96)) {
        let p = params();
        prop_assert_eq!(sw_striped_score(&p, &q, &d), sw_score(&p, &q, &d));
    }

    #[test]
    fn antidiagonal_equals_scalar(q in protein_seq(64), d in protein_seq(64)) {
        let p = params();
        prop_assert_eq!(sw_antidiagonal(&p, &q, &d).score, sw_score(&p, &q, &d));
    }

    #[test]
    fn vertical_equals_scalar(q in protein_seq(64), d in protein_seq(64)) {
        let p = params();
        prop_assert_eq!(sw_vertical(&p, &q, &d).score, sw_score(&p, &q, &d));
    }

    #[test]
    fn striped_with_other_gap_models(
        q in protein_seq(48),
        d in protein_seq(48),
        open in 1i32..20,
        extend in 1i32..5,
    ) {
        prop_assume!(open >= extend);
        let mut p = params();
        p.gaps = sw_align::GapPenalties::new(open, extend).unwrap();
        prop_assert_eq!(sw_striped_score(&p, &q, &d), sw_score(&p, &q, &d));
    }

    #[test]
    fn adaptive_byte_mode_equals_scalar(q in protein_seq(96), d in protein_seq(96)) {
        let p = params();
        let profile = ByteProfile::build(&p, &q);
        let mut stats = AdaptiveStats::default();
        prop_assert_eq!(
            sw_striped_adaptive(&p, &profile, &q, &d, &mut stats),
            sw_score(&p, &q, &d)
        );
    }

    #[test]
    fn all_vector_variants_agree(q in protein_seq(40), d in protein_seq(40)) {
        let p = params();
        let a = sw_striped_score(&p, &q, &d);
        let b = sw_antidiagonal(&p, &q, &d).score;
        let c = sw_vertical(&p, &q, &d).score;
        prop_assert_eq!(a, b);
        prop_assert_eq!(b, c);
    }
}
