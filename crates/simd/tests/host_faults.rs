//! Host fault-domain chaos: the pool absorbs panics, stalls, and
//! admission failures without changing a single score.
//!
//! The acceptance invariants (mirroring the GPU chaos suite):
//! * scores bit-identical to the fault-free run for every seed, fault
//!   kind, and thread count;
//! * zero lost sequences (every index committed exactly once);
//! * zero duplicated answers (CAS losers are suppressed and counted);
//! * the fault plan demonstrably fired (a chaos run that injected nothing
//!   proves nothing).

use std::ops::Range;
use sw_align::smith_waterman::SwParams;
use sw_db::synth::{database_with_lengths, make_query};
use sw_simd::{
    search_protected_with_chunks, search_sequences, HostFaultKind, HostFaultPlan, HostFaultRates,
    HostMemoryBudget, HostSearchResult, PoolConfig, Precision, QueryEngine,
};

fn params() -> SwParams {
    SwParams::cudasw_default()
}

fn fixed_chunks(n: usize, per: usize) -> Vec<Range<usize>> {
    (0..n).step_by(per).map(|s| s..(s + per).min(n)).collect()
}

fn run(
    engine: &QueryEngine,
    seqs: &[sw_db::Sequence],
    cfg: &PoolConfig,
    chunks: &[Range<usize>],
) -> HostSearchResult {
    match search_protected_with_chunks(engine, seqs, cfg, chunks) {
        Ok(r) => r,
        Err(e) => panic!("no cancel token configured: {e}"),
    }
}

/// The full matrix the CI host-fault gate runs: ≥3 seeds × every fault
/// kind, forced onto known chunks so each recovery path is provably
/// exercised, at 1 and 3 threads.
#[test]
fn forced_fault_matrix_is_bit_identical() {
    let lens: Vec<usize> = (0..36).map(|i| 30 + (i * 11) % 120).collect();
    let db = database_with_lengths("t", &lens, 17);
    let query = make_query(72, 4);
    let engine = QueryEngine::new(params(), &query);
    let clean = search_sequences(&engine, db.sequences(), 1, Precision::Adaptive);
    let chunks = fixed_chunks(db.len(), 4);

    for seed in [11u64, 22, 33] {
        for kind in HostFaultKind::ALL {
            // Force the drawn kind onto a mid-run chunk (identity (8, 4))
            // on top of the seeded background noise.
            let plan = HostFaultPlan::random(seed, HostFaultRates::none())
                .with_fault_at((8, 4), kind)
                .with_stall_ms(30);
            for threads in [1usize, 3] {
                let cfg = PoolConfig::new(threads, Precision::Adaptive)
                    .with_fault_plan(plan.clone())
                    .with_watchdog(10, 2);
                let r = run(&engine, db.sequences(), &cfg, &chunks);
                assert_eq!(
                    r.scores, clean.scores,
                    "seed={seed} kind={kind} threads={threads}"
                );
                assert_eq!(r.scores.len(), db.len(), "zero lost sequences");
                assert_eq!(
                    r.faults.injected(),
                    1,
                    "seed={seed} kind={kind} threads={threads}: the forced fault must fire"
                );
                match kind {
                    HostFaultKind::Panic => {
                        assert_eq!(r.faults.panics, 1);
                        assert_eq!(r.faults.quarantined_chunks, 1);
                        assert!(r.faults.oracle_scored >= 1, "quarantine recomputed");
                    }
                    HostFaultKind::Stall => {
                        if threads > 1 {
                            assert!(
                                r.faults.redispatches >= 1,
                                "threads={threads}: watchdog must re-dispatch the stalled chunk"
                            );
                        }
                    }
                    HostFaultKind::AllocFail => {
                        assert!(r.faults.rechunks >= 1, "admission failure must re-chunk");
                    }
                }
            }
        }
    }
}

/// Random chaos storms: seeded rates over small chunks, every thread
/// count, scores always bit-identical and every sequence accounted for.
#[test]
fn seeded_chaos_storms_never_corrupt_results() {
    let lens: Vec<usize> = (0..60).map(|i| 25 + (i * 7) % 100).collect();
    let db = database_with_lengths("t", &lens, 23);
    let query = make_query(56, 8);
    let engine = QueryEngine::new(params(), &query);
    let clean = search_sequences(&engine, db.sequences(), 1, Precision::Adaptive);
    let chunks = fixed_chunks(db.len(), 3);

    let mut total_injected = 0u64;
    for seed in [1u64, 2, 3, 4] {
        let plan = HostFaultPlan::random(seed, HostFaultRates::chaos()).with_stall_ms(15);
        for threads in [1usize, 2, 4] {
            let cfg = PoolConfig::new(threads, Precision::Adaptive)
                .with_fault_plan(plan.clone())
                .with_watchdog(8, 2);
            let r = run(&engine, db.sequences(), &cfg, &chunks);
            assert_eq!(r.scores, clean.scores, "seed={seed} threads={threads}");
            total_injected += r.faults.injected();
        }
    }
    assert!(
        total_injected > 0,
        "chaos rates over {} chunks × 12 runs must inject something",
        chunks.len()
    );
}

/// A panic in one chunk must not lose or duplicate its neighbours' work:
/// the quarantine recomputes only uncommitted sequences, and commits are
/// exactly-once even when a stalled worker finishes late.
#[test]
fn stall_plus_redispatch_commits_exactly_once() {
    let db = database_with_lengths("t", &[80; 24], 31);
    let query = make_query(64, 6);
    let engine = QueryEngine::new(params(), &query);
    let clean = search_sequences(&engine, db.sequences(), 1, Precision::Adaptive);
    let chunks = fixed_chunks(db.len(), 6);
    // Stall long enough that the watchdog fires and a survivor finishes
    // the chunk first; the stalled worker then loses every commit race.
    let plan = HostFaultPlan::none()
        .with_fault_at((6, 6), HostFaultKind::Stall)
        .with_stall_ms(120);
    let cfg = PoolConfig::new(2, Precision::Adaptive)
        .with_fault_plan(plan)
        .with_watchdog(15, 3);
    let r = run(&engine, db.sequences(), &cfg, &chunks);
    assert_eq!(r.scores, clean.scores);
    assert_eq!(r.faults.injected_stalls, 1);
    assert!(r.faults.redispatches >= 1, "watchdog must act");
    // The re-dispatched chunk is computed by two workers; one side's
    // commits must have been suppressed (no duplicate answers).
    assert!(
        r.faults.duplicates_suppressed <= 6,
        "at most the chunk's sequences race"
    );
}

/// Budget pressure composes with chaos: a starvation-level budget plus a
/// fault storm still yields bit-identical scores.
#[test]
fn budget_starvation_under_chaos_stays_correct() {
    let db = database_with_lengths("t", &[40; 30], 41);
    let query = make_query(48, 2);
    let engine = QueryEngine::new(params(), &query);
    let clean = search_sequences(&engine, db.sequences(), 1, Precision::Adaptive);
    let chunks = fixed_chunks(db.len(), 10);
    let plan = HostFaultPlan::random(9, HostFaultRates::chaos()).with_stall_ms(10);
    for threads in [1usize, 2] {
        let cfg = PoolConfig::new(threads, Precision::Adaptive)
            .with_fault_plan(plan.clone())
            .with_budget(HostMemoryBudget::bytes(1))
            .with_watchdog(10, 2);
        let r = run(&engine, db.sequences(), &cfg, &chunks);
        assert_eq!(r.scores, clean.scores, "threads={threads}");
        assert!(r.faults.rechunks > 0, "starved budget must split chunks");
        assert!(r.faults.forced_admissions > 0, "progress is guaranteed");
    }
}
