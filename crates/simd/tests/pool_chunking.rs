//! Property tests for pool work granularity and score reassembly.
//!
//! The pool's contract is layout-independence: however the database is cut
//! into chunks and however those chunks land on workers (including steals),
//! the reassembled score vector must be bit-identical to the inline loop.
//! These tests drive [`search_with_chunks`] with *arbitrary* valid chunk
//! boundaries — not just the ones [`length_aware_chunks`] would pick — and
//! pin the [`MIN_SEQS_PER_WORKER`] clamp at its documented thresholds.

use proptest::prelude::*;
use std::ops::Range;
use sw_align::smith_waterman::SwParams;
use sw_simd::{
    effective_workers, length_aware_chunks, search_sequences, search_with_chunks, Precision,
    QueryEngine, MIN_SEQS_PER_WORKER,
};

/// Turn a set of cut positions into contiguous covering ranges.
fn ranges_from_cuts(n: usize, cuts: &[usize]) -> Vec<Range<usize>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % n).filter(|&c| c > 0).collect();
    bounds.sort_unstable();
    bounds.dedup();
    bounds.push(n);
    let mut out = Vec::with_capacity(bounds.len());
    let mut start = 0;
    for b in bounds {
        if b > start {
            out.push(start..b);
            start = b;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_chunk_boundaries_reassemble_bit_identically(
        lens in proptest::collection::vec(10usize..120, 4..60),
        cuts in proptest::collection::vec(0usize..1000, 0..12),
        threads in 1usize..6,
        seed in 0u64..1000,
    ) {
        let db = sw_db::synth::database_with_lengths("prop", &lens, seed);
        let query = sw_db::synth::make_query(40, seed.wrapping_add(7));
        let engine = QueryEngine::new(SwParams::cudasw_default(), &query);
        let whole = length_aware_chunks(db.sequences(), 1);
        let inline = search_with_chunks(&engine, db.sequences(), 1, Precision::Adaptive, &whole);
        let chunks = ranges_from_cuts(db.len(), &cuts);
        let chunked = search_with_chunks(
            &engine, db.sequences(), threads, Precision::Adaptive, &chunks,
        );
        prop_assert_eq!(&chunked.scores, &inline.scores, "chunks {:?}", chunks);
        // Stats are merged across workers, never lost or double-counted.
        prop_assert_eq!(
            chunked.stats.byte_mode + chunked.stats.word_fallbacks,
            db.len() as u64
        );
    }

    #[test]
    fn length_aware_chunks_are_always_a_valid_cover(
        lens in proptest::collection::vec(5usize..3000, 1..80),
        target in 1usize..40,
    ) {
        let db = sw_db::synth::database_with_lengths("prop", &lens, 3);
        let chunks = length_aware_chunks(db.sequences(), target);
        prop_assert!(!chunks.is_empty());
        prop_assert!(chunks.len() <= target.max(1));
        prop_assert_eq!(chunks.first().unwrap().start, 0);
        prop_assert_eq!(chunks.last().unwrap().end, db.len());
        for w in chunks.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
            prop_assert!(!w[0].is_empty());
        }
        prop_assert!(!chunks.last().unwrap().is_empty());
    }

    #[test]
    fn default_chunking_matches_inline(
        lens in proptest::collection::vec(10usize..200, 1..50),
        threads in 1usize..8,
    ) {
        let db = sw_db::synth::database_with_lengths("prop", &lens, 11);
        let query = sw_db::synth::make_query(33, 5);
        let engine = QueryEngine::new(SwParams::cudasw_default(), &query);
        let inline = search_sequences(&engine, db.sequences(), 1, Precision::Adaptive);
        let pooled = search_sequences(&engine, db.sequences(), threads, Precision::Adaptive);
        prop_assert_eq!(&pooled.scores, &inline.scores);
    }
}

/// The `MIN_SEQS_PER_WORKER` clamp engages and disengages at exactly the
/// documented boundaries: a worker is only spawned when it can clear
/// [`MIN_SEQS_PER_WORKER`] sequences, and the count never exceeds the
/// hardware's concurrency.
#[test]
fn min_seqs_clamp_thresholds_are_exact() {
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // Below one worker's worth: inline.
    assert_eq!(effective_workers(8, 0), 1);
    assert_eq!(effective_workers(8, MIN_SEQS_PER_WORKER - 1), 1);
    // Exactly one worker's worth: still one (pool pays off at 2 workers).
    assert_eq!(effective_workers(8, MIN_SEQS_PER_WORKER), 1);
    // One sequence short of two workers' worth: stays on one.
    assert_eq!(effective_workers(8, 2 * MIN_SEQS_PER_WORKER - 1), 1);
    // Exactly two workers' worth: two (if the hardware has them).
    assert_eq!(
        effective_workers(8, 2 * MIN_SEQS_PER_WORKER),
        2.min(hardware)
    );
    // The requested thread count is an upper bound, not a floor.
    assert_eq!(effective_workers(1, 10_000), 1);
    // Hardware is always the final clamp.
    assert!(effective_workers(usize::MAX, usize::MAX) <= hardware);
}

/// Word-precision runs reassemble identically too (the chunked path must
/// not depend on the adaptive ladder).
#[test]
fn word_precision_chunked_matches_inline() {
    let lens: Vec<usize> = (0..48).map(|i| 20 + (i * 13) % 150).collect();
    let db = sw_db::synth::database_with_lengths("w", &lens, 23);
    let query = sw_db::synth::make_query(64, 2);
    let engine = QueryEngine::new(SwParams::cudasw_default(), &query);
    let inline = search_sequences(&engine, db.sequences(), 1, Precision::Word);
    for target in [1, 3, 7, 48] {
        let chunks = length_aware_chunks(db.sequences(), target);
        let r = search_with_chunks(&engine, db.sequences(), 4, Precision::Word, &chunks);
        assert_eq!(r.scores, inline.scores, "target={target}");
    }
}
