//! Differential property tests for the prefix-scan Lazy-F kernel mode.
//!
//! Snytsar's deconstruction (arXiv:1909.00899) replaces the correction
//! loop with a Kogge-Stone max-scan over the lane-boundary F values plus a
//! single repair pass. The refactoring claim is *exactness*: for every
//! backend and every input, the scan mode must produce (1) the bit-exact
//! score of the correction-loop mode and the scalar reference, and (2) the
//! identical byte→word overflow verdict — the adaptive ladder may not
//! change shape under a kernel-mode switch. On top of exactness, the scan
//! must be *cheaper*: measurably fewer `lazy_f` vector operations on
//! correction-heavy inputs.

use proptest::prelude::*;
use sw_align::smith_waterman::{sw_score, SwParams};
use sw_simd::{AdaptiveStats, BackendKind, KernelMode, Precision, QueryEngine};

fn protein_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 1..=max_len)
}

fn params() -> SwParams {
    SwParams::cudasw_default()
}

/// Run one (query, db) pair through an engine, returning (score, stats).
fn run(
    p: &SwParams,
    q: &[u8],
    d: &[u8],
    kind: BackendKind,
    mode: KernelMode,
    precision: Precision,
) -> (i32, AdaptiveStats) {
    let engine = QueryEngine::with_backend_and_mode(p.clone(), q, kind, mode);
    let mut stats = AdaptiveStats::default();
    let score = engine.score_with(d, precision, &mut stats);
    (score, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_matches_loop_and_scalar_adaptive(q in protein_seq(150), d in protein_seq(150)) {
        let p = params();
        let expected = sw_score(&p, &q, &d);
        for kind in BackendKind::available() {
            let (loop_score, loop_stats) =
                run(&p, &q, &d, kind, KernelMode::CorrectionLoop, Precision::Adaptive);
            let (scan_score, scan_stats) =
                run(&p, &q, &d, kind, KernelMode::PrefixScan, Precision::Adaptive);
            prop_assert_eq!(loop_score, expected, "loop vs scalar on {}", kind);
            prop_assert_eq!(scan_score, expected, "scan vs scalar on {}", kind);
            // The overflow verdict must be mode-independent: v_max is the
            // same running maximum in both formulations.
            prop_assert_eq!(
                scan_stats.word_fallbacks, loop_stats.word_fallbacks,
                "fallback verdict differs between modes on {}", kind
            );
            prop_assert_eq!(
                scan_stats.byte_mode, loop_stats.byte_mode,
                "byte-mode count differs between modes on {}", kind
            );
        }
    }

    #[test]
    fn scan_matches_loop_and_scalar_word(q in protein_seq(100), d in protein_seq(100)) {
        let p = params();
        let expected = sw_score(&p, &q, &d);
        for kind in BackendKind::available() {
            let (loop_score, _) =
                run(&p, &q, &d, kind, KernelMode::CorrectionLoop, Precision::Word);
            let (scan_score, _) =
                run(&p, &q, &d, kind, KernelMode::PrefixScan, Precision::Word);
            prop_assert_eq!(loop_score, expected, "loop word vs scalar on {}", kind);
            prop_assert_eq!(scan_score, expected, "scan word vs scalar on {}", kind);
        }
    }

    #[test]
    fn scan_matches_loop_under_arbitrary_gap_models(
        q in protein_seq(80),
        d in protein_seq(80),
        open in 1i32..20,
        extend in 1i32..5,
    ) {
        prop_assume!(open >= extend);
        let mut p = params();
        p.gaps = sw_align::GapPenalties::new(open, extend).unwrap();
        let expected = sw_score(&p, &q, &d);
        for kind in BackendKind::available() {
            for precision in [Precision::Adaptive, Precision::Word] {
                let (score, _) = run(&p, &q, &d, kind, KernelMode::PrefixScan, precision);
                prop_assert_eq!(
                    score, expected,
                    "scan gaps=({},{}) on {} ({:?})", open, extend, kind, precision
                );
            }
        }
    }

    #[test]
    fn scan_overflow_verdict_is_backend_independent(
        q in protein_seq(120),
        d in protein_seq(120),
    ) {
        // Same invariant as the correction-loop suite: the byte-mode
        // verdict comes from the layout-independent running max, so it may
        // depend on neither lane count nor kernel mode.
        let p = params();
        let mut verdicts = Vec::new();
        for kind in BackendKind::available() {
            let (_, stats) = run(&p, &q, &d, kind, KernelMode::PrefixScan, Precision::Adaptive);
            verdicts.push((kind, stats.word_fallbacks));
        }
        for window in verdicts.windows(2) {
            prop_assert_eq!(
                window[0].1, window[1].1,
                "scan verdict differs: {} vs {}", window[0].0, window[1].0
            );
        }
    }
}

/// Correction-heavy input: with `open == extend` the SWAT early exit is
/// unsound and disabled, so the correction loop runs its full
/// `LANES × seg_len` repair schedule every column — the worst case the
/// deconstruction removes. The scan mode must agree on score and fallback
/// while spending measurably fewer lazy-F vector operations
/// (`log2(LANES) + seg_len` per column instead of `LANES × seg_len`).
#[test]
fn scan_spends_fewer_lazy_f_operations() {
    let mut p = params();
    p.gaps = sw_align::GapPenalties::new(2, 2).unwrap();
    let q: Vec<u8> = (0..400).map(|i| (i % 20) as u8).collect();
    let mut d = q.clone();
    d[13] = (d[13] + 1) % 20;
    let expected = sw_score(&p, &q, &d);
    assert!(expected > 255, "case must exceed the byte range");
    for kind in BackendKind::available() {
        let (loop_score, loop_stats) = run(
            &p,
            &q,
            &d,
            kind,
            KernelMode::CorrectionLoop,
            Precision::Adaptive,
        );
        let (scan_score, scan_stats) = run(
            &p,
            &q,
            &d,
            kind,
            KernelMode::PrefixScan,
            Precision::Adaptive,
        );
        assert_eq!(loop_score, expected, "{kind} loop");
        assert_eq!(scan_score, expected, "{kind} scan");
        assert_eq!(scan_stats.word_fallbacks, 1, "{kind} scan must fall back");
        assert_eq!(
            scan_stats.word_fallbacks, loop_stats.word_fallbacks,
            "{kind} fallback verdicts must agree"
        );
        let loop_total = loop_stats.lazy_f_byte + loop_stats.lazy_f_word;
        let scan_total = scan_stats.lazy_f_byte + scan_stats.lazy_f_word;
        assert!(
            scan_total * 2 < loop_total,
            "{kind}: scan must spend far fewer lazy-F ops (scan {scan_total} vs loop {loop_total})"
        );
    }
}

/// The engine honours an explicit kernel mode and reports it back.
#[test]
fn engines_report_their_kernel_mode() {
    let p = params();
    let q: Vec<u8> = (0..40).map(|i| (i % 20) as u8).collect();
    for kind in BackendKind::available() {
        for mode in KernelMode::ALL {
            let engine = QueryEngine::with_backend_and_mode(p.clone(), &q, kind, mode);
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.mode(), mode);
        }
    }
}
