//! x86-64 backends: SSE2 (16×u8 / 8×i16) and AVX2 (32×u8 / 16×i16).
//!
//! SSE2 is part of the x86-64 baseline, so its intrinsics are statically
//! enabled and safe to call; the generic kernels vectorize directly.
//!
//! AVX2 is *not* baseline: its intrinsics are `#[target_feature]` functions
//! that may only execute on a CPU that reports the feature. The safety
//! story has two parts:
//!
//! 1. every AVX2 intrinsic call below sits in an `unsafe` block whose
//!    contract is "the dispatcher only selects [`Avx2Backend`] after
//!    `is_x86_feature_detected!("avx2")` returned true" (enforced by
//!    [`crate::engine::QueryEngine::with_backend`]);
//! 2. the kernel entry points [`sw_bytes_avx2`] / [`sw_words_avx2`] carry
//!    `#[target_feature(enable = "avx2")]`, so the `#[inline(always)]`
//!    generic kernel — and, transitively, the intrinsics — inline into a
//!    feature-enabled context and compile to straight-line AVX2 code.
//!
//! The one non-obvious idiom is the 256-bit lane shift: `_mm256_slli_si256`
//! shifts each 128-bit half independently, so the byte crossing the middle
//! is recovered with `_mm256_permute2x128_si256::<0x08>` (lower half ←
//! zero, upper half ← old lower half) + `_mm256_alignr_epi8`.

#![cfg(all(
    target_arch = "x86_64",
    feature = "native-simd",
    not(feature = "force-portable")
))]

use crate::backend::{
    sw_bytes, sw_bytes_checked, sw_bytes_scan, sw_bytes_scan_checked, sw_words, sw_words_checked,
    sw_words_scan, sw_words_scan_checked, Backend, ByteKernelResult, ByteProfileOf, ByteSimd,
    WordKernelResult, WordProfileOf, WordSimd,
};
use crate::cancel::CancelToken;
use core::arch::x86_64::*;
use sw_align::GapPenalties;

// ---------------------------------------------------------------- SSE2 ----

/// 16 × u8 in an `__m128i` (SSE2, x86-64 baseline).
#[derive(Clone, Copy)]
pub struct U8x16Sse(__m128i);

impl ByteSimd for U8x16Sse {
    const LANES: usize = 16;

    #[inline(always)]
    fn splat(v: u8) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_set1_epi8(v as i8) })
    }

    #[inline(always)]
    fn load(lanes: &[u8]) -> Self {
        assert!(lanes.len() >= 16);
        // SAFETY: SSE2 is baseline; `loadu` has no alignment requirement
        // and the bound is asserted above.
        Self(unsafe { _mm_loadu_si128(lanes.as_ptr() as *const __m128i) })
    }

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_adds_epu8(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sat_sub(self, rhs: Self) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_subs_epu8(self.0, rhs.0) })
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_max_epu8(self.0, rhs.0) })
    }

    #[inline(always)]
    fn any_gt(self, rhs: Self) -> bool {
        // No unsigned compare in SSE2: a > b somewhere iff max(a,b) != b
        // somewhere.
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_max_epu8(self.0, rhs.0), rhs.0)) != 0xFFFF }
    }

    #[inline(always)]
    fn shift(self) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_slli_si128::<1>(self.0) })
    }

    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        // `pslldq` needs a constant shift; the scan only asks for
        // powers of two, everything else falls back to repeated shifts.
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe {
            match n {
                0 => self,
                1 => Self(_mm_slli_si128::<1>(self.0)),
                2 => Self(_mm_slli_si128::<2>(self.0)),
                4 => Self(_mm_slli_si128::<4>(self.0)),
                8 => Self(_mm_slli_si128::<8>(self.0)),
                n if n >= 16 => Self::splat(0),
                n => {
                    let mut v = self;
                    for _ in 0..n {
                        v = v.shift();
                    }
                    v
                }
            }
        }
    }

    #[inline(always)]
    fn horizontal_max(self) -> u8 {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe {
            let mut v = self.0;
            v = _mm_max_epu8(v, _mm_srli_si128::<8>(v));
            v = _mm_max_epu8(v, _mm_srli_si128::<4>(v));
            v = _mm_max_epu8(v, _mm_srli_si128::<2>(v));
            v = _mm_max_epu8(v, _mm_srli_si128::<1>(v));
            (_mm_extract_epi16::<0>(v) & 0xFF) as u8
        }
    }
}

/// 8 × i16 in an `__m128i` (SSE2, x86-64 baseline).
#[derive(Clone, Copy)]
pub struct I16x8Sse(__m128i);

impl WordSimd for I16x8Sse {
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(v: i16) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_set1_epi16(v) })
    }

    #[inline(always)]
    fn load(lanes: &[i16]) -> Self {
        assert!(lanes.len() >= 8);
        // SAFETY: SSE2 is baseline; `loadu` has no alignment requirement
        // and the bound is asserted above.
        Self(unsafe { _mm_loadu_si128(lanes.as_ptr() as *const __m128i) })
    }

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_adds_epi16(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sat_sub(self, rhs: Self) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_subs_epi16(self.0, rhs.0) })
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_max_epi16(self.0, rhs.0) })
    }

    #[inline(always)]
    fn any_gt(self, rhs: Self) -> bool {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { _mm_movemask_epi8(_mm_cmpgt_epi16(self.0, rhs.0)) != 0 }
    }

    #[inline(always)]
    fn shift(self) -> Self {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Self(unsafe { _mm_slli_si128::<2>(self.0) })
    }

    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        // See `U8x16Sse::shift_lanes`; one lane is two bytes here.
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe {
            match n {
                0 => self,
                1 => Self(_mm_slli_si128::<2>(self.0)),
                2 => Self(_mm_slli_si128::<4>(self.0)),
                4 => Self(_mm_slli_si128::<8>(self.0)),
                n if n >= 8 => Self::splat(0),
                n => {
                    let mut v = self;
                    for _ in 0..n {
                        v = v.shift();
                    }
                    v
                }
            }
        }
    }

    #[inline(always)]
    fn horizontal_max(self) -> i16 {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe {
            let mut v = self.0;
            v = _mm_max_epi16(v, _mm_srli_si128::<8>(v));
            v = _mm_max_epi16(v, _mm_srli_si128::<4>(v));
            v = _mm_max_epi16(v, _mm_srli_si128::<2>(v));
            _mm_extract_epi16::<0>(v) as i16
        }
    }
}

/// The SSE2 backend (always available on x86-64).
pub struct Sse2Backend;

impl Backend for Sse2Backend {
    type Byte = U8x16Sse;
    type Word = I16x8Sse;
    const NAME: &'static str = "sse2";

    fn available() -> bool {
        // Baseline on x86-64; the dynamic check keeps the probe uniform.
        is_x86_feature_detected!("sse2")
    }
}

// ---------------------------------------------------------------- AVX2 ----

/// 32 × u8 in an `__m256i` (AVX2).
#[derive(Clone, Copy)]
pub struct U8x32Avx(__m256i);

/// Shift a 256-bit vector towards higher lanes by `16 - ALIGN` bytes
/// (`ALIGN` = 15 shifts one byte, 14 shifts one word), feeding zero in at
/// lane 0 and carrying bytes across the 128-bit boundary.
///
/// SAFETY: caller must ensure AVX2 is available.
#[inline(always)]
unsafe fn shift_256<const ALIGN: i32>(v: __m256i) -> __m256i {
    // SAFETY: AVX2 availability is the caller's contract.
    unsafe {
        // tmp = [zero, v.low]: donates v.low's tail to the upper lane.
        let tmp = _mm256_permute2x128_si256::<0x08>(v, v);
        _mm256_alignr_epi8::<ALIGN>(v, tmp)
    }
}

impl ByteSimd for U8x32Avx {
    const LANES: usize = 32;

    #[inline(always)]
    fn splat(v: u8) -> Self {
        // SAFETY: only constructed after the dispatcher verified AVX2.
        Self(unsafe { _mm256_set1_epi8(v as i8) })
    }

    #[inline(always)]
    fn load(lanes: &[u8]) -> Self {
        assert!(lanes.len() >= 32);
        // SAFETY: AVX2 verified by the dispatcher; `loadu` is unaligned and
        // the bound is asserted above.
        Self(unsafe { _mm256_loadu_si256(lanes.as_ptr() as *const __m256i) })
    }

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        // SAFETY: AVX2 verified by the dispatcher.
        Self(unsafe { _mm256_adds_epu8(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sat_sub(self, rhs: Self) -> Self {
        // SAFETY: AVX2 verified by the dispatcher.
        Self(unsafe { _mm256_subs_epu8(self.0, rhs.0) })
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        // SAFETY: AVX2 verified by the dispatcher.
        Self(unsafe { _mm256_max_epu8(self.0, rhs.0) })
    }

    #[inline(always)]
    fn any_gt(self, rhs: Self) -> bool {
        // SAFETY: AVX2 verified by the dispatcher.
        unsafe {
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_max_epu8(self.0, rhs.0), rhs.0)) != -1
        }
    }

    #[inline(always)]
    fn shift(self) -> Self {
        // SAFETY: AVX2 verified by the dispatcher.
        Self(unsafe { shift_256::<15>(self.0) })
    }

    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        // `shift_256::<ALIGN>` shifts by 16 − ALIGN bytes with the
        // boundary carry; a full-half shift is the bare permute.
        // SAFETY: AVX2 verified by the dispatcher.
        unsafe {
            match n {
                0 => self,
                1 => Self(shift_256::<15>(self.0)),
                2 => Self(shift_256::<14>(self.0)),
                4 => Self(shift_256::<12>(self.0)),
                8 => Self(shift_256::<8>(self.0)),
                16 => Self(_mm256_permute2x128_si256::<0x08>(self.0, self.0)),
                n if n >= 32 => Self::splat(0),
                n => {
                    let mut v = self;
                    for _ in 0..n {
                        v = v.shift();
                    }
                    v
                }
            }
        }
    }

    #[inline(always)]
    fn horizontal_max(self) -> u8 {
        // SAFETY: AVX2 verified by the dispatcher.
        unsafe {
            let lo = _mm256_castsi256_si128(self.0);
            let hi = _mm256_extracti128_si256::<1>(self.0);
            U8x16Sse(_mm_max_epu8(lo, hi)).horizontal_max()
        }
    }
}

/// 16 × i16 in an `__m256i` (AVX2).
#[derive(Clone, Copy)]
pub struct I16x16Avx(__m256i);

impl WordSimd for I16x16Avx {
    const LANES: usize = 16;

    #[inline(always)]
    fn splat(v: i16) -> Self {
        // SAFETY: only constructed after the dispatcher verified AVX2.
        Self(unsafe { _mm256_set1_epi16(v) })
    }

    #[inline(always)]
    fn load(lanes: &[i16]) -> Self {
        assert!(lanes.len() >= 16);
        // SAFETY: AVX2 verified by the dispatcher; `loadu` is unaligned and
        // the bound is asserted above.
        Self(unsafe { _mm256_loadu_si256(lanes.as_ptr() as *const __m256i) })
    }

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        // SAFETY: AVX2 verified by the dispatcher.
        Self(unsafe { _mm256_adds_epi16(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sat_sub(self, rhs: Self) -> Self {
        // SAFETY: AVX2 verified by the dispatcher.
        Self(unsafe { _mm256_subs_epi16(self.0, rhs.0) })
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        // SAFETY: AVX2 verified by the dispatcher.
        Self(unsafe { _mm256_max_epi16(self.0, rhs.0) })
    }

    #[inline(always)]
    fn any_gt(self, rhs: Self) -> bool {
        // SAFETY: AVX2 verified by the dispatcher.
        unsafe { _mm256_movemask_epi8(_mm256_cmpgt_epi16(self.0, rhs.0)) != 0 }
    }

    #[inline(always)]
    fn shift(self) -> Self {
        // SAFETY: AVX2 verified by the dispatcher.
        Self(unsafe { shift_256::<14>(self.0) })
    }

    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        // See `U8x32Avx::shift_lanes`; one lane is two bytes here.
        // SAFETY: AVX2 verified by the dispatcher.
        unsafe {
            match n {
                0 => self,
                1 => Self(shift_256::<14>(self.0)),
                2 => Self(shift_256::<12>(self.0)),
                4 => Self(shift_256::<8>(self.0)),
                8 => Self(_mm256_permute2x128_si256::<0x08>(self.0, self.0)),
                n if n >= 16 => Self::splat(0),
                n => {
                    let mut v = self;
                    for _ in 0..n {
                        v = v.shift();
                    }
                    v
                }
            }
        }
    }

    #[inline(always)]
    fn horizontal_max(self) -> i16 {
        // SAFETY: AVX2 verified by the dispatcher.
        unsafe {
            let lo = _mm256_castsi256_si128(self.0);
            let hi = _mm256_extracti128_si256::<1>(self.0);
            I16x8Sse(_mm_max_epi16(lo, hi)).horizontal_max()
        }
    }
}

/// The AVX2 backend (runtime-detected).
pub struct Avx2Backend;

impl Backend for Avx2Backend {
    type Byte = U8x32Avx;
    type Word = I16x16Avx;
    const NAME: &'static str = "avx2";

    fn available() -> bool {
        is_x86_feature_detected!("avx2")
    }
}

/// Byte-mode kernel compiled with AVX2 statically enabled.
///
/// # Safety
///
/// The executing CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub unsafe fn sw_bytes_avx2(
    gaps: &GapPenalties,
    profile: &ByteProfileOf<U8x32Avx>,
    db: &[u8],
) -> ByteKernelResult {
    sw_bytes(gaps, profile, db)
}

/// Word-mode kernel compiled with AVX2 statically enabled.
///
/// # Safety
///
/// The executing CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub unsafe fn sw_words_avx2(
    gaps: &GapPenalties,
    profile: &WordProfileOf<I16x16Avx>,
    db: &[u8],
) -> WordKernelResult {
    sw_words(gaps, profile, db)
}

/// Byte-mode prefix-scan kernel compiled with AVX2 statically enabled.
///
/// # Safety
///
/// The executing CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub unsafe fn sw_bytes_scan_avx2(
    gaps: &GapPenalties,
    profile: &ByteProfileOf<U8x32Avx>,
    db: &[u8],
) -> ByteKernelResult {
    sw_bytes_scan(gaps, profile, db)
}

/// Word-mode prefix-scan kernel compiled with AVX2 statically enabled.
///
/// # Safety
///
/// The executing CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub unsafe fn sw_words_scan_avx2(
    gaps: &GapPenalties,
    profile: &WordProfileOf<I16x16Avx>,
    db: &[u8],
) -> WordKernelResult {
    sw_words_scan(gaps, profile, db)
}

/// Cancellable byte-mode kernel compiled with AVX2 statically enabled.
///
/// # Safety
///
/// The executing CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub unsafe fn sw_bytes_cancel_avx2(
    gaps: &GapPenalties,
    profile: &ByteProfileOf<U8x32Avx>,
    db: &[u8],
    cancel: &CancelToken,
) -> Option<ByteKernelResult> {
    sw_bytes_checked(gaps, profile, db, cancel)
}

/// Cancellable word-mode kernel compiled with AVX2 statically enabled.
///
/// # Safety
///
/// The executing CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub unsafe fn sw_words_cancel_avx2(
    gaps: &GapPenalties,
    profile: &WordProfileOf<I16x16Avx>,
    db: &[u8],
    cancel: &CancelToken,
) -> Option<WordKernelResult> {
    sw_words_checked(gaps, profile, db, cancel)
}

/// Cancellable byte-mode prefix-scan kernel compiled with AVX2 statically
/// enabled.
///
/// # Safety
///
/// The executing CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub unsafe fn sw_bytes_scan_cancel_avx2(
    gaps: &GapPenalties,
    profile: &ByteProfileOf<U8x32Avx>,
    db: &[u8],
    cancel: &CancelToken,
) -> Option<ByteKernelResult> {
    sw_bytes_scan_checked(gaps, profile, db, cancel)
}

/// Cancellable word-mode prefix-scan kernel compiled with AVX2 statically
/// enabled.
///
/// # Safety
///
/// The executing CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub unsafe fn sw_words_scan_cancel_avx2(
    gaps: &GapPenalties,
    profile: &WordProfileOf<I16x16Avx>,
    db: &[u8],
    cancel: &CancelToken,
) -> Option<WordKernelResult> {
    sw_words_scan_checked(gaps, profile, db, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byte_mode::U8x16;
    use crate::vector::I16x8;

    fn bytes(vals: [u8; 16]) -> (U8x16Sse, U8x16) {
        (U8x16Sse::load(&vals), U8x16(vals))
    }

    fn words(vals: [i16; 8]) -> (I16x8Sse, I16x8) {
        (I16x8Sse::load(&vals), I16x8(vals))
    }

    fn store_b(v: U8x16Sse) -> [u8; 16] {
        let mut out = [0u8; 16];
        // SAFETY: storeu is unaligned-safe and `out` is 16 bytes.
        unsafe { _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, v.0) };
        out
    }

    fn store_w(v: I16x8Sse) -> [i16; 8] {
        let mut out = [0i16; 8];
        // SAFETY: storeu is unaligned-safe and `out` is 16 bytes.
        unsafe { _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, v.0) };
        out
    }

    #[test]
    fn sse_bytes_match_portable_semantics() {
        let a_vals = [
            0, 1, 127, 128, 200, 250, 255, 3, 9, 0, 50, 60, 70, 80, 90, 100,
        ];
        let b_vals = [
            255, 0, 128, 127, 100, 10, 1, 3, 8, 1, 49, 61, 70, 81, 89, 101,
        ];
        let (a, pa) = bytes(a_vals);
        let (b, pb) = bytes(b_vals);
        assert_eq!(store_b(a.sat_add(b)), pa.sat_add(pb).0);
        assert_eq!(store_b(a.sat_sub(b)), pa.sat_sub(pb).0);
        assert_eq!(store_b(ByteSimd::max(a, b)), pa.max(pb).0);
        assert_eq!(a.any_gt(b), pa.any_gt(pb));
        assert_eq!(b.any_gt(a), pb.any_gt(pa));
        assert!(!a.any_gt(a));
        assert_eq!(store_b(ByteSimd::shift(a)), pa.shift_in(0).0);
        assert_eq!(ByteSimd::horizontal_max(a), pa.horizontal_max());
    }

    #[test]
    fn sse_words_match_portable_semantics() {
        let a_vals = [0, -1, i16::MAX, i16::MIN, 200, -250, 3000, -3];
        let b_vals = [1, -1, i16::MIN, i16::MAX, -200, 250, 2999, 3];
        let (a, pa) = words(a_vals);
        let (b, pb) = words(b_vals);
        assert_eq!(store_w(a.sat_add(b)), pa.sat_add(pb).0);
        assert_eq!(store_w(a.sat_sub(b)), pa.sat_sub(pb).0);
        assert_eq!(store_w(WordSimd::max(a, b)), pa.max(pb).0);
        assert_eq!(a.any_gt(b), pa.any_gt(pb));
        assert_eq!(b.any_gt(a), pb.any_gt(pa));
        assert_eq!(store_w(WordSimd::shift(a)), pa.shift_in(0).0);
        assert_eq!(WordSimd::horizontal_max(a), pa.horizontal_max());
    }

    #[test]
    fn avx_shift_crosses_the_lane_boundary() {
        if !Avx2Backend::available() {
            return;
        }
        let mut vals = [0u8; 32];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as u8 + 1;
        }
        let v = U8x32Avx::load(&vals);
        let shifted = ByteSimd::shift(v);
        let mut out = [0u8; 32];
        // SAFETY: AVX2 checked above; storeu is unaligned-safe.
        unsafe { _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, shifted.0) };
        assert_eq!(out[0], 0);
        assert_eq!(&out[1..32], &vals[0..31], "byte 15 must carry into lane 1");

        let mut wvals = [0i16; 16];
        for (i, v) in wvals.iter_mut().enumerate() {
            *v = i as i16 + 1;
        }
        let v = I16x16Avx::load(&wvals);
        let shifted = WordSimd::shift(v);
        let mut wout = [0i16; 16];
        // SAFETY: AVX2 checked above; storeu is unaligned-safe.
        unsafe { _mm256_storeu_si256(wout.as_mut_ptr() as *mut __m256i, shifted.0) };
        assert_eq!(wout[0], 0);
        assert_eq!(&wout[1..16], &wvals[0..15], "word 7 must carry into lane 1");
    }

    #[test]
    fn shift_lanes_overrides_match_repeated_shift() {
        let mut vals = [0u8; 32];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as u8 + 1;
        }
        let mut wvals = [0i16; 16];
        for (i, v) in wvals.iter_mut().enumerate() {
            *v = (i as i16 + 1) * -3;
        }
        let repeated_b = |v: U8x16Sse, n: usize| {
            let mut v = v;
            for _ in 0..n.min(16) {
                v = ByteSimd::shift(v);
            }
            v
        };
        let repeated_w = |v: I16x8Sse, n: usize| {
            let mut v = v;
            for _ in 0..n.min(8) {
                v = WordSimd::shift(v);
            }
            v
        };
        for n in 0..=17 {
            let v = U8x16Sse::load(&vals);
            assert_eq!(
                store_b(v.shift_lanes(n)),
                store_b(repeated_b(v, n)),
                "sse byte shift_lanes({n})"
            );
            let v = I16x8Sse::load(&wvals);
            assert_eq!(
                store_w(v.shift_lanes(n)),
                store_w(repeated_w(v, n)),
                "sse word shift_lanes({n})"
            );
        }
        if !Avx2Backend::available() {
            return;
        }
        let store_b32 = |v: U8x32Avx| {
            let mut out = [0u8; 32];
            // SAFETY: AVX2 checked above; storeu is unaligned-safe.
            unsafe { _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, v.0) };
            out
        };
        let store_w16 = |v: I16x16Avx| {
            let mut out = [0i16; 16];
            // SAFETY: AVX2 checked above; storeu is unaligned-safe.
            unsafe { _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, v.0) };
            out
        };
        for n in 0..=33 {
            let v = U8x32Avx::load(&vals);
            let mut r = v;
            for _ in 0..n.min(32) {
                r = ByteSimd::shift(r);
            }
            assert_eq!(
                store_b32(v.shift_lanes(n)),
                store_b32(r),
                "avx byte shift_lanes({n})"
            );
        }
        for n in 0..=17 {
            let v = I16x16Avx::load(&wvals);
            let mut r = v;
            for _ in 0..n.min(16) {
                r = WordSimd::shift(r);
            }
            assert_eq!(
                store_w16(v.shift_lanes(n)),
                store_w16(r),
                "avx word shift_lanes({n})"
            );
        }
    }

    #[test]
    fn avx_horizontal_max_and_any_gt() {
        if !Avx2Backend::available() {
            return;
        }
        let mut vals = [7u8; 32];
        vals[29] = 201;
        let v = U8x32Avx::load(&vals);
        assert_eq!(ByteSimd::horizontal_max(v), 201);
        assert!(v.any_gt(U8x32Avx::splat(200)));
        assert!(!v.any_gt(U8x32Avx::splat(201)));

        let mut wvals = [-5i16; 16];
        wvals[3] = 999;
        let v = I16x16Avx::load(&wvals);
        assert_eq!(WordSimd::horizontal_max(v), 999);
        assert!(v.any_gt(I16x16Avx::splat(998)));
        assert!(!v.any_gt(I16x16Avx::splat(999)));
    }
}
