//! Work-stealing database sharding across cores — crash-only edition.
//!
//! The database is cut into contiguous chunks (several per worker, so the
//! tail stays balanced) and dealt round-robin onto per-worker deques. Each
//! worker drains its own deque from the front; when empty it *steals* from
//! the back of a sibling's deque — the classic work-stealing discipline
//! that keeps cores busy when sequence lengths are skewed, playing the
//! role of SWPS3's dynamic work queue with less contention (workers touch
//! the shared state only once per chunk, not once per sequence).
//!
//! **Granularity is residue-aware, not count-aware.** Real databases are
//! searched length-sorted (better cache reuse, GPU-batch parity), which
//! makes equal-*count* chunks maximally imbalanced: on a Swissprot-shaped
//! log-normal length distribution the last chunk of a sorted database
//! holds the few giant sequences and carries an order of magnitude more
//! cells than the first, so 4 threads degenerate into 1 thread plus a
//! convoy. [`length_aware_chunks`] instead cuts contiguous chunks of
//! roughly equal *total residues* — cell count is `query_len × residues`,
//! so equal residues is equal work — and the deal order stays round-robin
//! so each worker's deque spans the length spectrum.
//!
//! **The pool is a fault domain.** Every chunk executes under the same
//! guarantees the simulated GPU lanes have had since PR 1:
//!
//! * *panic isolation* — the chunk computation runs under `catch_unwind`;
//!   a panicking chunk is quarantined and its unfinished sequences are
//!   recomputed on the scalar Farrar oracle, so one poisoned alignment
//!   can no longer abort the whole search (`cudasw.simd.pool.panics` /
//!   `quarantines`);
//! * *cooperative cancellation* — an optional [`CancelToken`] is polled at
//!   every chunk boundary and, inside the kernels, every
//!   [`crate::cancel::CANCEL_CHECK_COLS`] stripe columns; a cancelled
//!   search returns [`Cancelled`] and leaks no partial scores;
//! * *watchdog re-dispatch* — workers bump a heartbeat per sequence; a
//!   watchdog thread re-dispatches the claimed chunk of a silent worker to
//!   the survivors, and per-sequence compare-and-swap commits make
//!   reassembly exactly-once even when the stalled worker eventually
//!   finishes the same chunk;
//! * *memory admission* — each chunk reserves its estimated working set
//!   from a [`HostMemoryBudget`] before computing; a denied reservation
//!   splits the chunk in half and retries (re-chunk-on-pressure,
//!   mirroring the GPU OOM path), and a minimum-size chunk is
//!   force-admitted so progress is guaranteed;
//! * *deterministic chaos* — a seeded [`HostFaultPlan`] injects panics,
//!   stalls and alloc failures at chunk granularity as a pure function of
//!   chunk identity, so the chaos tests can assert bit-identical scores
//!   with zero lost or duplicated sequences.
//!
//! All workers share one read-only [`QueryEngine`] — the striped profiles
//! are built once per query and reused by every thread (that sharing is
//! what amortizes the per-query profile build across the whole database).
//! Worker-local [`AdaptiveStats`] are merged and returned to the caller,
//! which is responsible for publishing them (the metrics recorder is
//! thread-local; counts bumped on worker threads would be lost). The
//! pool's own fault counters are published by the calling thread after the
//! parallel section ends, for the same reason.

use crate::budget::HostMemoryBudget;
use crate::byte_mode::AdaptiveStats;
use crate::cancel::{CancelToken, Cancelled};
use crate::engine::{Precision, QueryEngine};
use crate::farrar::sw_striped_score;
use crate::fault::{HostFaultInjector, HostFaultKind, HostFaultPlan};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use sw_db::Sequence;

/// Chunks dealt per worker: more gives better tail balance, fewer gives
/// less queue traffic. 8 keeps the largest chunk under ~2% of the work at
/// 4 threads.
pub const CHUNKS_PER_WORKER: usize = 8;

/// Minimum sequences per worker before the pool pays for itself. Thread
/// spawn plus result merging costs tens of microseconds while a typical
/// sequence scores in about one, so a worker with less than this much
/// work makes the pooled pass *slower* than the inline loop. The worker
/// count is clamped so every worker clears this bar — small databases
/// degrade gracefully to fewer workers and finally to the inline path.
pub const MIN_SEQS_PER_WORKER: usize = 16;

/// Admission bytes charged per sequence in a chunk on top of the engine's
/// kernel working set (score slot, commit flag, queue bookkeeping).
pub const SEQ_ADMISSION_BYTES: u64 = 32;

/// Workers actually worth spawning for `n` sequences on this machine:
/// never more than the hardware can run concurrently (oversubscribing
/// CPU-bound scoring only adds scheduler churn), never so many that a
/// worker's share drops under [`MIN_SEQS_PER_WORKER`].
pub fn effective_workers(threads: usize, n: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    threads.min(hardware).min(n / MIN_SEQS_PER_WORKER).max(1)
}

/// Cut `seqs` into at most `target_chunks` contiguous ranges of roughly
/// equal **total residues**.
///
/// Scoring cost per sequence is `query_len × residues`, so residue balance
/// is work balance — equal-count chunks over a length-sorted database put
/// all the giant sequences in the final chunks and serialize the tail.
/// Every range is non-empty, ranges are contiguous and cover `0..n` in
/// order, and a single over-long sequence simply becomes its own chunk
/// (granularity can never split one sequence).
pub fn length_aware_chunks(seqs: &[Sequence], target_chunks: usize) -> Vec<Range<usize>> {
    let n = seqs.len();
    if n == 0 {
        return Vec::new();
    }
    let target_chunks = target_chunks.clamp(1, n);
    let total: u64 = seqs.iter().map(|s| s.residues.len() as u64).sum();
    let per_chunk = (total / target_chunks as u64).max(1);
    let mut chunks = Vec::with_capacity(target_chunks);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, s) in seqs.iter().enumerate() {
        acc += s.residues.len() as u64;
        if acc >= per_chunk && chunks.len() + 1 < target_chunks {
            chunks.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        chunks.push(start..n);
    }
    chunks
}

/// What the fault domain absorbed during one pooled search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolFaultReport {
    /// Injected chunk panics (from the fault plan).
    pub injected_panics: u64,
    /// Injected worker stalls.
    pub injected_stalls: u64,
    /// Injected admission failures.
    pub injected_alloc_fails: u64,
    /// Chunk computations that panicked (injected or real) and were
    /// caught.
    pub panics: u64,
    /// Chunks quarantined to the scalar oracle after a panic.
    pub quarantined_chunks: u64,
    /// Sequences whose committed score came from the oracle recompute.
    pub oracle_scored: u64,
    /// Chunks the watchdog re-dispatched away from a silent worker.
    pub redispatches: u64,
    /// Sequence commits that lost the exactly-once race (duplicate work
    /// absorbed, never duplicate answers).
    pub duplicates_suppressed: u64,
    /// Memory-budget reservations denied (real pressure, not injected).
    pub budget_denials: u64,
    /// Chunks split in half under admission pressure.
    pub rechunks: u64,
    /// Minimum-size chunks force-admitted past the budget.
    pub forced_admissions: u64,
}

impl PoolFaultReport {
    /// Total faults injected by the plan.
    pub fn injected(&self) -> u64 {
        self.injected_panics + self.injected_stalls + self.injected_alloc_fails
    }

    /// True when the search saw no faults, pressure, or duplicate work.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Result of a pooled database search.
#[derive(Debug, Clone)]
pub struct HostSearchResult {
    /// Scores indexed like `seqs`.
    pub scores: Vec<i32>,
    /// Merged precision/Lazy-F counts across workers. Sequences scored by
    /// the quarantine oracle are counted in `faults.oracle_scored`, not
    /// here.
    pub stats: AdaptiveStats,
    /// Wall-clock seconds of the parallel section.
    pub seconds: f64,
    /// Chunks a worker took from a sibling's deque.
    pub steals: u64,
    /// Faults absorbed (all zero for a clean run).
    pub faults: PoolFaultReport,
}

impl HostSearchResult {
    fn empty() -> Self {
        Self {
            scores: Vec::new(),
            stats: AdaptiveStats::default(),
            seconds: 0.0,
            steals: 0,
            faults: PoolFaultReport::default(),
        }
    }
}

/// Execution policy for a protected pool search.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Requested worker threads (clamped like [`search_sequences`]).
    pub threads: usize,
    /// Precision ladder per alignment.
    pub precision: Precision,
    /// Cooperative cancellation; `None` means the search cannot be
    /// cancelled and is infallible.
    pub cancel: Option<CancelToken>,
    /// Seeded fault schedule (inert by default).
    pub fault_plan: HostFaultPlan,
    /// Memory admission gate (unlimited by default).
    pub budget: HostMemoryBudget,
    /// Watchdog: a worker whose heartbeat is flat for this long has its
    /// claimed chunk re-dispatched to a survivor. `0` disables the
    /// watchdog.
    pub stall_after_ms: u64,
    /// Watchdog poll period.
    pub watchdog_poll_ms: u64,
}

impl PoolConfig {
    /// Defaults: no cancellation, no faults, unlimited memory, watchdog
    /// armed at one second (generous enough that per-sequence heartbeats
    /// never false-trip on realistic chunks, cheap enough to always run).
    pub fn new(threads: usize, precision: Precision) -> Self {
        Self {
            threads,
            precision,
            cancel: None,
            fault_plan: HostFaultPlan::none(),
            budget: HostMemoryBudget::unlimited(),
            stall_after_ms: 1000,
            watchdog_poll_ms: 50,
        }
    }

    /// Builder: install a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Builder: install a fault plan.
    pub fn with_fault_plan(mut self, plan: HostFaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builder: install a memory budget.
    pub fn with_budget(mut self, budget: HostMemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder: watchdog stall threshold and poll period.
    pub fn with_watchdog(mut self, stall_after_ms: u64, poll_ms: u64) -> Self {
        self.stall_after_ms = stall_after_ms;
        self.watchdog_poll_ms = poll_ms.max(1);
        self
    }
}

/// Score every sequence on `threads` workers sharing `engine`.
pub fn search_sequences(
    engine: &QueryEngine,
    seqs: &[Sequence],
    threads: usize,
    precision: Precision,
) -> HostSearchResult {
    into_infallible(search_protected(
        engine,
        seqs,
        &PoolConfig::new(threads, precision),
    ))
}

/// Score every sequence with an explicit chunking of the database.
///
/// [`search_sequences`] is this with [`length_aware_chunks`]; the explicit
/// form exists so tests can pin reassembly correctness for *arbitrary*
/// chunk boundaries and benches can compare granularity policies. `chunks`
/// must be non-empty, contiguous, in order, and cover `0..seqs.len()`
/// exactly (debug-asserted).
pub fn search_with_chunks(
    engine: &QueryEngine,
    seqs: &[Sequence],
    threads: usize,
    precision: Precision,
    chunks: &[Range<usize>],
) -> HostSearchResult {
    into_infallible(search_protected_with_chunks(
        engine,
        seqs,
        &PoolConfig::new(threads, precision),
        chunks,
    ))
}

/// Cancellable pooled search: either the complete result (bit-identical
/// to the uncancelled run) or [`Cancelled`], never partial scores.
pub fn search_with_cancel(
    engine: &QueryEngine,
    seqs: &[Sequence],
    threads: usize,
    precision: Precision,
    cancel: &CancelToken,
) -> Result<HostSearchResult, Cancelled> {
    search_protected(
        engine,
        seqs,
        &PoolConfig::new(threads, precision).with_cancel(cancel.clone()),
    )
}

/// Protected search with any cancel token stripped from the config:
/// infallible, for callers (like the serve ladder's host lanes) that want
/// the fault domain but must always get an answer.
pub fn search_uncancelled(
    engine: &QueryEngine,
    seqs: &[Sequence],
    cfg: &PoolConfig,
) -> HostSearchResult {
    let cfg = PoolConfig {
        cancel: None,
        ..cfg.clone()
    };
    into_infallible(search_protected(engine, seqs, &cfg))
}

/// Fully configured protected search over [`length_aware_chunks`].
pub fn search_protected(
    engine: &QueryEngine,
    seqs: &[Sequence],
    cfg: &PoolConfig,
) -> Result<HostSearchResult, Cancelled> {
    let n = seqs.len();
    if n == 0 {
        return Ok(HostSearchResult::empty());
    }
    let threads = effective_workers(cfg.threads.max(1), n);
    let chunks = length_aware_chunks(seqs, threads * CHUNKS_PER_WORKER);
    // Forward the *clamped* worker count: oversubscribing a small host
    // with real OS threads thrashes the wall clock instead of scaling.
    let cfg = PoolConfig {
        threads,
        ..cfg.clone()
    };
    search_protected_with_chunks(engine, seqs, &cfg, &chunks)
}

/// Fully configured protected search with an explicit chunking.
///
/// Unlike [`search_protected`], `cfg.threads` is honored literally
/// (clamped only to the chunk count, never to the hardware): fault
/// drills deliberately oversubscribe small hosts to force multi-worker
/// interleavings, stalls and re-dispatches.
pub fn search_protected_with_chunks(
    engine: &QueryEngine,
    seqs: &[Sequence],
    cfg: &PoolConfig,
    chunks: &[Range<usize>],
) -> Result<HostSearchResult, Cancelled> {
    let n = seqs.len();
    if n == 0 {
        return Ok(HostSearchResult::empty());
    }
    debug_assert_eq!(chunks.first().map(|c| c.start), Some(0));
    debug_assert_eq!(chunks.last().map(|c| c.end), Some(n));
    debug_assert!(chunks.windows(2).all(|w| w[0].end == w[1].start));
    let threads = cfg.threads.clamp(1, chunks.len());
    let shared = RunShared::new(engine, seqs, cfg);
    let start = Instant::now();
    let steals = AtomicU64::new(0);

    if threads == 1 {
        // Caller's thread only: no queues, no watchdog, deterministic.
        let mut queue: VecDeque<Range<usize>> = chunks.iter().cloned().collect();
        while let Some(range) = queue.pop_front() {
            if !shared.run_chunk(range, &mut |r| queue.push_front(r), None) {
                break;
            }
        }
        return shared.finish(start, steals.into_inner());
    }

    let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, range) in chunks.iter().enumerate() {
        queues[i % threads].lock().push_back(range.clone());
    }
    let hearts: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let claims: Vec<Mutex<Option<Claim>>> = (0..threads).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let shared = &shared;
            let queues = &queues;
            let hearts = &hearts;
            let claims = &claims;
            let steals = &steals;
            scope.spawn(move || loop {
                if shared.cancel_observed() || shared.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Own deque first (front), then sweep siblings (back).
                let next = queues[w].lock().pop_front().or_else(|| {
                    (1..threads).find_map(|d| {
                        let victim = (w + d) % threads;
                        let stolen = queues[victim].lock().pop_back();
                        if stolen.is_some() {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        stolen
                    })
                });
                let Some(range) = next else {
                    // Uncommitted work exists but is claimed elsewhere
                    // (or about to be re-dispatched): wait for it.
                    std::thread::sleep(Duration::from_micros(200));
                    continue;
                };
                *claims[w].lock() = Some(Claim {
                    range: range.clone(),
                    redispatched: false,
                });
                let proceed = shared.run_chunk(
                    range,
                    &mut |r| queues[w].lock().push_front(r),
                    Some(&hearts[w]),
                );
                *claims[w].lock() = None;
                if !proceed {
                    break;
                }
            });
        }

        if cfg.stall_after_ms > 0 {
            let shared = &shared;
            let queues = &queues;
            let hearts = &hearts;
            let claims = &claims;
            let stall_after = Duration::from_millis(cfg.stall_after_ms);
            let poll = Duration::from_millis(cfg.watchdog_poll_ms.max(1));
            scope.spawn(move || {
                let mut last: Vec<(u64, Instant)> = hearts
                    .iter()
                    .map(|h| (h.load(Ordering::Relaxed), Instant::now()))
                    .collect();
                loop {
                    if shared.cancel_observed() || shared.remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::sleep(poll);
                    for w in 0..threads {
                        let beat = hearts[w].load(Ordering::Relaxed);
                        if beat != last[w].0 {
                            last[w] = (beat, Instant::now());
                            continue;
                        }
                        if last[w].1.elapsed() < stall_after {
                            continue;
                        }
                        // Silent worker holding a claim: hand its chunk to
                        // a survivor (any queue works — stealing finds it).
                        let mut claim = claims[w].lock();
                        if let Some(c) = claim.as_mut() {
                            if !c.redispatched {
                                c.redispatched = true;
                                queues[(w + 1) % threads].lock().push_back(c.range.clone());
                                shared.redispatches.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });

    shared.finish(start, steals.into_inner())
}

/// Unwrap a protected result that cannot be `Err` (no cancel token).
fn into_infallible(result: Result<HostSearchResult, Cancelled>) -> HostSearchResult {
    match result {
        Ok(r) => r,
        // Unreachable: only a configured CancelToken produces Err.
        Err(Cancelled) => HostSearchResult::empty(),
    }
}

/// A worker's in-flight chunk, visible to the watchdog.
#[derive(Debug, Clone)]
struct Claim {
    range: Range<usize>,
    redispatched: bool,
}

/// How one chunk computation ended inside the unwind boundary.
enum ChunkRun {
    Done,
    Cancelled,
}

/// State shared by workers, watchdog and the finishing caller.
struct RunShared<'a> {
    engine: &'a QueryEngine,
    seqs: &'a [Sequence],
    precision: Precision,
    cancel: Option<&'a CancelToken>,
    budget: &'a HostMemoryBudget,
    stall_ms: u64,
    injector: HostFaultInjector,
    cancelled: AtomicBool,
    committed: Vec<AtomicBool>,
    slots: Vec<AtomicI32>,
    remaining: AtomicUsize,
    stats: Mutex<AdaptiveStats>,
    panics: AtomicU64,
    quarantined_chunks: AtomicU64,
    oracle_scored: AtomicU64,
    redispatches: AtomicU64,
    duplicates_suppressed: AtomicU64,
    budget_denials: AtomicU64,
    rechunks: AtomicU64,
    forced_admissions: AtomicU64,
}

impl<'a> RunShared<'a> {
    fn new(engine: &'a QueryEngine, seqs: &'a [Sequence], cfg: &'a PoolConfig) -> Self {
        let n = seqs.len();
        Self {
            engine,
            seqs,
            precision: cfg.precision,
            cancel: cfg.cancel.as_ref(),
            budget: &cfg.budget,
            stall_ms: cfg.fault_plan.stall_ms,
            injector: HostFaultInjector::new(cfg.fault_plan.clone()),
            cancelled: AtomicBool::new(false),
            committed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            slots: (0..n).map(|_| AtomicI32::new(0)).collect(),
            remaining: AtomicUsize::new(n),
            stats: Mutex::new(AdaptiveStats::default()),
            panics: AtomicU64::new(0),
            quarantined_chunks: AtomicU64::new(0),
            oracle_scored: AtomicU64::new(0),
            redispatches: AtomicU64::new(0),
            duplicates_suppressed: AtomicU64::new(0),
            budget_denials: AtomicU64::new(0),
            rechunks: AtomicU64::new(0),
            forced_admissions: AtomicU64::new(0),
        }
    }

    fn cancel_observed(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Chunk-boundary cancellation poll.
    fn poll_cancel(&self) -> bool {
        if let Some(token) = self.cancel {
            if token.poll() {
                self.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Exactly-once commit of sequence `i`. Returns whether this caller
    /// won the race; losers are counted, their work discarded.
    fn commit(&self, i: usize, score: i32) -> bool {
        if self.committed[i]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.slots[i].store(score, Ordering::Release);
            self.remaining.fetch_sub(1, Ordering::AcqRel);
            true
        } else {
            self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Admission bytes for a chunk of `len` sequences.
    fn chunk_cost(&self, len: usize) -> u64 {
        self.engine.working_set_bytes() + len as u64 * SEQ_ADMISSION_BYTES
    }

    /// Execute one chunk through the full fault domain. Returns `false`
    /// when the worker should stop (cancellation observed).
    fn run_chunk(
        &self,
        range: Range<usize>,
        requeue: &mut dyn FnMut(Range<usize>),
        heart: Option<&AtomicU64>,
    ) -> bool {
        if self.poll_cancel() {
            return false;
        }
        let id = (range.start, range.len());
        let fault = self.injector.fault_for(id);

        // Memory admission (a real denial and an injected alloc failure
        // take the same recovery path: split and retry, force at minimum).
        let admission = if matches!(fault, Some(HostFaultKind::AllocFail)) {
            None
        } else {
            match self.budget.try_reserve(self.chunk_cost(range.len())) {
                Ok(r) => Some(r),
                Err(_) => {
                    self.budget_denials.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
        };
        let _reservation = match admission {
            Some(r) => r,
            None if range.len() > 1 => {
                let mid = range.start + range.len() / 2;
                requeue(mid..range.end);
                requeue(range.start..mid);
                self.rechunks.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            None => {
                self.forced_admissions.fetch_add(1, Ordering::Relaxed);
                self.budget.force_reserve(self.chunk_cost(range.len()))
            }
        };

        if matches!(fault, Some(HostFaultKind::Stall)) {
            // Go silent without beating the heart: the watchdog's cue.
            std::thread::sleep(Duration::from_millis(self.stall_ms));
        }

        let inject_panic = matches!(fault, Some(HostFaultKind::Panic));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!(
                    "injected host fault: panic in chunk [{}, {})",
                    range.start, range.end
                );
            }
            let mut chunk_stats = AdaptiveStats::default();
            for i in range.clone() {
                if self.cancel_observed() {
                    return ChunkRun::Cancelled;
                }
                let residues = &self.seqs[i].residues;
                let mut delta = AdaptiveStats::default();
                let score = match self.cancel {
                    Some(token) => {
                        match self.engine.score_with_cancel(
                            residues,
                            self.precision,
                            &mut delta,
                            token,
                        ) {
                            Ok(score) => score,
                            Err(Cancelled) => return ChunkRun::Cancelled,
                        }
                    }
                    None => self.engine.score_with(residues, self.precision, &mut delta),
                };
                if self.commit(i, score) {
                    chunk_stats.merge(&delta);
                }
                if let Some(h) = heart {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.stats.lock().merge(&chunk_stats);
            ChunkRun::Done
        }));

        match outcome {
            Ok(ChunkRun::Done) => true,
            Ok(ChunkRun::Cancelled) => {
                self.cancelled.store(true, Ordering::Release);
                false
            }
            Err(_) => {
                // Quarantine: the chunk's unfinished sequences are
                // recomputed on the scalar-validated Farrar oracle —
                // independent code, bit-identical scores by the
                // differential suites.
                self.panics.fetch_add(1, Ordering::Relaxed);
                self.quarantined_chunks.fetch_add(1, Ordering::Relaxed);
                for i in range {
                    if self.committed[i].load(Ordering::Acquire) {
                        continue;
                    }
                    let score = sw_striped_score(
                        self.engine.params(),
                        self.engine.query(),
                        &self.seqs[i].residues,
                    );
                    if self.commit(i, score) {
                        self.oracle_scored.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(h) = heart {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                }
                true
            }
        }
    }

    /// Assemble the result (or the cancellation) and publish counters on
    /// the calling thread.
    fn finish(self, start: Instant, steals: u64) -> Result<HostSearchResult, Cancelled> {
        let seconds = start.elapsed().as_secs_f64();
        let faults = PoolFaultReport {
            injected_panics: self.injector.panics(),
            injected_stalls: self.injector.stalls(),
            injected_alloc_fails: self.injector.alloc_fails(),
            panics: self.panics.into_inner(),
            quarantined_chunks: self.quarantined_chunks.into_inner(),
            oracle_scored: self.oracle_scored.into_inner(),
            redispatches: self.redispatches.into_inner(),
            duplicates_suppressed: self.duplicates_suppressed.into_inner(),
            budget_denials: self.budget_denials.into_inner(),
            rechunks: self.rechunks.into_inner(),
            forced_admissions: self.forced_admissions.into_inner(),
        };
        record_pool_faults(&faults);
        if self.cancelled.into_inner() && self.remaining.load(Ordering::Acquire) > 0 {
            obs::counter_add("cudasw.simd.pool.cancelled", &[], 1.0);
            return Err(Cancelled);
        }
        debug_assert_eq!(self.remaining.into_inner(), 0, "lost sequences");
        let scores = self.slots.into_iter().map(|s| s.into_inner()).collect();
        Ok(HostSearchResult {
            scores,
            stats: self.stats.into_inner(),
            seconds,
            steals,
            faults,
        })
    }
}

/// Publish the pool fault-domain counters under `cudasw.simd.pool.*`
/// (calling thread only — the recorder is thread-local).
fn record_pool_faults(faults: &PoolFaultReport) {
    let pairs: [(&str, u64); 9] = [
        ("cudasw.simd.pool.panics", faults.panics),
        ("cudasw.simd.pool.quarantines", faults.quarantined_chunks),
        ("cudasw.simd.pool.oracle_recomputes", faults.oracle_scored),
        ("cudasw.simd.pool.redispatches", faults.redispatches),
        (
            "cudasw.simd.pool.duplicates_suppressed",
            faults.duplicates_suppressed,
        ),
        ("cudasw.simd.pool.budget_denied", faults.budget_denials),
        ("cudasw.simd.pool.rechunks", faults.rechunks),
        (
            "cudasw.simd.pool.forced_admissions",
            faults.forced_admissions,
        ),
        ("cudasw.simd.pool.faults_injected", faults.injected()),
    ];
    for (name, value) in pairs {
        if value > 0 {
            obs::counter_add(name, &[], value as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::HostFaultRates;
    use sw_align::smith_waterman::{sw_score, SwParams};
    use sw_db::synth::{database_with_lengths, make_query};

    fn engine(query: &[u8]) -> QueryEngine {
        QueryEngine::new(SwParams::cudasw_default(), query)
    }

    #[test]
    fn pooled_scores_match_scalar_for_any_thread_count() {
        let db = database_with_lengths("t", &[30, 50, 80, 120, 40, 66, 25, 90, 110, 35], 3);
        let query = make_query(48, 7);
        let eng = engine(&query);
        let expected: Vec<i32> = db
            .sequences()
            .iter()
            .map(|s| sw_score(eng.params(), &query, &s.residues))
            .collect();
        for threads in [1, 2, 4, 7] {
            let r = search_sequences(&eng, db.sequences(), threads, Precision::Adaptive);
            assert_eq!(r.scores, expected, "threads={threads}");
            assert!(r.faults.is_clean(), "threads={threads}");
            let w = search_sequences(&eng, db.sequences(), threads, Precision::Word);
            assert_eq!(w.scores, expected, "word mode, threads={threads}");
        }
    }

    #[test]
    fn stats_account_every_sequence_once() {
        let db = database_with_lengths("t", &[20, 30, 40, 50, 60, 70, 80, 90], 11);
        let query = make_query(64, 5);
        let eng = engine(&query);
        for threads in [1, 3] {
            let r = search_sequences(&eng, db.sequences(), threads, Precision::Adaptive);
            assert_eq!(
                r.stats.byte_mode + r.stats.word_fallbacks,
                db.len() as u64,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn more_workers_than_sequences() {
        let db = database_with_lengths("t", &[15, 22], 1);
        let query = make_query(20, 9);
        let eng = engine(&query);
        let r = search_sequences(&eng, db.sequences(), 8, Precision::Adaptive);
        assert_eq!(r.scores.len(), 2);
        assert_eq!(
            r.scores[0],
            sw_score(eng.params(), &query, &db.sequences()[0].residues)
        );
    }

    #[test]
    fn worker_count_is_clamped_to_useful_work() {
        // Tiny database: pooling can only lose; collapse to inline.
        assert_eq!(effective_workers(4, 10), 1);
        // Just under two workers' worth stays on one.
        assert_eq!(effective_workers(4, MIN_SEQS_PER_WORKER * 2 - 1), 1);
        // Large database: bounded by requested threads and hardware.
        let hardware = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(effective_workers(4, 10_000), 4.min(hardware));
        assert!(effective_workers(usize::MAX, 10_000) <= hardware.max(1));
    }

    #[test]
    fn length_aware_chunks_balance_residues_not_counts() {
        // Length-sorted Swissprot-ish skew: many short, few giant.
        let mut lens = vec![25usize; 60];
        lens.extend([400, 450, 500, 2000, 3000]);
        let db = database_with_lengths("t", &lens, 5);
        let chunks = length_aware_chunks(db.sequences(), 8);
        assert!(!chunks.is_empty());
        assert!(chunks.len() <= 8);
        // Coverage: contiguous, in order, exactly 0..n.
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, db.len());
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Balance: no chunk carries more than ~2 fair shares of residues.
        let residues = |r: &Range<usize>| -> u64 {
            db.sequences()[r.clone()]
                .iter()
                .map(|s| s.residues.len() as u64)
                .sum()
        };
        let total: u64 = residues(&(0..db.len()));
        let fair = total / chunks.len() as u64;
        for c in &chunks {
            assert!(
                residues(c) <= fair * 2 + 3000,
                "chunk {c:?} carries {} residues (fair share {fair})",
                residues(c)
            );
        }
        // The giant-sequence tail must not be one chunk of everything.
        let count_based_tail = db.len() / 8;
        let last = chunks.last().unwrap();
        assert!(
            last.len() <= count_based_tail.max(2),
            "tail chunk {last:?} should be short on a skewed database"
        );
    }

    #[test]
    fn single_sequence_and_degenerate_targets() {
        let db = database_with_lengths("t", &[500], 2);
        assert_eq!(length_aware_chunks(db.sequences(), 8), vec![0..1]);
        assert_eq!(length_aware_chunks(db.sequences(), 0), vec![0..1]);
        assert!(length_aware_chunks(&[], 4).is_empty());
    }

    #[test]
    fn empty_database() {
        let eng = engine(&make_query(10, 1));
        let r = search_sequences(&eng, &[], 4, Precision::Adaptive);
        assert!(r.scores.is_empty());
        assert_eq!(r.stats, AdaptiveStats::default());
        assert_eq!(r.steals, 0);
        assert!(r.faults.is_clean());
    }

    #[test]
    fn injected_panic_is_quarantined_to_the_oracle() {
        let db = database_with_lengths("t", &[40, 50, 60, 70, 80, 90], 5);
        let query = make_query(52, 3);
        let eng = engine(&query);
        let clean = search_sequences(&eng, db.sequences(), 1, Precision::Adaptive);
        let chunks: Vec<Range<usize>> = (0..db.len()).map(|i| i..i + 1).collect();
        let plan = HostFaultPlan::none().with_fault_at((2, 1), HostFaultKind::Panic);
        let cfg = PoolConfig::new(1, Precision::Adaptive).with_fault_plan(plan);
        let r = match search_protected_with_chunks(&eng, db.sequences(), &cfg, &chunks) {
            Ok(r) => r,
            Err(e) => panic!("not cancellable: {e}"),
        };
        assert_eq!(r.scores, clean.scores, "bit-identical through the panic");
        assert_eq!(r.faults.panics, 1);
        assert_eq!(r.faults.quarantined_chunks, 1);
        assert_eq!(r.faults.oracle_scored, 1);
        assert_eq!(r.faults.injected_panics, 1);
    }

    #[test]
    fn budget_pressure_rechunks_and_still_covers_everything() {
        let db = database_with_lengths("t", &[30; 24], 9);
        let query = make_query(40, 2);
        let eng = engine(&query);
        let clean = search_sequences(&eng, db.sequences(), 1, Precision::Adaptive);
        // Budget below even one chunk's working set: every chunk splits
        // down to single sequences, which are then force-admitted.
        let cfg = PoolConfig::new(1, Precision::Adaptive).with_budget(HostMemoryBudget::bytes(8));
        // One chunk spanning the whole database (not a 0..n index list —
        // clippy::single_range_in_vec_init guards against that misread).
        let chunks = [Range {
            start: 0,
            end: db.len(),
        }];
        let r = match search_protected_with_chunks(&eng, db.sequences(), &cfg, &chunks) {
            Ok(r) => r,
            Err(e) => panic!("not cancellable: {e}"),
        };
        assert_eq!(r.scores, clean.scores);
        assert!(r.faults.rechunks > 0, "pressure must split chunks");
        assert!(r.faults.forced_admissions > 0, "minimum chunks forced");
        assert!(r.faults.budget_denials > 0);
    }

    #[test]
    fn chaos_seeds_reproduce_the_fault_free_scores() {
        let mut lens: Vec<usize> = (0..48).map(|i| 24 + (i * 7) % 90).collect();
        lens.push(400);
        let db = database_with_lengths("t", &lens, 13);
        let query = make_query(64, 11);
        let eng = engine(&query);
        let clean = search_sequences(&eng, db.sequences(), 1, Precision::Adaptive);
        for seed in [1u64, 2, 3] {
            let plan = HostFaultPlan::random(seed, HostFaultRates::chaos()).with_stall_ms(5);
            for threads in [1, 3] {
                let cfg = PoolConfig::new(threads, Precision::Adaptive)
                    .with_fault_plan(plan.clone())
                    .with_watchdog(20, 2);
                let chunks: Vec<Range<usize>> = (0..db.len())
                    .step_by(4)
                    .map(|s| s..(s + 4).min(db.len()))
                    .collect();
                let r = match search_protected_with_chunks(&eng, db.sequences(), &cfg, &chunks) {
                    Ok(r) => r,
                    Err(e) => panic!("not cancellable: {e}"),
                };
                assert_eq!(
                    r.scores, clean.scores,
                    "seed {seed}, threads {threads}: scores must be bit-identical"
                );
                assert_eq!(r.scores.len(), db.len(), "zero lost sequences");
            }
        }
    }

    #[test]
    fn cancellation_returns_no_partial_scores() {
        let db = database_with_lengths("t", &[300; 8], 3);
        let query = make_query(80, 5);
        let eng = engine(&query);
        let token = CancelToken::after_polls(3);
        let r = search_with_cancel(&eng, db.sequences(), 1, Precision::Adaptive, &token);
        assert_eq!(r.err(), Some(Cancelled));
    }

    #[test]
    fn uncancelled_token_completes_bit_identically() {
        let db = database_with_lengths("t", &[40, 60, 80], 3);
        let query = make_query(48, 5);
        let eng = engine(&query);
        let clean = search_sequences(&eng, db.sequences(), 1, Precision::Adaptive);
        let token = CancelToken::new();
        let r = match search_with_cancel(&eng, db.sequences(), 1, Precision::Adaptive, &token) {
            Ok(r) => r,
            Err(e) => panic!("never cancelled: {e}"),
        };
        assert_eq!(r.scores, clean.scores);
        assert!(token.polls() > 0, "chunk boundaries and kernels polled");
    }
}
