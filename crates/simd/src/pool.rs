//! Work-stealing database sharding across cores.
//!
//! The database is cut into contiguous chunks (several per worker, so the
//! tail stays balanced) and dealt round-robin onto per-worker deques. Each
//! worker drains its own deque from the front; when empty it *steals* from
//! the back of a sibling's deque — the classic work-stealing discipline
//! that keeps cores busy when sequence lengths are skewed, playing the
//! role of SWPS3's dynamic work queue with less contention (workers touch
//! the shared state only once per chunk, not once per sequence).
//!
//! **Granularity is residue-aware, not count-aware.** Real databases are
//! searched length-sorted (better cache reuse, GPU-batch parity), which
//! makes equal-*count* chunks maximally imbalanced: on a Swissprot-shaped
//! log-normal length distribution the last chunk of a sorted database
//! holds the few giant sequences and carries an order of magnitude more
//! cells than the first, so 4 threads degenerate into 1 thread plus a
//! convoy. [`length_aware_chunks`] instead cuts contiguous chunks of
//! roughly equal *total residues* — cell count is `query_len × residues`,
//! so equal residues is equal work — and the deal order stays round-robin
//! so each worker's deque spans the length spectrum.
//!
//! All workers share one read-only [`QueryEngine`] — the striped profiles
//! are built once per query and reused by every thread (that sharing is
//! what amortizes the per-query profile build across the whole database).
//! Worker-local [`AdaptiveStats`] are merged and returned to the caller,
//! which is responsible for publishing them (the metrics recorder is
//! thread-local; counts bumped on worker threads would be lost).

use crate::byte_mode::AdaptiveStats;
use crate::engine::{Precision, QueryEngine};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use sw_db::Sequence;

/// Chunks dealt per worker: more gives better tail balance, fewer gives
/// less queue traffic. 8 keeps the largest chunk under ~2% of the work at
/// 4 threads.
pub const CHUNKS_PER_WORKER: usize = 8;

/// Minimum sequences per worker before the pool pays for itself. Thread
/// spawn plus result merging costs tens of microseconds while a typical
/// sequence scores in about one, so a worker with less than this much
/// work makes the pooled pass *slower* than the inline loop. The worker
/// count is clamped so every worker clears this bar — small databases
/// degrade gracefully to fewer workers and finally to the inline path.
pub const MIN_SEQS_PER_WORKER: usize = 16;

/// Workers actually worth spawning for `n` sequences on this machine:
/// never more than the hardware can run concurrently (oversubscribing
/// CPU-bound scoring only adds scheduler churn), never so many that a
/// worker's share drops under [`MIN_SEQS_PER_WORKER`].
pub fn effective_workers(threads: usize, n: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    threads.min(hardware).min(n / MIN_SEQS_PER_WORKER).max(1)
}

/// Cut `seqs` into at most `target_chunks` contiguous ranges of roughly
/// equal **total residues**.
///
/// Scoring cost per sequence is `query_len × residues`, so residue balance
/// is work balance — equal-count chunks over a length-sorted database put
/// all the giant sequences in the final chunks and serialize the tail.
/// Every range is non-empty, ranges are contiguous and cover `0..n` in
/// order, and a single over-long sequence simply becomes its own chunk
/// (granularity can never split one sequence).
pub fn length_aware_chunks(seqs: &[Sequence], target_chunks: usize) -> Vec<Range<usize>> {
    let n = seqs.len();
    if n == 0 {
        return Vec::new();
    }
    let target_chunks = target_chunks.clamp(1, n);
    let total: u64 = seqs.iter().map(|s| s.residues.len() as u64).sum();
    let per_chunk = (total / target_chunks as u64).max(1);
    let mut chunks = Vec::with_capacity(target_chunks);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, s) in seqs.iter().enumerate() {
        acc += s.residues.len() as u64;
        if acc >= per_chunk && chunks.len() + 1 < target_chunks {
            chunks.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        chunks.push(start..n);
    }
    chunks
}

/// Result of a pooled database search.
#[derive(Debug, Clone)]
pub struct HostSearchResult {
    /// Scores indexed like `seqs`.
    pub scores: Vec<i32>,
    /// Merged precision/Lazy-F counts across workers.
    pub stats: AdaptiveStats,
    /// Wall-clock seconds of the parallel section.
    pub seconds: f64,
    /// Chunks a worker took from a sibling's deque.
    pub steals: u64,
}

/// Score every sequence on `threads` workers sharing `engine`.
pub fn search_sequences(
    engine: &QueryEngine,
    seqs: &[Sequence],
    threads: usize,
    precision: Precision,
) -> HostSearchResult {
    let n = seqs.len();
    if n == 0 {
        return HostSearchResult {
            scores: Vec::new(),
            stats: AdaptiveStats::default(),
            seconds: 0.0,
            steals: 0,
        };
    }
    let threads = effective_workers(threads.max(1), n);
    let chunks = length_aware_chunks(seqs, threads * CHUNKS_PER_WORKER);
    search_with_chunks(engine, seqs, threads, precision, &chunks)
}

/// Score every sequence with an explicit chunking of the database.
///
/// [`search_sequences`] is this with [`length_aware_chunks`]; the explicit
/// form exists so tests can pin reassembly correctness for *arbitrary*
/// chunk boundaries and benches can compare granularity policies. `chunks`
/// must be non-empty, contiguous, in order, and cover `0..seqs.len()`
/// exactly (debug-asserted).
pub fn search_with_chunks(
    engine: &QueryEngine,
    seqs: &[Sequence],
    threads: usize,
    precision: Precision,
    chunks: &[Range<usize>],
) -> HostSearchResult {
    let n = seqs.len();
    if n == 0 {
        return HostSearchResult {
            scores: Vec::new(),
            stats: AdaptiveStats::default(),
            seconds: 0.0,
            steals: 0,
        };
    }
    debug_assert_eq!(chunks.first().map(|c| c.start), Some(0));
    debug_assert_eq!(chunks.last().map(|c| c.end), Some(n));
    debug_assert!(chunks.windows(2).all(|w| w[0].end == w[1].start));
    let threads = threads.clamp(1, chunks.len());
    let start = Instant::now();
    if threads == 1 {
        // No pool: score inline on the caller's thread.
        let mut stats = AdaptiveStats::default();
        let scores = seqs
            .iter()
            .map(|s| engine.score_with(&s.residues, precision, &mut stats))
            .collect();
        return HostSearchResult {
            scores,
            stats,
            seconds: start.elapsed().as_secs_f64(),
            steals: 0,
        };
    }

    let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, range) in chunks.iter().enumerate() {
        queues[i % threads].lock().push_back(range.clone());
    }

    // Each worker pushes its finished chunks as (chunk start, scores).
    type ScoredChunks = Vec<(usize, Vec<i32>)>;
    let steals = AtomicU64::new(0);
    let merged: Mutex<(ScoredChunks, AdaptiveStats)> =
        Mutex::new((Vec::new(), AdaptiveStats::default()));
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let steals = &steals;
            let merged = &merged;
            scope.spawn(move || {
                let mut local: Vec<(usize, Vec<i32>)> = Vec::new();
                let mut stats = AdaptiveStats::default();
                loop {
                    // Own deque first (front), then sweep siblings (back).
                    let next = queues[w].lock().pop_front().or_else(|| {
                        (1..threads).find_map(|d| {
                            let victim = (w + d) % threads;
                            let stolen = queues[victim].lock().pop_back();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        })
                    });
                    let Some(range) = next else { break };
                    let chunk_scores: Vec<i32> = seqs[range.clone()]
                        .iter()
                        .map(|s| engine.score_with(&s.residues, precision, &mut stats))
                        .collect();
                    local.push((range.start, chunk_scores));
                }
                let mut guard = merged.lock();
                guard.0.append(&mut local);
                guard.1.merge(&stats);
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();

    let (chunks, stats) = merged.into_inner();
    let mut scores = vec![0i32; n];
    for (chunk_start, chunk_scores) in chunks {
        scores[chunk_start..chunk_start + chunk_scores.len()].copy_from_slice(&chunk_scores);
    }
    HostSearchResult {
        scores,
        stats,
        seconds,
        steals: steals.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::smith_waterman::{sw_score, SwParams};
    use sw_db::synth::{database_with_lengths, make_query};

    fn engine(query: &[u8]) -> QueryEngine {
        QueryEngine::new(SwParams::cudasw_default(), query)
    }

    #[test]
    fn pooled_scores_match_scalar_for_any_thread_count() {
        let db = database_with_lengths("t", &[30, 50, 80, 120, 40, 66, 25, 90, 110, 35], 3);
        let query = make_query(48, 7);
        let eng = engine(&query);
        let expected: Vec<i32> = db
            .sequences()
            .iter()
            .map(|s| sw_score(eng.params(), &query, &s.residues))
            .collect();
        for threads in [1, 2, 4, 7] {
            let r = search_sequences(&eng, db.sequences(), threads, Precision::Adaptive);
            assert_eq!(r.scores, expected, "threads={threads}");
            let w = search_sequences(&eng, db.sequences(), threads, Precision::Word);
            assert_eq!(w.scores, expected, "word mode, threads={threads}");
        }
    }

    #[test]
    fn stats_account_every_sequence_once() {
        let db = database_with_lengths("t", &[20, 30, 40, 50, 60, 70, 80, 90], 11);
        let query = make_query(64, 5);
        let eng = engine(&query);
        for threads in [1, 3] {
            let r = search_sequences(&eng, db.sequences(), threads, Precision::Adaptive);
            assert_eq!(
                r.stats.byte_mode + r.stats.word_fallbacks,
                db.len() as u64,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn more_workers_than_sequences() {
        let db = database_with_lengths("t", &[15, 22], 1);
        let query = make_query(20, 9);
        let eng = engine(&query);
        let r = search_sequences(&eng, db.sequences(), 8, Precision::Adaptive);
        assert_eq!(r.scores.len(), 2);
        assert_eq!(
            r.scores[0],
            sw_score(eng.params(), &query, &db.sequences()[0].residues)
        );
    }

    #[test]
    fn worker_count_is_clamped_to_useful_work() {
        // Tiny database: pooling can only lose; collapse to inline.
        assert_eq!(effective_workers(4, 10), 1);
        // Just under two workers' worth stays on one.
        assert_eq!(effective_workers(4, MIN_SEQS_PER_WORKER * 2 - 1), 1);
        // Large database: bounded by requested threads and hardware.
        let hardware = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(effective_workers(4, 10_000), 4.min(hardware));
        assert!(effective_workers(usize::MAX, 10_000) <= hardware.max(1));
    }

    #[test]
    fn length_aware_chunks_balance_residues_not_counts() {
        // Length-sorted Swissprot-ish skew: many short, few giant.
        let mut lens = vec![25usize; 60];
        lens.extend([400, 450, 500, 2000, 3000]);
        let db = database_with_lengths("t", &lens, 5);
        let chunks = length_aware_chunks(db.sequences(), 8);
        assert!(!chunks.is_empty());
        assert!(chunks.len() <= 8);
        // Coverage: contiguous, in order, exactly 0..n.
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, db.len());
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Balance: no chunk carries more than ~2 fair shares of residues.
        let residues = |r: &Range<usize>| -> u64 {
            db.sequences()[r.clone()]
                .iter()
                .map(|s| s.residues.len() as u64)
                .sum()
        };
        let total: u64 = residues(&(0..db.len()));
        let fair = total / chunks.len() as u64;
        for c in &chunks {
            assert!(
                residues(c) <= fair * 2 + 3000,
                "chunk {c:?} carries {} residues (fair share {fair})",
                residues(c)
            );
        }
        // The giant-sequence tail must not be one chunk of everything.
        let count_based_tail = db.len() / 8;
        let last = chunks.last().unwrap();
        assert!(
            last.len() <= count_based_tail.max(2),
            "tail chunk {last:?} should be short on a skewed database"
        );
    }

    #[test]
    fn single_sequence_and_degenerate_targets() {
        let db = database_with_lengths("t", &[500], 2);
        assert_eq!(length_aware_chunks(db.sequences(), 8), vec![0..1]);
        assert_eq!(length_aware_chunks(db.sequences(), 0), vec![0..1]);
        assert!(length_aware_chunks(&[], 4).is_empty());
    }

    #[test]
    fn empty_database() {
        let eng = engine(&make_query(10, 1));
        let r = search_sequences(&eng, &[], 4, Precision::Adaptive);
        assert!(r.scores.is_empty());
        assert_eq!(r.stats, AdaptiveStats::default());
        assert_eq!(r.steals, 0);
    }
}
