//! The portable fallback backend: the emulated vectors as a [`Backend`].
//!
//! [`U8x16`] and [`I16x8`] are plain fixed-size arrays written so LLVM can
//! auto-vectorize them; here they implement the [`ByteSimd`]/[`WordSimd`]
//! traits so the generic kernels run on any target, and so the differential
//! tests have a known-good baseline that is independent of `core::arch`.

use crate::backend::{Backend, ByteSimd, WordSimd};
use crate::byte_mode::{U8x16, BYTE_LANES};
use crate::vector::{I16x8, LANES};

impl ByteSimd for U8x16 {
    const LANES: usize = BYTE_LANES;

    #[inline(always)]
    fn splat(v: u8) -> Self {
        U8x16::splat(v)
    }

    #[inline(always)]
    fn load(lanes: &[u8]) -> Self {
        let mut out = [0u8; BYTE_LANES];
        out.copy_from_slice(&lanes[..BYTE_LANES]);
        Self(out)
    }

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        U8x16::sat_add(self, rhs)
    }

    #[inline(always)]
    fn sat_sub(self, rhs: Self) -> Self {
        U8x16::sat_sub(self, rhs)
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        U8x16::max(self, rhs)
    }

    #[inline(always)]
    fn any_gt(self, rhs: Self) -> bool {
        U8x16::any_gt(self, rhs)
    }

    #[inline(always)]
    fn shift(self) -> Self {
        self.shift_in(0)
    }

    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        let mut out = [0u8; BYTE_LANES];
        let n = n.min(BYTE_LANES);
        out[n..].copy_from_slice(&self.0[..BYTE_LANES - n]);
        Self(out)
    }

    #[inline(always)]
    fn horizontal_max(self) -> u8 {
        U8x16::horizontal_max(self)
    }
}

impl WordSimd for I16x8 {
    const LANES: usize = LANES;

    #[inline(always)]
    fn splat(v: i16) -> Self {
        I16x8::splat(v)
    }

    #[inline(always)]
    fn load(lanes: &[i16]) -> Self {
        let mut out = [0i16; LANES];
        out.copy_from_slice(&lanes[..LANES]);
        Self(out)
    }

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        I16x8::sat_add(self, rhs)
    }

    #[inline(always)]
    fn sat_sub(self, rhs: Self) -> Self {
        I16x8::sat_sub(self, rhs)
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        I16x8::max(self, rhs)
    }

    #[inline(always)]
    fn any_gt(self, rhs: Self) -> bool {
        I16x8::any_gt(self, rhs)
    }

    #[inline(always)]
    fn shift(self) -> Self {
        self.shift_in(0)
    }

    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        let mut out = [0i16; LANES];
        let n = n.min(LANES);
        out[n..].copy_from_slice(&self.0[..LANES - n]);
        Self(out)
    }

    #[inline(always)]
    fn horizontal_max(self) -> i16 {
        I16x8::horizontal_max(self)
    }
}

/// The always-available emulated-vector backend.
pub struct PortableBackend;

impl Backend for PortableBackend {
    type Byte = U8x16;
    type Word = I16x8;
    const NAME: &'static str = "portable";

    fn available() -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{sw_bytes, sw_words, ByteProfileOf, WordProfileOf};
    use crate::byte_mode::{sw_striped_bytes, ByteProfile};
    use crate::farrar::{striped_profile, sw_striped};
    use sw_align::smith_waterman::{sw_score, SwParams};
    use sw_db::synth::make_query;

    #[test]
    fn generic_kernels_match_legacy_wrappers() {
        let p = SwParams::cudasw_default();
        let q = make_query(70, 5);
        let d = make_query(55, 9);

        let byte_prof = ByteProfileOf::<U8x16>::build(&p, &q);
        let byte = sw_bytes(&p.gaps, &byte_prof, &d);
        let legacy_prof = ByteProfile::build(&p, &q);
        assert_eq!(byte.score, sw_striped_bytes(&p, &legacy_prof, &d));

        let word_prof = WordProfileOf::<I16x8>::build(&p, &q);
        let word = sw_words(&p.gaps, &word_prof, &d);
        let legacy_word = striped_profile(&p, &q);
        assert_eq!(word.score, sw_striped(&p, &legacy_word, &d).score);
        assert_eq!(word.score, sw_score(&p, &q, &d));
    }

    #[test]
    fn trait_shift_is_zero_fill() {
        let mut v = [0u8; 16];
        v[0] = 3;
        v[15] = 9;
        let shifted = ByteSimd::shift(U8x16(v));
        assert_eq!(shifted.0[0], 0);
        assert_eq!(shifted.0[1], 3);
        let mut w = [0i16; 8];
        w[0] = -4;
        let shifted = WordSimd::shift(I16x8(w));
        assert_eq!(shifted.0[0], 0);
        assert_eq!(shifted.0[1], -4);
    }
}
