//! Rognes–Seeberg sequential vertical vectorization.
//!
//! Vectors run *down the query* (8 consecutive positions), with similarity
//! scores fetched through a query profile — the optimization §II-A of the
//! paper credits to Rognes & Seeberg and that CUDASW++ adopts. The
//! vertical `F` dependency is serial within a vector; like the original
//! SWAT-style implementation, a cheap vector test detects the common case
//! where `F` cannot influence `H`, and the serial repair is skipped
//! (counted, so benchmarks can report the skip rate).

#![allow(clippy::needless_range_loop)] // lane loops mirror SIMD semantics
use crate::vector::{I16x8, LANES};
use sw_align::profile::QueryProfile;
use sw_align::smith_waterman::SwParams;

/// Result of a vertical-vector alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RognesResult {
    /// Optimal local score.
    pub score: i32,
    /// Vector chunks processed.
    pub chunks: u64,
    /// Chunks where the F-influence test allowed skipping the H repair.
    pub f_skips: u64,
}

/// Vertical-vector Smith-Waterman with a query profile.
pub fn sw_vertical(params: &SwParams, query: &[u8], db: &[u8]) -> RognesResult {
    let m = query.len();
    let n = db.len();
    if m == 0 || n == 0 {
        return RognesResult {
            score: 0,
            chunks: 0,
            f_skips: 0,
        };
    }
    let open = params.gaps.open as i16;
    let extend = params.gaps.extend as i16;
    let neg = i16::MIN / 2;
    let profile = QueryProfile::build(&params.matrix, query);

    let mut h_prev = vec![0i16; m]; // H of the previous column
    let mut e_prev = vec![neg; m]; // E of the previous column
    let mut h_cur = vec![0i16; m];
    let mut e_cur = vec![neg; m];
    let v_open = I16x8::splat(open);
    let v_extend = I16x8::splat(extend);
    let mut best = 0i16;
    let mut chunks = 0u64;
    let mut f_skips = 0u64;

    for &d in db {
        let prow = profile.row(d);
        let mut f = neg; // F entering the next chunk (serial chain)
        let mut h_above = 0i16; // H(i-1) of the *current* column
        let mut i0 = 0usize;
        while i0 < m {
            let lanes = LANES.min(m - i0);
            chunks += 1;
            // Vector operands for rows i0..i0+lanes of this column.
            let mut diag = [0i16; LANES];
            let mut hp = [0i16; LANES];
            let mut ep = [neg; LANES];
            let mut w = [0i16; LANES];
            for k in 0..lanes {
                let i = i0 + k;
                diag[k] = if i == 0 { 0 } else { h_prev[i - 1] };
                hp[k] = h_prev[i];
                ep[k] = e_prev[i];
                w[k] = prow[i] as i16;
            }
            let v_e = I16x8(ep).sat_sub(v_extend).max(I16x8(hp).sat_sub(v_open));
            let v_h = I16x8(diag).sat_add(I16x8(w)).max(v_e).max(I16x8::zero());

            // SWAT-like test: if F entering the chunk is non-positive and
            // no H in the chunk (nor the one just above it) exceeds the
            // gap-open penalty, no F value inside the chunk can rise above
            // zero, and H (always >= 0) cannot be improved.
            let h_arr = v_h;
            let skip = f <= 0 && h_above <= open && !h_arr.any_gt(v_open);
            if skip {
                f_skips += 1;
            }

            // Serial F chain (always evaluated to carry `f` and `h_above`
            // exactly; the vector test only certifies that H needs no fix).
            let mut out_h = h_arr.0;
            for k in 0..lanes {
                f = (f.saturating_sub(extend)).max(h_above.saturating_sub(open));
                if !skip && f > out_h[k] {
                    out_h[k] = f;
                }
                h_above = out_h[k];
            }

            for k in 0..lanes {
                let i = i0 + k;
                h_cur[i] = out_h[k];
                e_cur[i] = v_e.0[k];
                if out_h[k] > best {
                    best = out_h[k];
                }
            }
            i0 += lanes;
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
    }

    RognesResult {
        score: best as i32,
        chunks,
        f_skips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::alphabet::encode_protein;
    use sw_align::smith_waterman::sw_score;

    fn p() -> SwParams {
        SwParams::cudasw_default()
    }

    #[test]
    fn matches_scalar_on_fixed_cases() {
        let cases = [
            ("MKVLAW", "MKVLAW"),
            ("ACDEFG", "ACDXXEFG"),
            ("WWWW", "PPPP"),
            ("MSPARKLNQWETYCV", "MSPRKLNQWWETYCV"),
            ("MKVLAWGGSCMKVLAWGGSCMKVLAW", "MKVLAWGGSC"),
        ];
        for (q, d) in cases {
            let qc = encode_protein(q).unwrap();
            let dc = encode_protein(d).unwrap();
            let r = sw_vertical(&p(), &qc, &dc);
            assert_eq!(r.score, sw_score(&p(), &qc, &dc), "q={q} d={d}");
        }
    }

    #[test]
    fn f_skip_fires_on_dissimilar_sequences() {
        // Unrelated sequences keep H small, so most chunks skip the repair.
        let q: Vec<u8> = vec![17; 128]; // poly-W query
        let d: Vec<u8> = vec![14; 64]; // poly-P database
        let r = sw_vertical(&p(), &q, &d);
        assert_eq!(r.score, sw_score(&p(), &q, &d));
        assert!(r.f_skips > r.chunks / 2, "{}/{}", r.f_skips, r.chunks);
    }

    #[test]
    fn empty_inputs() {
        let r = sw_vertical(&p(), &[], &[1]);
        assert_eq!(r.score, 0);
    }
}
