//! AArch64 NEON backend: 16×u8 / 8×i16 in `uint8x16_t` / `int16x8_t`.
//!
//! NEON (ASIMD) is part of the AArch64 baseline, so the intrinsics are
//! statically enabled and safe to call; only the pointer loads need
//! `unsafe`. The lane shift uses `vextq` with an all-zero donor vector —
//! `vextq_u8(zero, v, 15)` yields `[0, v0..v14]` — and the horizontal
//! maxima use the across-lanes `vmaxvq` reductions.

#![cfg(all(
    target_arch = "aarch64",
    feature = "native-simd",
    not(feature = "force-portable")
))]

use crate::backend::{Backend, ByteSimd, WordSimd};
use core::arch::aarch64::*;

/// 16 × u8 in a `uint8x16_t`.
#[derive(Clone, Copy)]
pub struct U8x16Neon(uint8x16_t);

impl ByteSimd for U8x16Neon {
    const LANES: usize = 16;

    #[inline(always)]
    fn splat(v: u8) -> Self {
        Self(vdupq_n_u8(v))
    }

    #[inline(always)]
    fn load(lanes: &[u8]) -> Self {
        assert!(lanes.len() >= 16);
        // SAFETY: unaligned load of 16 bytes; the bound is asserted above.
        Self(unsafe { vld1q_u8(lanes.as_ptr()) })
    }

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        Self(vqaddq_u8(self.0, rhs.0))
    }

    #[inline(always)]
    fn sat_sub(self, rhs: Self) -> Self {
        Self(vqsubq_u8(self.0, rhs.0))
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self(vmaxq_u8(self.0, rhs.0))
    }

    #[inline(always)]
    fn any_gt(self, rhs: Self) -> bool {
        vmaxvq_u8(vcgtq_u8(self.0, rhs.0)) != 0
    }

    #[inline(always)]
    fn shift(self) -> Self {
        Self(vextq_u8::<15>(vdupq_n_u8(0), self.0))
    }

    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        // `vextq` needs a constant lane count; the scan only asks for
        // powers of two, everything else falls back to repeated shifts.
        let zero = vdupq_n_u8(0);
        match n {
            0 => self,
            1 => Self(vextq_u8::<15>(zero, self.0)),
            2 => Self(vextq_u8::<14>(zero, self.0)),
            4 => Self(vextq_u8::<12>(zero, self.0)),
            8 => Self(vextq_u8::<8>(zero, self.0)),
            n if n >= 16 => Self(zero),
            n => {
                let mut v = self;
                for _ in 0..n {
                    v = v.shift();
                }
                v
            }
        }
    }

    #[inline(always)]
    fn horizontal_max(self) -> u8 {
        vmaxvq_u8(self.0)
    }
}

/// 8 × i16 in an `int16x8_t`.
#[derive(Clone, Copy)]
pub struct I16x8Neon(int16x8_t);

impl WordSimd for I16x8Neon {
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(v: i16) -> Self {
        Self(vdupq_n_s16(v))
    }

    #[inline(always)]
    fn load(lanes: &[i16]) -> Self {
        assert!(lanes.len() >= 8);
        // SAFETY: unaligned load of 8 words; the bound is asserted above.
        Self(unsafe { vld1q_s16(lanes.as_ptr()) })
    }

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        Self(vqaddq_s16(self.0, rhs.0))
    }

    #[inline(always)]
    fn sat_sub(self, rhs: Self) -> Self {
        Self(vqsubq_s16(self.0, rhs.0))
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self(vmaxq_s16(self.0, rhs.0))
    }

    #[inline(always)]
    fn any_gt(self, rhs: Self) -> bool {
        vmaxvq_u16(vcgtq_s16(self.0, rhs.0)) != 0
    }

    #[inline(always)]
    fn shift(self) -> Self {
        Self(vextq_s16::<7>(vdupq_n_s16(0), self.0))
    }

    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        // See `U8x16Neon::shift_lanes`.
        let zero = vdupq_n_s16(0);
        match n {
            0 => self,
            1 => Self(vextq_s16::<7>(zero, self.0)),
            2 => Self(vextq_s16::<6>(zero, self.0)),
            4 => Self(vextq_s16::<4>(zero, self.0)),
            n if n >= 8 => Self(zero),
            n => {
                let mut v = self;
                for _ in 0..n {
                    v = v.shift();
                }
                v
            }
        }
    }

    #[inline(always)]
    fn horizontal_max(self) -> i16 {
        vmaxvq_s16(self.0)
    }
}

/// The NEON backend (AArch64 baseline).
pub struct NeonBackend;

impl Backend for NeonBackend {
    type Byte = U8x16Neon;
    type Word = I16x8Neon;
    const NAME: &'static str = "neon";

    fn available() -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byte_mode::U8x16;
    use crate::vector::I16x8;

    #[test]
    fn neon_bytes_match_portable_semantics() {
        let a_vals = [
            0, 1, 127, 128, 200, 250, 255, 3, 9, 0, 50, 60, 70, 80, 90, 100,
        ];
        let b_vals = [
            255, 0, 128, 127, 100, 10, 1, 3, 8, 1, 49, 61, 70, 81, 89, 101,
        ];
        let a = U8x16Neon::load(&a_vals);
        let b = U8x16Neon::load(&b_vals);
        let pa = U8x16(a_vals);
        let pb = U8x16(b_vals);
        let store = |v: U8x16Neon| {
            let mut out = [0u8; 16];
            // SAFETY: unaligned store of 16 bytes into a 16-byte array.
            unsafe { vst1q_u8(out.as_mut_ptr(), v.0) };
            out
        };
        assert_eq!(store(a.sat_add(b)), pa.sat_add(pb).0);
        assert_eq!(store(a.sat_sub(b)), pa.sat_sub(pb).0);
        assert_eq!(store(ByteSimd::max(a, b)), pa.max(pb).0);
        assert_eq!(a.any_gt(b), pa.any_gt(pb));
        assert_eq!(store(ByteSimd::shift(a)), pa.shift_in(0).0);
        assert_eq!(ByteSimd::horizontal_max(a), pa.horizontal_max());
    }

    #[test]
    fn neon_words_match_portable_semantics() {
        let a_vals = [0, -1, i16::MAX, i16::MIN, 200, -250, 3000, -3];
        let b_vals = [1, -1, i16::MIN, i16::MAX, -200, 250, 2999, 3];
        let a = I16x8Neon::load(&a_vals);
        let b = I16x8Neon::load(&b_vals);
        let pa = I16x8(a_vals);
        let pb = I16x8(b_vals);
        let store = |v: I16x8Neon| {
            let mut out = [0i16; 8];
            // SAFETY: unaligned store of 8 words into an 8-word array.
            unsafe { vst1q_s16(out.as_mut_ptr(), v.0) };
            out
        };
        assert_eq!(store(a.sat_add(b)), pa.sat_add(pb).0);
        assert_eq!(store(a.sat_sub(b)), pa.sat_sub(pb).0);
        assert_eq!(store(WordSimd::max(a, b)), pa.max(pb).0);
        assert_eq!(a.any_gt(b), pa.any_gt(pb));
        assert_eq!(store(WordSimd::shift(a)), pa.shift_in(0).0);
        assert_eq!(WordSimd::horizontal_max(a), pa.horizontal_max());
    }
}
