//! Per-query scoring engine: one profile build, many alignments, one
//! backend.
//!
//! [`QueryEngine`] binds a query + parameters to a dispatched backend
//! ([`BackendKind`]): it builds the byte- and word-mode striped profiles
//! once (profile construction is the per-query setup cost Farrar
//! amortizes) and then scores any number of database sequences through the
//! backend's kernels. The engine is immutable after construction, so one
//! instance can be shared by reference across the worker threads of
//! [`crate::pool`] — that *is* the "per-thread profile reuse": threads
//! share the read-only profiles instead of rebuilding them.
//!
//! Observability: backend selection emits
//! `cudasw.simd.backend.selected{backend}` and [`record_stats`] publishes
//! the adaptive-precision counters (`cudasw.simd.byte_mode.alignments`,
//! `cudasw.simd.word_mode.reruns`, `cudasw.simd.lazy_f.iterations{mode}`).
//! Stats are accumulated in plain [`AdaptiveStats`] structs and emitted by
//! the *calling* thread — the metrics recorder is thread-local, so counts
//! bumped inside worker threads would otherwise be lost.

use crate::backend::{
    sw_bytes, sw_bytes_checked, sw_bytes_scan, sw_bytes_scan_checked, sw_words, sw_words_checked,
    sw_words_scan, sw_words_scan_checked, ByteKernelResult, ByteProfileOf, ByteSimd, WordProfileOf,
    WordSimd,
};
use crate::byte_mode::{AdaptiveStats, U8x16};
use crate::cancel::{CancelToken, Cancelled};
use crate::dispatch::{BackendKind, KernelMode};
use crate::vector::I16x8;
use sw_align::smith_waterman::SwParams;
use sw_align::GapPenalties;

#[cfg(all(
    target_arch = "x86_64",
    feature = "native-simd",
    not(feature = "force-portable")
))]
use crate::x86::{I16x16Avx, I16x8Sse, U8x16Sse, U8x32Avx};

#[cfg(all(
    target_arch = "aarch64",
    feature = "native-simd",
    not(feature = "force-portable")
))]
use crate::neon::{I16x8Neon, U8x16Neon};

/// Which precision ladder to run per alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Saturating byte mode first, exact word-mode re-run on overflow
    /// (SSW/SWPS3 production strategy).
    Adaptive,
    /// Word mode only — the pre-backend behaviour, kept as the bench
    /// baseline and for callers that want deterministic per-pair cost.
    Word,
}

/// Byte + word profiles for one backend's vector types.
enum ProfileSet {
    Portable {
        byte: ByteProfileOf<U8x16>,
        word: WordProfileOf<I16x8>,
    },
    #[cfg(all(
        target_arch = "x86_64",
        feature = "native-simd",
        not(feature = "force-portable")
    ))]
    Sse2 {
        byte: ByteProfileOf<U8x16Sse>,
        word: WordProfileOf<I16x8Sse>,
    },
    #[cfg(all(
        target_arch = "x86_64",
        feature = "native-simd",
        not(feature = "force-portable")
    ))]
    Avx2 {
        byte: ByteProfileOf<U8x32Avx>,
        word: WordProfileOf<I16x16Avx>,
    },
    #[cfg(all(
        target_arch = "aarch64",
        feature = "native-simd",
        not(feature = "force-portable")
    ))]
    Neon {
        byte: ByteProfileOf<U8x16Neon>,
        word: WordProfileOf<I16x8Neon>,
    },
}

/// A query bound to a backend: build profiles once, score many sequences.
pub struct QueryEngine {
    kind: BackendKind,
    mode: KernelMode,
    params: SwParams,
    query: Vec<u8>,
    set: ProfileSet,
}

impl QueryEngine {
    /// Engine on the detected (widest available) backend and the detected
    /// kernel mode (`SW_KERNEL_MODE`, correction loop by default).
    pub fn new(params: SwParams, query: &[u8]) -> Self {
        Self::with_backend(params, query, BackendKind::detect())
    }

    /// Engine on a specific backend, kernel mode from [`KernelMode::detect`].
    ///
    /// # Panics
    ///
    /// Panics when `kind` is not available on this host/build — the
    /// availability check is the safety gate for the `unsafe` intrinsic
    /// calls inside the native backends.
    pub fn with_backend(params: SwParams, query: &[u8], kind: BackendKind) -> Self {
        Self::with_backend_and_mode(params, query, kind, KernelMode::detect())
    }

    /// Engine on a specific backend and Lazy-F kernel mode.
    ///
    /// # Panics
    ///
    /// Panics when `kind` is not available on this host/build (see
    /// [`QueryEngine::with_backend`]).
    pub fn with_backend_and_mode(
        params: SwParams,
        query: &[u8],
        kind: BackendKind,
        mode: KernelMode,
    ) -> Self {
        assert!(
            kind.is_available(),
            "backend {kind} is not available on this host"
        );
        obs::counter_add(
            "cudasw.simd.backend.selected",
            &[("backend", kind.name())],
            1.0,
        );
        let set = match kind {
            #[cfg(all(
                target_arch = "x86_64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            BackendKind::Sse2 => ProfileSet::Sse2 {
                byte: ByteProfileOf::build(&params, query),
                word: WordProfileOf::build(&params, query),
            },
            #[cfg(all(
                target_arch = "x86_64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            BackendKind::Avx2 => ProfileSet::Avx2 {
                byte: ByteProfileOf::build(&params, query),
                word: WordProfileOf::build(&params, query),
            },
            #[cfg(all(
                target_arch = "aarch64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            BackendKind::Neon => ProfileSet::Neon {
                byte: ByteProfileOf::build(&params, query),
                word: WordProfileOf::build(&params, query),
            },
            _ => ProfileSet::Portable {
                byte: ByteProfileOf::build(&params, query),
                word: WordProfileOf::build(&params, query),
            },
        };
        Self {
            kind,
            mode,
            params,
            query: query.to_vec(),
            set,
        }
    }

    /// The backend this engine dispatches to.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The Lazy-F kernel mode this engine runs.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// The alignment parameters.
    pub fn params(&self) -> &SwParams {
        &self.params
    }

    /// The bound query.
    pub fn query(&self) -> &[u8] {
        &self.query
    }

    /// Score one database sequence, accumulating precision/Lazy-F counts
    /// into `stats`.
    pub fn score_with(&self, db: &[u8], precision: Precision, stats: &mut AdaptiveStats) -> i32 {
        if self.query.is_empty() || db.is_empty() {
            return 0;
        }
        let gaps = &self.params.gaps;
        let mode = self.mode;
        match &self.set {
            ProfileSet::Portable { byte, word } => {
                score_generic(gaps, byte, word, db, precision, mode, stats)
            }
            #[cfg(all(
                target_arch = "x86_64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            ProfileSet::Sse2 { byte, word } => {
                score_generic(gaps, byte, word, db, precision, mode, stats)
            }
            #[cfg(all(
                target_arch = "x86_64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            ProfileSet::Avx2 { byte, word } => {
                use crate::x86::{
                    sw_bytes_avx2, sw_bytes_scan_avx2, sw_words_avx2, sw_words_scan_avx2,
                };
                // SAFETY (all four arms): `with_backend_and_mode` asserted
                // AVX2 availability before this profile set was built.
                match (precision, mode) {
                    (Precision::Adaptive, KernelMode::CorrectionLoop) => {
                        let b = unsafe { sw_bytes_avx2(gaps, byte, db) };
                        finish_adaptive(b, stats, || {
                            unsafe { sw_words_avx2(gaps, word, db) }.into_pair()
                        })
                    }
                    (Precision::Adaptive, KernelMode::PrefixScan) => {
                        let b = unsafe { sw_bytes_scan_avx2(gaps, byte, db) };
                        finish_adaptive(b, stats, || {
                            unsafe { sw_words_scan_avx2(gaps, word, db) }.into_pair()
                        })
                    }
                    (Precision::Word, KernelMode::CorrectionLoop) => {
                        let r = unsafe { sw_words_avx2(gaps, word, db) };
                        stats.lazy_f_word += r.lazy_f;
                        r.score
                    }
                    (Precision::Word, KernelMode::PrefixScan) => {
                        let r = unsafe { sw_words_scan_avx2(gaps, word, db) };
                        stats.lazy_f_word += r.lazy_f;
                        r.score
                    }
                }
            }
            #[cfg(all(
                target_arch = "aarch64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            ProfileSet::Neon { byte, word } => {
                score_generic(gaps, byte, word, db, precision, mode, stats)
            }
        }
    }

    /// Score one database sequence adaptively, discarding the stats.
    pub fn score(&self, db: &[u8]) -> i32 {
        let mut stats = AdaptiveStats::default();
        self.score_with(db, Precision::Adaptive, &mut stats)
    }

    /// [`QueryEngine::score_with`] with cooperative cancellation: the
    /// kernels poll `cancel` every [`crate::cancel::CANCEL_CHECK_COLS`]
    /// database columns. On cancellation nothing leaks — no score is
    /// returned and `stats` is left untouched (counts are accumulated
    /// locally and merged only on success).
    pub fn score_with_cancel(
        &self,
        db: &[u8],
        precision: Precision,
        stats: &mut AdaptiveStats,
        cancel: &CancelToken,
    ) -> Result<i32, Cancelled> {
        if cancel.is_cancelled() {
            return Err(Cancelled);
        }
        if self.query.is_empty() || db.is_empty() {
            return Ok(0);
        }
        let gaps = &self.params.gaps;
        let mode = self.mode;
        let mut local = AdaptiveStats::default();
        let score = match &self.set {
            ProfileSet::Portable { byte, word } => {
                score_generic_cancel(gaps, byte, word, db, precision, mode, &mut local, cancel)
            }
            #[cfg(all(
                target_arch = "x86_64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            ProfileSet::Sse2 { byte, word } => {
                score_generic_cancel(gaps, byte, word, db, precision, mode, &mut local, cancel)
            }
            #[cfg(all(
                target_arch = "x86_64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            ProfileSet::Avx2 { byte, word } => {
                use crate::x86::{
                    sw_bytes_cancel_avx2, sw_bytes_scan_cancel_avx2, sw_words_cancel_avx2,
                    sw_words_scan_cancel_avx2,
                };
                // SAFETY (all four arms): `with_backend_and_mode` asserted
                // AVX2 availability before this profile set was built.
                match (precision, mode) {
                    (Precision::Adaptive, KernelMode::CorrectionLoop) => {
                        let b = unsafe { sw_bytes_cancel_avx2(gaps, byte, db, cancel) };
                        finish_adaptive_cancel(b, &mut local, || {
                            unsafe { sw_words_cancel_avx2(gaps, word, db, cancel) }
                                .map(IntoPair::into_pair)
                        })
                    }
                    (Precision::Adaptive, KernelMode::PrefixScan) => {
                        let b = unsafe { sw_bytes_scan_cancel_avx2(gaps, byte, db, cancel) };
                        finish_adaptive_cancel(b, &mut local, || {
                            unsafe { sw_words_scan_cancel_avx2(gaps, word, db, cancel) }
                                .map(IntoPair::into_pair)
                        })
                    }
                    (Precision::Word, KernelMode::CorrectionLoop) => {
                        unsafe { sw_words_cancel_avx2(gaps, word, db, cancel) }.map(|r| {
                            local.lazy_f_word += r.lazy_f;
                            r.score
                        })
                    }
                    (Precision::Word, KernelMode::PrefixScan) => {
                        unsafe { sw_words_scan_cancel_avx2(gaps, word, db, cancel) }.map(|r| {
                            local.lazy_f_word += r.lazy_f;
                            r.score
                        })
                    }
                }
            }
            #[cfg(all(
                target_arch = "aarch64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            ProfileSet::Neon { byte, word } => {
                score_generic_cancel(gaps, byte, word, db, precision, mode, &mut local, cancel)
            }
        };
        match score {
            Some(s) => {
                stats.merge(&local);
                Ok(s)
            }
            None => Err(Cancelled),
        }
    }

    /// Estimated per-worker scratch bytes one kernel invocation of this
    /// engine needs (the H-store/H-load/E stripe buffers, byte and word
    /// mode). The pool's memory-budget admission charges this plus a
    /// per-sequence overhead for each in-flight chunk.
    pub fn working_set_bytes(&self) -> u64 {
        let m = self.query.len().max(1) as u64;
        let byte_lanes = self.kind.byte_lanes() as u64;
        let word_lanes = self.kind.word_lanes() as u64;
        let byte_row = m.div_ceil(byte_lanes).max(1) * byte_lanes;
        let word_row = m.div_ceil(word_lanes).max(1) * word_lanes * 2;
        3 * (byte_row + word_row)
    }
}

trait IntoPair {
    fn into_pair(self) -> (i32, u64);
}

impl IntoPair for crate::backend::WordKernelResult {
    fn into_pair(self) -> (i32, u64) {
        (self.score, self.lazy_f)
    }
}

/// Shared adaptive epilogue: account the byte pass, re-run in word mode on
/// overflow.
#[inline(always)]
fn finish_adaptive(
    byte: ByteKernelResult,
    stats: &mut AdaptiveStats,
    word: impl FnOnce() -> (i32, u64),
) -> i32 {
    stats.lazy_f_byte += byte.lazy_f;
    match byte.score {
        Some(score) => {
            stats.byte_mode += 1;
            score
        }
        None => {
            stats.word_fallbacks += 1;
            let (score, lazy_f) = word();
            stats.lazy_f_word += lazy_f;
            score
        }
    }
}

/// [`finish_adaptive`] lifted over cancellation: `None` anywhere means the
/// alignment was abandoned and no score (or stat merge) may escape.
#[inline(always)]
fn finish_adaptive_cancel(
    byte: Option<ByteKernelResult>,
    stats: &mut AdaptiveStats,
    word: impl FnOnce() -> Option<(i32, u64)>,
) -> Option<i32> {
    let byte = byte?;
    stats.lazy_f_byte += byte.lazy_f;
    match byte.score {
        Some(score) => {
            stats.byte_mode += 1;
            Some(score)
        }
        None => {
            stats.word_fallbacks += 1;
            let (score, lazy_f) = word()?;
            stats.lazy_f_word += lazy_f;
            Some(score)
        }
    }
}

/// Cancellable variant of [`score_generic`] over the checked kernels.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // mirrors score_generic + the token
fn score_generic_cancel<B: ByteSimd, W: WordSimd>(
    gaps: &GapPenalties,
    byte: &ByteProfileOf<B>,
    word: &WordProfileOf<W>,
    db: &[u8],
    precision: Precision,
    mode: KernelMode,
    stats: &mut AdaptiveStats,
    cancel: &CancelToken,
) -> Option<i32> {
    match (precision, mode) {
        (Precision::Adaptive, KernelMode::CorrectionLoop) => {
            let b = sw_bytes_checked(gaps, byte, db, cancel);
            finish_adaptive_cancel(b, stats, || {
                sw_words_checked(gaps, word, db, cancel).map(IntoPair::into_pair)
            })
        }
        (Precision::Adaptive, KernelMode::PrefixScan) => {
            let b = sw_bytes_scan_checked(gaps, byte, db, cancel);
            finish_adaptive_cancel(b, stats, || {
                sw_words_scan_checked(gaps, word, db, cancel).map(IntoPair::into_pair)
            })
        }
        (Precision::Word, KernelMode::CorrectionLoop) => sw_words_checked(gaps, word, db, cancel)
            .map(|r| {
                stats.lazy_f_word += r.lazy_f;
                r.score
            }),
        (Precision::Word, KernelMode::PrefixScan) => sw_words_scan_checked(gaps, word, db, cancel)
            .map(|r| {
                stats.lazy_f_word += r.lazy_f;
                r.score
            }),
    }
}

/// Mode-aware scoring over any backend's safe generic kernels (portable,
/// SSE2, NEON — the AVX2 arm needs `target_feature` wrappers and is
/// special-cased in [`QueryEngine::score_with`]).
#[inline(always)]
fn score_generic<B: ByteSimd, W: WordSimd>(
    gaps: &GapPenalties,
    byte: &ByteProfileOf<B>,
    word: &WordProfileOf<W>,
    db: &[u8],
    precision: Precision,
    mode: KernelMode,
    stats: &mut AdaptiveStats,
) -> i32 {
    match (precision, mode) {
        (Precision::Adaptive, KernelMode::CorrectionLoop) => {
            let b = sw_bytes(gaps, byte, db);
            finish_adaptive(b, stats, || sw_words(gaps, word, db).into_pair())
        }
        (Precision::Adaptive, KernelMode::PrefixScan) => {
            let b = sw_bytes_scan(gaps, byte, db);
            finish_adaptive(b, stats, || sw_words_scan(gaps, word, db).into_pair())
        }
        (Precision::Word, KernelMode::CorrectionLoop) => {
            let r = sw_words(gaps, word, db);
            stats.lazy_f_word += r.lazy_f;
            r.score
        }
        (Precision::Word, KernelMode::PrefixScan) => {
            let r = sw_words_scan(gaps, word, db);
            stats.lazy_f_word += r.lazy_f;
            r.score
        }
    }
}

/// Publish a batch's adaptive-precision counters under `cudasw.simd.*`.
///
/// Call from the thread that owns the metrics recorder (the thread-local
/// one that started the search), after merging worker-local stats.
pub fn record_stats(kind: BackendKind, stats: &AdaptiveStats) {
    let backend = kind.name();
    if stats.byte_mode > 0 {
        obs::counter_add(
            "cudasw.simd.byte_mode.alignments",
            &[("backend", backend)],
            stats.byte_mode as f64,
        );
    }
    if stats.word_fallbacks > 0 {
        obs::counter_add(
            "cudasw.simd.word_mode.reruns",
            &[("backend", backend)],
            stats.word_fallbacks as f64,
        );
    }
    if stats.lazy_f_byte > 0 {
        obs::counter_add(
            "cudasw.simd.lazy_f.iterations",
            &[("backend", backend), ("mode", "byte")],
            stats.lazy_f_byte as f64,
        );
    }
    if stats.lazy_f_word > 0 {
        obs::counter_add(
            "cudasw.simd.lazy_f.iterations",
            &[("backend", backend), ("mode", "word")],
            stats.lazy_f_word as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::smith_waterman::sw_score;
    use sw_db::synth::make_query;

    #[test]
    fn every_available_backend_matches_scalar() {
        let params = SwParams::cudasw_default();
        let query = make_query(72, 3);
        let targets = [make_query(50, 4), make_query(90, 5), query.clone()];
        for kind in BackendKind::available() {
            let engine = QueryEngine::with_backend(params.clone(), &query, kind);
            let mut stats = AdaptiveStats::default();
            for t in &targets {
                let expected = sw_score(&params, &query, t);
                assert_eq!(
                    engine.score_with(t, Precision::Adaptive, &mut stats),
                    expected,
                    "adaptive on {kind}"
                );
                assert_eq!(
                    engine.score_with(t, Precision::Word, &mut stats),
                    expected,
                    "word on {kind}"
                );
            }
            assert!(stats.byte_mode + stats.word_fallbacks > 0);
        }
    }

    #[test]
    fn self_alignment_falls_back_to_word_mode_on_all_backends() {
        let params = SwParams::cudasw_default();
        let query = make_query(300, 9);
        for kind in BackendKind::available() {
            let engine = QueryEngine::with_backend(params.clone(), &query, kind);
            let mut stats = AdaptiveStats::default();
            let score = engine.score_with(&query, Precision::Adaptive, &mut stats);
            assert_eq!(score, sw_score(&params, &query, &query), "{kind}");
            assert_eq!(stats.word_fallbacks, 1, "{kind}");
            assert!(stats.lazy_f_byte > 0, "{kind}: byte pass ran first");
        }
    }

    #[test]
    fn empty_inputs_score_zero_without_stats() {
        let params = SwParams::cudasw_default();
        let engine = QueryEngine::new(params.clone(), &[]);
        let mut stats = AdaptiveStats::default();
        assert_eq!(
            engine.score_with(&[1, 2], Precision::Adaptive, &mut stats),
            0
        );
        let engine = QueryEngine::new(params, &[1, 2]);
        assert_eq!(engine.score_with(&[], Precision::Adaptive, &mut stats), 0);
        assert_eq!(stats, AdaptiveStats::default());
    }

    #[test]
    fn selection_and_stats_counters_are_emitted() {
        let params = SwParams::cudasw_default();
        let (kind, run) = obs::capture(|| {
            let query = make_query(300, 2);
            let engine = QueryEngine::new(params, &query);
            let mut stats = AdaptiveStats::default();
            engine.score_with(&make_query(30, 7), Precision::Adaptive, &mut stats);
            engine.score_with(&query, Precision::Adaptive, &mut stats);
            record_stats(engine.kind(), &stats);
            engine.kind()
        });
        let backend = [("backend", kind.name())];
        assert_eq!(
            run.metrics
                .counter("cudasw.simd.backend.selected", &backend),
            1.0
        );
        assert_eq!(
            run.metrics
                .counter("cudasw.simd.byte_mode.alignments", &backend),
            1.0,
            "short pair stays in byte mode"
        );
        assert_eq!(
            run.metrics
                .counter("cudasw.simd.word_mode.reruns", &backend),
            1.0,
            "self-alignment overflows"
        );
        assert!(
            run.metrics
                .counter_sum("cudasw.simd.lazy_f.iterations", &[("mode", "word")])
                > 0.0
        );
    }
}
