//! SWPS3-style multi-threaded database search.
//!
//! SWPS3 runs Farrar's striped kernel over a whole database with dynamic
//! scheduling across cores; Figure 7 runs it on four Xeon cores as the CPU
//! reference. This driver reproduces that role: worker threads pull
//! sequences from a shared crossbeam channel (dynamic load balancing, like
//! SWPS3's work queue) and align them with the striped kernel; the query
//! profile is built once and shared.
//!
//! Throughput here is *host-measured* (real wall-clock GCUPs of this
//! machine), unlike the GPU kernels whose time is simulated — EXPERIMENTS.md
//! discusses how the two are compared in Figure 7.

use crate::byte_mode::{sw_striped_adaptive, AdaptiveStats, ByteProfile};
use parking_lot::Mutex;
use std::time::Instant;
use sw_align::smith_waterman::SwParams;
use sw_db::Database;

/// Multi-threaded striped-SW database search.
#[derive(Debug, Clone)]
pub struct Swps3Driver {
    /// Alignment parameters.
    pub params: SwParams,
    /// Worker threads (Figure 7 uses 4).
    pub threads: usize,
}

/// Search output.
#[derive(Debug, Clone)]
pub struct Swps3Result {
    /// Scores indexed like `db.sequences()`.
    pub scores: Vec<i32>,
    /// Cells updated.
    pub cells: u64,
    /// Wall-clock seconds (host-measured).
    pub seconds: f64,
    /// Byte-mode vs word-fallback counts (SWPS3 runs 16-lane byte mode
    /// first and re-runs saturating pairs in 8-lane word mode).
    pub adaptive: AdaptiveStats,
}

impl Swps3Result {
    /// Host-measured GCUPs.
    pub fn gcups(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.seconds / 1.0e9
        }
    }

    /// Indices of the `k` best-scoring sequences, best first.
    pub fn top_hits(&self, k: usize) -> Vec<(usize, i32)> {
        let mut ranked: Vec<(usize, i32)> = self.scores.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

impl Swps3Driver {
    /// Driver with the CUDASW++ default parameters and `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            params: SwParams::cudasw_default(),
            threads: threads.max(1),
        }
    }

    /// Align `query` against every database sequence.
    pub fn search(&self, query: &[u8], db: &Database) -> Swps3Result {
        let n = db.len();
        let mut scores = vec![0i32; n];
        let cells = db.total_cells(query.len());
        if query.is_empty() || n == 0 {
            return Swps3Result {
                scores,
                cells: 0,
                seconds: 0.0,
                adaptive: AdaptiveStats::default(),
            };
        }
        let profile = ByteProfile::build(&self.params, query);
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for i in (0..n).rev() {
            // Longest first improves tail balance, like SWPS3's scheduler.
            tx.send(i).expect("channel open");
        }
        drop(tx);

        let results: Mutex<Vec<(usize, i32)>> = Mutex::new(Vec::with_capacity(n));
        let adaptive_total: Mutex<AdaptiveStats> = Mutex::new(AdaptiveStats::default());
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let rx = rx.clone();
                let results = &results;
                let adaptive_total = &adaptive_total;
                let profile = &profile;
                let params = &self.params;
                let db = &db;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut stats = AdaptiveStats::default();
                    while let Ok(i) = rx.recv() {
                        let score = sw_striped_adaptive(
                            params,
                            profile,
                            query,
                            &db.sequences()[i].residues,
                            &mut stats,
                        );
                        local.push((i, score));
                    }
                    results.lock().extend(local);
                    let mut total = adaptive_total.lock();
                    total.byte_mode += stats.byte_mode;
                    total.word_fallbacks += stats.word_fallbacks;
                });
            }
        });
        let seconds = start.elapsed().as_secs_f64();

        for (i, score) in results.into_inner() {
            scores[i] = score;
        }
        Swps3Result {
            scores,
            cells,
            seconds,
            adaptive: adaptive_total.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::smith_waterman::sw_score;
    use sw_db::synth::{database_with_lengths, make_query};

    #[test]
    fn scores_match_scalar_reference() {
        let db = database_with_lengths("t", &[30, 50, 80, 120, 40, 66], 3);
        let query = make_query(48, 7);
        let driver = Swps3Driver::new(4);
        let result = driver.search(&query, &db);
        for (i, seq) in db.sequences().iter().enumerate() {
            assert_eq!(
                result.scores[i],
                sw_score(&driver.params, &query, &seq.residues),
                "sequence {i}"
            );
        }
        assert_eq!(result.cells, db.total_cells(48));
        assert!(result.seconds > 0.0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let db = database_with_lengths("t", &[25, 75, 125, 60, 90, 30, 45], 5);
        let query = make_query(64, 11);
        let one = Swps3Driver::new(1).search(&query, &db);
        let four = Swps3Driver::new(4).search(&query, &db);
        assert_eq!(one.scores, four.scores);
    }

    #[test]
    fn top_hits_ranked() {
        let db = database_with_lengths("t", &[40, 60, 80], 9);
        let query = db.sequences()[2].residues.clone(); // exact match exists
        let result = Swps3Driver::new(2).search(&query, &db);
        let top = result.top_hits(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2, "self-match must rank first");
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn empty_query() {
        let db = database_with_lengths("t", &[10], 1);
        let result = Swps3Driver::new(2).search(&[], &db);
        assert_eq!(result.scores, vec![0]);
        assert_eq!(result.gcups(), 0.0);
    }
}
