//! SWPS3-style multi-threaded database search.
//!
//! SWPS3 runs Farrar's striped kernel over a whole database with dynamic
//! scheduling across cores; Figure 7 runs it on four Xeon cores as the CPU
//! reference. This driver reproduces that role on the dispatched host
//! backend: the query profiles are built once in a [`QueryEngine`] on the
//! widest vector unit the CPU supports, and the [`crate::pool`]
//! work-stealing pool shards the database across `threads` workers.
//!
//! Throughput here is *host-measured* (real wall-clock GCUPs of this
//! machine), unlike the GPU kernels whose time is simulated — EXPERIMENTS.md
//! discusses how the two are compared in Figure 7.

use crate::byte_mode::AdaptiveStats;
use crate::dispatch::BackendKind;
use crate::engine::{record_stats, Precision, QueryEngine};
use crate::pool::search_sequences;
use sw_align::smith_waterman::SwParams;
use sw_db::Database;

/// Multi-threaded striped-SW database search.
#[derive(Debug, Clone)]
pub struct Swps3Driver {
    /// Alignment parameters.
    pub params: SwParams,
    /// Worker threads (Figure 7 uses 4).
    pub threads: usize,
    /// Host compute backend; [`BackendKind::detect`] picks the widest
    /// available one.
    pub backend: BackendKind,
}

/// Search output.
#[derive(Debug, Clone)]
pub struct Swps3Result {
    /// Scores indexed like `db.sequences()`.
    pub scores: Vec<i32>,
    /// Cells updated.
    pub cells: u64,
    /// Wall-clock seconds (host-measured).
    pub seconds: f64,
    /// Byte-mode vs word-fallback counts and per-mode Lazy-F iterations
    /// (SWPS3 runs saturating byte mode first and re-runs overflowing
    /// pairs in word mode).
    pub adaptive: AdaptiveStats,
    /// The backend the search actually ran on.
    pub backend: BackendKind,
}

impl Swps3Result {
    /// Host-measured GCUPs.
    pub fn gcups(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.seconds / 1.0e9
        }
    }

    /// Indices of the `k` best-scoring sequences, best first.
    pub fn top_hits(&self, k: usize) -> Vec<(usize, i32)> {
        let mut ranked: Vec<(usize, i32)> = self.scores.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

impl Swps3Driver {
    /// Driver with the CUDASW++ default parameters, `threads` workers and
    /// the detected backend.
    pub fn new(threads: usize) -> Self {
        Self {
            params: SwParams::cudasw_default(),
            threads: threads.max(1),
            backend: BackendKind::detect(),
        }
    }

    /// Align `query` against every database sequence.
    pub fn search(&self, query: &[u8], db: &Database) -> Swps3Result {
        let n = db.len();
        if query.is_empty() || n == 0 {
            return Swps3Result {
                scores: vec![0i32; n],
                cells: 0,
                seconds: 0.0,
                adaptive: AdaptiveStats::default(),
                backend: self.backend,
            };
        }
        let engine = QueryEngine::with_backend(self.params.clone(), query, self.backend);
        let r = search_sequences(&engine, db.sequences(), self.threads, Precision::Adaptive);
        record_stats(self.backend, &r.stats);
        if r.steals > 0 {
            obs::counter_add(
                "cudasw.simd.pool.steals",
                &[("backend", self.backend.name())],
                r.steals as f64,
            );
        }
        Swps3Result {
            scores: r.scores,
            cells: db.total_cells(query.len()),
            seconds: r.seconds,
            adaptive: r.stats,
            backend: self.backend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::smith_waterman::sw_score;
    use sw_db::synth::{database_with_lengths, make_query};

    #[test]
    fn scores_match_scalar_reference() {
        let db = database_with_lengths("t", &[30, 50, 80, 120, 40, 66], 3);
        let query = make_query(48, 7);
        let driver = Swps3Driver::new(4);
        let result = driver.search(&query, &db);
        for (i, seq) in db.sequences().iter().enumerate() {
            assert_eq!(
                result.scores[i],
                sw_score(&driver.params, &query, &seq.residues),
                "sequence {i}"
            );
        }
        assert_eq!(result.cells, db.total_cells(48));
        assert!(result.seconds > 0.0);
        assert_eq!(result.backend, driver.backend);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let db = database_with_lengths("t", &[25, 75, 125, 60, 90, 30, 45], 5);
        let query = make_query(64, 11);
        let one = Swps3Driver::new(1).search(&query, &db);
        let four = Swps3Driver::new(4).search(&query, &db);
        assert_eq!(one.scores, four.scores);
    }

    #[test]
    fn backend_does_not_change_results() {
        let db = database_with_lengths("t", &[35, 70, 140, 55], 13);
        let query = make_query(80, 3);
        let mut reference: Option<Vec<i32>> = None;
        for backend in BackendKind::available() {
            let mut driver = Swps3Driver::new(2);
            driver.backend = backend;
            let result = driver.search(&query, &db);
            match &reference {
                None => reference = Some(result.scores),
                Some(expected) => assert_eq!(&result.scores, expected, "{backend}"),
            }
        }
    }

    #[test]
    fn top_hits_ranked() {
        let db = database_with_lengths("t", &[40, 60, 80], 9);
        let query = db.sequences()[2].residues.clone(); // exact match exists
        let result = Swps3Driver::new(2).search(&query, &db);
        let top = result.top_hits(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2, "self-match must rank first");
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn empty_query() {
        let db = database_with_lengths("t", &[10], 1);
        let result = Swps3Driver::new(2).search(&[], &db);
        assert_eq!(result.scores, vec![0]);
        assert_eq!(result.gcups(), 0.0);
    }
}
