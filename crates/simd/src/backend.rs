//! The host-backend abstraction: lane-width-agnostic striped kernels.
//!
//! [`ByteSimd`] and [`WordSimd`] describe the handful of SSE2-style vector
//! operations the striped Smith-Waterman recurrence needs (saturating
//! add/sub, max, lane shift, any-greater, horizontal max). [`sw_bytes`] and
//! [`sw_words`] implement Farrar's kernel — including the Lazy-F correction
//! loop — exactly once, generically over those traits; every backend (AVX2,
//! SSE2, NEON, and the portable emulated vectors) instantiates the same
//! kernel with its own vector type.
//!
//! [`sw_bytes_scan`] and [`sw_words_scan`] are the same kernels with the
//! Lazy-F loop *deconstructed* à la Snytsar (arXiv:1909.00899): in the
//! striped layout lane `k` covers the contiguous query chunk
//! `[k·seg_len, (k+1)·seg_len)`, so the F value leaving lane `k`'s chunk
//! feeds lane `k+1`'s — a linear recurrence in the (max, +) semiring with
//! decay `seg_len × gap_extend` per lane step. A Kogge-Stone max-scan over
//! the main loop's exit-F vector resolves every lane's exact incoming F in
//! `log2(LANES)` steps; one repair pass over the segments then replaces
//! the up-to-`LANES` passes of the correction loop.
//!
//! **Bit-identical scores by construction.** The lane count only changes the
//! striped *layout* (`seg_len = ceil(m / LANES)`), never the arithmetic any
//! H/E/F cell sees: the post-Lazy-F recurrence is exact, byte-mode overflow
//! detection triggers on the running maximum (which is layout-independent),
//! and word mode saturates at `i16::MAX` identically everywhere. The same
//! argument makes the two kernel modes agree: saturating subtraction chains
//! compose (`x ⊖ a ⊖ b = x ⊖ (a + b)`), so the scanned incoming-F values
//! equal the correction loop's fixpoint exactly. The differential proptests
//! in `tests/backend_differential.rs` and
//! `tests/prefix_scan_differential.rs` pin both invariants.
//!
//! All kernels count Lazy-F repair iterations so the adaptive driver can
//! report byte-mode and word-mode correction work separately per backend —
//! the scan kernels additionally count their scan steps in the same
//! counter, keeping the "repair work" comparison honest across modes.

use crate::cancel::{CancelToken, CANCEL_CHECK_COLS};
use sw_align::smith_waterman::SwParams;
use sw_align::GapPenalties;

/// A per-column cancellation probe the generic kernels poll every
/// [`CANCEL_CHECK_COLS`] database columns.
///
/// Two implementations exist: [`NeverCancel`], a compile-time constant
/// `false` that lets the optimizer delete the check entirely (the plain
/// kernels cost exactly what they did before cancellation existed), and
/// [`CancelToken`], whose poll is one relaxed atomic load per checkpoint.
pub trait ColumnCheck {
    /// True when the kernel should abandon this alignment.
    fn cancelled(&self) -> bool;
}

/// The infallible check: never cancels, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverCancel;

impl ColumnCheck for NeverCancel {
    #[inline(always)]
    fn cancelled(&self) -> bool {
        false
    }
}

impl ColumnCheck for CancelToken {
    #[inline(always)]
    fn cancelled(&self) -> bool {
        self.poll()
    }
}

/// Vector of unsigned 8-bit lanes with SSE2 `paddusb`-style semantics.
///
/// Implementations must behave lane-wise exactly like `u8::saturating_*`;
/// the generic kernels rely on that for cross-backend score identity.
pub trait ByteSimd: Copy + Send + Sync + 'static {
    /// Number of `u8` lanes.
    const LANES: usize;

    /// All lanes equal to `v`.
    fn splat(v: u8) -> Self;

    /// All-zero vector.
    fn zero() -> Self {
        Self::splat(0)
    }

    /// Load `Self::LANES` lanes from `lanes` (lane 0 first).
    fn load(lanes: &[u8]) -> Self;

    /// Lane-wise unsigned saturating addition (`paddusb`).
    fn sat_add(self, rhs: Self) -> Self;

    /// Lane-wise unsigned saturating subtraction (`psubusb`).
    fn sat_sub(self, rhs: Self) -> Self;

    /// Lane-wise maximum (`pmaxub`).
    fn max(self, rhs: Self) -> Self;

    /// True when any lane of `self` is strictly greater than `rhs`.
    fn any_gt(self, rhs: Self) -> bool;

    /// Shift lanes towards higher indices by one, inserting zero at lane 0
    /// (`pslldq` by 1 byte).
    fn shift(self) -> Self;

    /// Shift lanes towards higher indices by `n`, zero-filling the bottom
    /// `n` lanes. Used by the prefix-scan kernels with power-of-two `n`;
    /// backends override the default (repeated [`shift`](Self::shift))
    /// with constant-shift instructions.
    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        let mut v = self;
        for _ in 0..n.min(Self::LANES) {
            v = v.shift();
        }
        v
    }

    /// Maximum over all lanes.
    fn horizontal_max(self) -> u8;
}

/// Vector of signed 16-bit lanes with SSE2 `paddsw`-style semantics.
pub trait WordSimd: Copy + Send + Sync + 'static {
    /// Number of `i16` lanes.
    const LANES: usize;

    /// All lanes equal to `v`.
    fn splat(v: i16) -> Self;

    /// All-zero vector.
    fn zero() -> Self {
        Self::splat(0)
    }

    /// Load `Self::LANES` lanes from `lanes` (lane 0 first).
    fn load(lanes: &[i16]) -> Self;

    /// Lane-wise signed saturating addition (`paddsw`).
    fn sat_add(self, rhs: Self) -> Self;

    /// Lane-wise signed saturating subtraction (`psubsw`).
    fn sat_sub(self, rhs: Self) -> Self;

    /// Lane-wise maximum (`pmaxsw`).
    fn max(self, rhs: Self) -> Self;

    /// True when any lane of `self` is strictly greater than `rhs`.
    fn any_gt(self, rhs: Self) -> bool;

    /// Shift lanes towards higher indices by one, inserting zero at lane 0
    /// (`pslldq` by 2 bytes).
    fn shift(self) -> Self;

    /// Shift lanes towards higher indices by `n`, zero-filling the bottom
    /// `n` lanes. See [`ByteSimd::shift_lanes`].
    #[inline(always)]
    fn shift_lanes(self, n: usize) -> Self {
        let mut v = self;
        for _ in 0..n.min(Self::LANES) {
            v = v.shift();
        }
        v
    }

    /// Maximum over all lanes.
    fn horizontal_max(self) -> i16;
}

/// One host compute backend: a byte-mode and a word-mode vector type plus
/// a runtime availability probe.
pub trait Backend {
    /// 8-bit vector used by the 2×-lane byte-mode kernel.
    type Byte: ByteSimd;
    /// 16-bit vector used by the exact word-mode kernel.
    type Word: WordSimd;
    /// Stable lowercase name (matches [`crate::BackendKind::name`]).
    const NAME: &'static str;
    /// True when this host can execute the backend's instructions.
    fn available() -> bool;
}

/// Striped byte profile for vector type `V`: biased scores, `V::LANES`
/// query positions per segment vector.
#[derive(Debug, Clone)]
pub struct ByteProfileOf<V: ByteSimd> {
    seg_len: usize,
    bias: u8,
    /// Scores at or above this saturate within one more column.
    overflow_at: u8,
    vectors: Vec<V>,
}

impl<V: ByteSimd> ByteProfileOf<V> {
    /// Build the biased byte profile of `query` under `params`.
    ///
    /// Padding lanes (query positions `>= m`) carry biased score 0 — the
    /// true matrix minimum — so they sink towards zero and never win the
    /// running maximum.
    pub fn build(params: &SwParams, query: &[u8]) -> Self {
        let m = query.len();
        let seg_len = m.div_ceil(V::LANES).max(1);
        let alphabet_size = params.matrix.size();
        let bias = (-params.matrix.min_score()).max(0) as u8;
        let mut vectors = Vec::with_capacity(alphabet_size * seg_len);
        let mut lanes = vec![0u8; V::LANES];
        for a in 0..alphabet_size as u8 {
            let row = params.matrix.row(a);
            for j in 0..seg_len {
                for (k, slot) in lanes.iter_mut().enumerate() {
                    let pos = j + k * seg_len;
                    *slot = if pos < m {
                        (row[query[pos] as usize] as i32 + bias as i32) as u8
                    } else {
                        0
                    };
                }
                vectors.push(V::load(&lanes));
            }
        }
        let overflow_at = 255u8
            .saturating_sub(bias)
            .saturating_sub(params.matrix.max_score().clamp(0, 255) as u8);
        Self {
            seg_len,
            bias,
            overflow_at,
            vectors,
        }
    }

    /// Profile vector for residue `a`, segment `j`.
    #[inline(always)]
    pub fn get(&self, a: u8, j: usize) -> V {
        self.vectors[a as usize * self.seg_len + j]
    }

    /// Segments per residue row.
    pub fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// The bias added to every score.
    pub fn bias(&self) -> u8 {
        self.bias
    }

    /// The overflow-detection threshold on the running maximum.
    pub fn overflow_at(&self) -> u8 {
        self.overflow_at
    }
}

/// Striped word profile for vector type `V`.
#[derive(Debug, Clone)]
pub struct WordProfileOf<V: WordSimd> {
    seg_len: usize,
    alphabet_size: usize,
    vectors: Vec<V>,
}

impl<V: WordSimd> WordProfileOf<V> {
    /// Build the striped word profile of `query` under `params`.
    ///
    /// Padding lanes score the matrix minimum so they can never win the
    /// running maximum.
    pub fn build(params: &SwParams, query: &[u8]) -> Self {
        let m = query.len();
        let seg_len = m.div_ceil(V::LANES).max(1);
        let alphabet_size = params.matrix.size();
        let pad = params.matrix.min_score() as i16;
        let mut vectors = Vec::with_capacity(alphabet_size * seg_len);
        let mut lanes = vec![0i16; V::LANES];
        for a in 0..alphabet_size as u8 {
            let row = params.matrix.row(a);
            for j in 0..seg_len {
                for (k, slot) in lanes.iter_mut().enumerate() {
                    let pos = j + k * seg_len;
                    *slot = if pos < m {
                        row[query[pos] as usize] as i16
                    } else {
                        pad
                    };
                }
                vectors.push(V::load(&lanes));
            }
        }
        Self {
            seg_len,
            alphabet_size,
            vectors,
        }
    }

    /// Profile vector for residue `a`, segment `j`.
    #[inline(always)]
    pub fn get(&self, a: u8, j: usize) -> V {
        self.vectors[a as usize * self.seg_len + j]
    }

    /// Segments per residue row.
    pub fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// Number of alphabet codes covered.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }
}

/// Outcome of one byte-mode alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteKernelResult {
    /// The exact score, or `None` when it saturated the 8-bit range and
    /// the pair must be re-run in word mode.
    pub score: Option<i32>,
    /// Lazy-F repair iterations executed.
    pub lazy_f: u64,
}

/// Outcome of one word-mode alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordKernelResult {
    /// Optimal local score (saturates at `i16::MAX`).
    pub score: i32,
    /// Lazy-F repair iterations executed.
    pub lazy_f: u64,
}

/// Byte-mode striped Smith-Waterman against one database sequence.
///
/// Scores are kept non-negative by the profile bias; `score` is `None` as
/// soon as the running maximum could saturate during the next column's
/// biased add (the result would be a lower bound only).
/// `#[inline(always)]` so backend-specific `#[target_feature]` wrappers can
/// inline the whole kernel (and, transitively, the intrinsics) into a
/// feature-enabled context — without that, every intrinsic call would stay
/// an out-of-line function call and the vector win would evaporate.
#[inline(always)]
pub fn sw_bytes<V: ByteSimd>(
    gaps: &GapPenalties,
    profile: &ByteProfileOf<V>,
    db: &[u8],
) -> ByteKernelResult {
    match sw_bytes_checked(gaps, profile, db, &NeverCancel) {
        Some(r) => r,
        // Unreachable: NeverCancel never cancels.
        None => ByteKernelResult {
            score: Some(0),
            lazy_f: 0,
        },
    }
}

/// [`sw_bytes`] with a cancellation probe polled every
/// [`CANCEL_CHECK_COLS`] columns; `None` means the alignment was abandoned
/// mid-flight and produced no score.
#[inline(always)]
pub fn sw_bytes_checked<V: ByteSimd, C: ColumnCheck>(
    gaps: &GapPenalties,
    profile: &ByteProfileOf<V>,
    db: &[u8],
    check: &C,
) -> Option<ByteKernelResult> {
    let seg_len = profile.seg_len();
    let v_open = V::splat(gaps.open.clamp(0, 255) as u8);
    let v_extend = V::splat(gaps.extend.clamp(0, 255) as u8);
    let v_bias = V::splat(profile.bias());
    let mut h_store = vec![V::zero(); seg_len];
    let mut h_load = vec![V::zero(); seg_len];
    let mut e = vec![V::zero(); seg_len];
    let mut v_max = V::zero();
    let mut lazy_f = 0u64;
    // Early exit is sound only for strictly affine gaps: with
    // open == extend, a lazily-raised H generates an F chain exactly equal
    // to the exit threshold, which the cutoff would drop. The outer loop
    // bounds the full propagation at V::LANES wraps either way.
    let early_exit = gaps.open > gaps.extend;

    for (col, &d) in db.iter().enumerate() {
        if col % CANCEL_CHECK_COLS == 0 && check.cancelled() {
            return None;
        }
        let mut v_f = V::zero();
        // H of the last segment, shifted one lane: the "wrap" of the
        // striped layout (element k of the last segment precedes element
        // k+1 of segment 0 in query order).
        let mut v_h = h_store[seg_len - 1].shift();
        std::mem::swap(&mut h_store, &mut h_load);
        for j in 0..seg_len {
            // Biased add, then remove the bias: H + w = (H +sat (w + bias))
            // -sat bias.
            v_h = v_h.sat_add(profile.get(d, j)).sat_sub(v_bias);
            v_h = v_h.max(e[j]).max(v_f);
            v_max = v_max.max(v_h);
            h_store[j] = v_h;
            e[j] = e[j].sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_f = v_f.sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_h = h_load[j];
        }
        // Lazy-F: repair H values that should have been reached by F
        // propagating across segment boundaries. A raised H also raises
        // the next column's E (derived from the unrepaired H in the main
        // loop).
        'lazy_f: for _ in 0..V::LANES {
            v_f = v_f.shift();
            for j in 0..seg_len {
                let h = h_store[j].max(v_f);
                h_store[j] = h;
                v_max = v_max.max(h);
                e[j] = e[j].max(h.sat_sub(v_open));
                v_f = v_f.sat_sub(v_extend);
                lazy_f += 1;
                if early_exit && !v_f.any_gt(h.sat_sub(v_open)) {
                    break 'lazy_f;
                }
            }
        }
        // Overflow check: once the running max could saturate during the
        // next column's biased add, the result is a lower bound only.
        if v_max.horizontal_max() >= profile.overflow_at() {
            return Some(ByteKernelResult {
                score: None,
                lazy_f,
            });
        }
    }
    Some(ByteKernelResult {
        score: Some(v_max.horizontal_max() as i32),
        lazy_f,
    })
}

/// Word-mode (exact) striped Smith-Waterman against one database sequence.
///
/// `#[inline(always)]` for the same reason as [`sw_bytes`].
#[inline(always)]
pub fn sw_words<V: WordSimd>(
    gaps: &GapPenalties,
    profile: &WordProfileOf<V>,
    db: &[u8],
) -> WordKernelResult {
    match sw_words_checked(gaps, profile, db, &NeverCancel) {
        Some(r) => r,
        // Unreachable: NeverCancel never cancels.
        None => WordKernelResult {
            score: 0,
            lazy_f: 0,
        },
    }
}

/// [`sw_words`] with a cancellation probe polled every
/// [`CANCEL_CHECK_COLS`] columns; `None` means the alignment was abandoned.
#[inline(always)]
pub fn sw_words_checked<V: WordSimd, C: ColumnCheck>(
    gaps: &GapPenalties,
    profile: &WordProfileOf<V>,
    db: &[u8],
    check: &C,
) -> Option<WordKernelResult> {
    let seg_len = profile.seg_len();
    let v_open = V::splat(gaps.open as i16);
    let v_extend = V::splat(gaps.extend as i16);
    let mut h_store = vec![V::zero(); seg_len];
    let mut h_load = vec![V::zero(); seg_len];
    let mut e = vec![V::zero(); seg_len];
    let mut v_max = V::zero();
    let mut lazy_f = 0u64;
    // See the byte kernel for why the cutoff needs strictly affine gaps.
    let early_exit = gaps.open > gaps.extend;

    for (col, &d) in db.iter().enumerate() {
        if col % CANCEL_CHECK_COLS == 0 && check.cancelled() {
            return None;
        }
        let mut v_f = V::zero();
        let mut v_h = h_store[seg_len - 1].shift();
        std::mem::swap(&mut h_store, &mut h_load);
        for j in 0..seg_len {
            v_h = v_h.sat_add(profile.get(d, j));
            v_h = v_h.max(e[j]).max(v_f).max(V::zero());
            v_max = v_max.max(v_h);
            h_store[j] = v_h;
            e[j] = e[j].sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_f = v_f.sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_h = h_load[j];
        }
        'lazy_f: for _ in 0..V::LANES {
            v_f = v_f.shift();
            for j in 0..seg_len {
                let h = h_store[j].max(v_f);
                h_store[j] = h;
                v_max = v_max.max(h);
                e[j] = e[j].max(h.sat_sub(v_open));
                v_f = v_f.sat_sub(v_extend);
                lazy_f += 1;
                if early_exit && !v_f.any_gt(h.sat_sub(v_open)) {
                    break 'lazy_f;
                }
            }
        }
    }
    Some(WordKernelResult {
        score: v_max.horizontal_max() as i32,
        lazy_f,
    })
}

/// Byte-mode striped Smith-Waterman with the Lazy-F loop deconstructed
/// into a prefix scan (Snytsar, arXiv:1909.00899).
///
/// Identical main loop to [`sw_bytes`]; the correction differs. Lane `k`
/// of the main loop's exit-F vector holds the F value leaving query chunk
/// `[k·seg_len, (k+1)·seg_len)` *assuming zero F entered the chunk*. The
/// true incoming F of chunk `k` is `max_{i<k}(f_i − (k−1−i)·seg_len·g_ext)`
/// — a max-scan in the (max, +) semiring, computed here Kogge-Stone style
/// in `log2(LANES)` steps. One repair pass then applies it. Raised-H gap
/// openings need no extra term: a gap opened from an F-raised H scores
/// `F − g_open ≤ F − g_ext`, so pure extension dominates (exactly the
/// invariant the correction loop's early exit relies on).
///
/// Counting: each scan step and each repair-pass segment bumps `lazy_f`,
/// so the counter remains "vector operations spent repairing F" in both
/// modes and the before/after is an honest comparison.
///
/// `#[inline(always)]` for the same reason as [`sw_bytes`].
#[inline(always)]
pub fn sw_bytes_scan<V: ByteSimd>(
    gaps: &GapPenalties,
    profile: &ByteProfileOf<V>,
    db: &[u8],
) -> ByteKernelResult {
    match sw_bytes_scan_checked(gaps, profile, db, &NeverCancel) {
        Some(r) => r,
        // Unreachable: NeverCancel never cancels.
        None => ByteKernelResult {
            score: Some(0),
            lazy_f: 0,
        },
    }
}

/// [`sw_bytes_scan`] with a cancellation probe polled every
/// [`CANCEL_CHECK_COLS`] columns; `None` means the alignment was abandoned.
#[inline(always)]
pub fn sw_bytes_scan_checked<V: ByteSimd, C: ColumnCheck>(
    gaps: &GapPenalties,
    profile: &ByteProfileOf<V>,
    db: &[u8],
    check: &C,
) -> Option<ByteKernelResult> {
    let seg_len = profile.seg_len();
    let v_open = V::splat(gaps.open.clamp(0, 255) as u8);
    let v_extend = V::splat(gaps.extend.clamp(0, 255) as u8);
    let v_bias = V::splat(profile.bias());
    // Saturating per-chunk decays for each scan step: shifting by `s`
    // lanes skips `s` chunks of `seg_len` extensions each. u8 saturating
    // subtraction composes (x ⊖ a ⊖ b = x ⊖ min(255, a + b)), so clamping
    // at 255 loses nothing — any F minus 255 is 0 either way.
    let chunk_decay = seg_len as u64 * gaps.extend.max(0) as u64;
    let mut h_store = vec![V::zero(); seg_len];
    let mut h_load = vec![V::zero(); seg_len];
    let mut e = vec![V::zero(); seg_len];
    let mut v_max = V::zero();
    let mut lazy_f = 0u64;
    // See sw_bytes: the repair early exit needs strictly affine gaps.
    let early_exit = gaps.open > gaps.extend;

    for (col, &d) in db.iter().enumerate() {
        if col % CANCEL_CHECK_COLS == 0 && check.cancelled() {
            return None;
        }
        let mut v_f = V::zero();
        let mut v_h = h_store[seg_len - 1].shift();
        std::mem::swap(&mut h_store, &mut h_load);
        for j in 0..seg_len {
            v_h = v_h.sat_add(profile.get(d, j)).sat_sub(v_bias);
            v_h = v_h.max(e[j]).max(v_f);
            v_max = v_max.max(v_h);
            h_store[j] = v_h;
            e[j] = e[j].sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_f = v_f.sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_h = h_load[j];
        }
        // Kogge-Stone inclusive max-scan with decay: after all rounds,
        // lane k holds max_{i<=k}(f_i − (k−i)·chunk_decay) — the exact
        // F leaving chunk k with all upstream chunks accounted for.
        let mut step = 1usize;
        while step < V::LANES {
            let decay = V::splat((step as u64 * chunk_decay).min(255) as u8);
            v_f = v_f.max(v_f.shift_lanes(step).sat_sub(decay));
            lazy_f += 1;
            step <<= 1;
        }
        // Single repair pass: shift() hands lane k+1 its incoming F (lane
        // 0 gets the zero-fill, same semantics as the correction loop).
        v_f = v_f.shift();
        for j in 0..seg_len {
            let h = h_store[j].max(v_f);
            h_store[j] = h;
            v_max = v_max.max(h);
            e[j] = e[j].max(h.sat_sub(v_open));
            v_f = v_f.sat_sub(v_extend);
            lazy_f += 1;
            if early_exit && !v_f.any_gt(h.sat_sub(v_open)) {
                break;
            }
        }
        if v_max.horizontal_max() >= profile.overflow_at() {
            return Some(ByteKernelResult {
                score: None,
                lazy_f,
            });
        }
    }
    Some(ByteKernelResult {
        score: Some(v_max.horizontal_max() as i32),
        lazy_f,
    })
}

/// Word-mode striped Smith-Waterman with the prefix-scan Lazy-F
/// deconstruction. See [`sw_bytes_scan`] for the formulation; the i16
/// decay clamp at `i16::MAX` is equally lossless because any F value at
/// or below zero is inert (H ≥ 0 always wins the max and E never reads F).
///
/// `#[inline(always)]` for the same reason as [`sw_bytes`].
#[inline(always)]
pub fn sw_words_scan<V: WordSimd>(
    gaps: &GapPenalties,
    profile: &WordProfileOf<V>,
    db: &[u8],
) -> WordKernelResult {
    match sw_words_scan_checked(gaps, profile, db, &NeverCancel) {
        Some(r) => r,
        // Unreachable: NeverCancel never cancels.
        None => WordKernelResult {
            score: 0,
            lazy_f: 0,
        },
    }
}

/// [`sw_words_scan`] with a cancellation probe polled every
/// [`CANCEL_CHECK_COLS`] columns; `None` means the alignment was abandoned.
#[inline(always)]
pub fn sw_words_scan_checked<V: WordSimd, C: ColumnCheck>(
    gaps: &GapPenalties,
    profile: &WordProfileOf<V>,
    db: &[u8],
    check: &C,
) -> Option<WordKernelResult> {
    let seg_len = profile.seg_len();
    let v_open = V::splat(gaps.open as i16);
    let v_extend = V::splat(gaps.extend as i16);
    let chunk_decay = seg_len as u64 * gaps.extend.max(0) as u64;
    let mut h_store = vec![V::zero(); seg_len];
    let mut h_load = vec![V::zero(); seg_len];
    let mut e = vec![V::zero(); seg_len];
    let mut v_max = V::zero();
    let mut lazy_f = 0u64;
    let early_exit = gaps.open > gaps.extend;

    for (col, &d) in db.iter().enumerate() {
        if col % CANCEL_CHECK_COLS == 0 && check.cancelled() {
            return None;
        }
        let mut v_f = V::zero();
        let mut v_h = h_store[seg_len - 1].shift();
        std::mem::swap(&mut h_store, &mut h_load);
        for j in 0..seg_len {
            v_h = v_h.sat_add(profile.get(d, j));
            v_h = v_h.max(e[j]).max(v_f).max(V::zero());
            v_max = v_max.max(v_h);
            h_store[j] = v_h;
            e[j] = e[j].sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_f = v_f.sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_h = h_load[j];
        }
        let mut step = 1usize;
        while step < V::LANES {
            let decay = V::splat((step as u64 * chunk_decay).min(i16::MAX as u64) as i16);
            v_f = v_f.max(v_f.shift_lanes(step).sat_sub(decay));
            lazy_f += 1;
            step <<= 1;
        }
        v_f = v_f.shift();
        for j in 0..seg_len {
            let h = h_store[j].max(v_f);
            h_store[j] = h;
            v_max = v_max.max(h);
            e[j] = e[j].max(h.sat_sub(v_open));
            v_f = v_f.sat_sub(v_extend);
            lazy_f += 1;
            if early_exit && !v_f.any_gt(h.sat_sub(v_open)) {
                break;
            }
        }
    }
    Some(WordKernelResult {
        score: v_max.horizontal_max() as i32,
        lazy_f,
    })
}
