//! Host memory admission: a shared byte budget for pool working sets.
//!
//! The GPU side re-chunks on device OOM (PR 1); the host side previously
//! allocated without bound. [`HostMemoryBudget`] is the admission gate: a
//! worker reserves its chunk's estimated working set (kernel H/E/F
//! buffers plus per-sequence overhead) before computing and releases it
//! when the chunk commits. A denied reservation is *not* an error — the
//! pool responds by splitting the chunk in half and retrying
//! (re-chunk-on-pressure), and a chunk that cannot shrink further is
//! force-admitted so progress is guaranteed (counted, never silent).
//!
//! Reservations are RAII ([`BudgetReservation`]): dropping one — normally
//! or during a panic unwind — returns the bytes, so a quarantined chunk
//! can never leak budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed denial from [`HostMemoryBudget::try_reserve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetDenied {
    /// Bytes the caller asked for.
    pub requested: u64,
    /// Bytes already reserved when the request was denied.
    pub in_use: u64,
    /// The budget's limit.
    pub limit: u64,
}

impl std::fmt::Display for BudgetDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "host memory budget denied: {} B requested, {}/{} B in use",
            self.requested, self.in_use, self.limit
        )
    }
}

impl std::error::Error for BudgetDenied {}

#[derive(Debug)]
struct Inner {
    limit: u64,
    in_use: AtomicU64,
    denials: AtomicU64,
    forced: AtomicU64,
}

/// Shared byte budget; clones account against the same pool.
#[derive(Debug, Clone)]
pub struct HostMemoryBudget {
    inner: Arc<Inner>,
}

impl Default for HostMemoryBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl HostMemoryBudget {
    /// A budget that admits everything (the default for plain searches).
    pub fn unlimited() -> Self {
        Self::bytes(u64::MAX)
    }

    /// A budget of `limit` bytes.
    pub fn bytes(limit: u64) -> Self {
        Self {
            inner: Arc::new(Inner {
                limit,
                in_use: AtomicU64::new(0),
                denials: AtomicU64::new(0),
                forced: AtomicU64::new(0),
            }),
        }
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> u64 {
        self.inner.in_use.load(Ordering::Acquire)
    }

    /// Reservations denied so far.
    pub fn denials(&self) -> u64 {
        self.inner.denials.load(Ordering::Relaxed)
    }

    /// Reservations force-admitted past the limit so far.
    pub fn forced(&self) -> u64 {
        self.inner.forced.load(Ordering::Relaxed)
    }

    /// Reserve `bytes`, or explain why not. Admission is all-or-nothing
    /// and atomic against concurrent reservations.
    pub fn try_reserve(&self, bytes: u64) -> Result<BudgetReservation, BudgetDenied> {
        let mut current = self.inner.in_use.load(Ordering::Acquire);
        loop {
            let next = current.saturating_add(bytes);
            if next > self.inner.limit {
                self.inner.denials.fetch_add(1, Ordering::Relaxed);
                return Err(BudgetDenied {
                    requested: bytes,
                    in_use: current,
                    limit: self.inner.limit,
                });
            }
            match self.inner.in_use.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Ok(BudgetReservation {
                        inner: Arc::clone(&self.inner),
                        bytes,
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Admit `bytes` unconditionally (minimum-size chunk that still does
    /// not fit: progress beats the limit, but the bypass is counted).
    pub fn force_reserve(&self, bytes: u64) -> BudgetReservation {
        self.inner.forced.fetch_add(1, Ordering::Relaxed);
        self.inner.in_use.fetch_add(bytes, Ordering::AcqRel);
        BudgetReservation {
            inner: Arc::clone(&self.inner),
            bytes,
        }
    }
}

/// A live reservation; dropping it returns the bytes to the budget.
#[derive(Debug)]
pub struct BudgetReservation {
    inner: Arc<Inner>,
    bytes: u64,
}

impl BudgetReservation {
    /// Bytes this reservation holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for BudgetReservation {
    fn drop(&mut self) {
        self.inner.in_use.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_cycle() {
        let b = HostMemoryBudget::bytes(100);
        let r = match b.try_reserve(60) {
            Ok(r) => r,
            Err(e) => panic!("should admit: {e}"),
        };
        assert_eq!(b.in_use(), 60);
        assert!(b.try_reserve(50).is_err(), "over the limit");
        assert_eq!(b.denials(), 1);
        drop(r);
        assert_eq!(b.in_use(), 0);
        assert!(b.try_reserve(100).is_ok());
    }

    #[test]
    fn forced_reservation_bypasses_but_counts() {
        let b = HostMemoryBudget::bytes(10);
        let r = b.force_reserve(64);
        assert_eq!(b.in_use(), 64);
        assert_eq!(b.forced(), 1);
        drop(r);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn unlimited_never_denies() {
        let b = HostMemoryBudget::unlimited();
        let _r = b.force_reserve(u64::MAX / 4);
        assert!(b.try_reserve(u64::MAX / 2).is_ok());
        assert_eq!(b.denials(), 0);
    }

    #[test]
    fn clones_share_accounting() {
        let a = HostMemoryBudget::bytes(50);
        let b = a.clone();
        let _r = a.try_reserve(40);
        assert_eq!(b.in_use(), 40);
        assert!(b.try_reserve(20).is_err());
    }
}
