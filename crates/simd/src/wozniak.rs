//! Wozniak's anti-diagonal vectorization.
//!
//! Cells along one anti-diagonal of the DP table are independent, so they
//! can be processed in vectors with no Lazy-F correction. The historical
//! weakness (the motivation for the query profile, §II-A of the paper) is
//! that the similarity lookups `w(q[i], d[j])` cannot be vectorized: each
//! lane needs an independent two-index gather. This implementation counts
//! those scalar lookups so benchmarks can show the contrast with
//! profile-based kernels.

use crate::vector::{I16x8, LANES};
use sw_align::smith_waterman::SwParams;

/// Result of an anti-diagonal alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WozniakResult {
    /// Optimal local score.
    pub score: i32,
    /// Scalar similarity-function lookups performed.
    pub scalar_lookups: u64,
}

/// Anti-diagonal Smith-Waterman.
pub fn sw_antidiagonal(params: &SwParams, query: &[u8], db: &[u8]) -> WozniakResult {
    let m = query.len();
    let n = db.len();
    if m == 0 || n == 0 {
        return WozniakResult {
            score: 0,
            scalar_lookups: 0,
        };
    }
    let open = params.gaps.open as i16;
    let extend = params.gaps.extend as i16;
    let neg = i16::MIN / 2;

    // Rolling per-diagonal arrays indexed by query row i. A cell (i, j) of
    // diagonal d = i + j reads:
    //   left  (i,   j-1): diagonal d-1, index i      (H and E)
    //   up    (i-1, j  ): diagonal d-1, index i-1    (H and F)
    //   diag  (i-1, j-1): diagonal d-2, index i-1    (H)
    // Zero-initialized H arrays encode the local-alignment boundary; E/F
    // start at -inf.
    let mut h1 = vec![0i16; m]; // diagonal d-1
    let mut h2 = vec![0i16; m]; // diagonal d-2
    let mut e1 = vec![neg; m];
    let mut f1 = vec![neg; m];
    let mut h0 = vec![0i16; m];
    let mut e0 = vec![neg; m];
    let mut f0 = vec![neg; m];

    let v_open = I16x8::splat(open);
    let v_extend = I16x8::splat(extend);
    let mut best = 0i16;
    let mut scalar_lookups = 0u64;

    let gather = |src: &[i16], base: isize, fallback: i16| -> I16x8 {
        let mut v = [fallback; LANES];
        for (k, slot) in v.iter_mut().enumerate() {
            let idx = base + k as isize;
            if idx >= 0 && (idx as usize) < src.len() {
                *slot = src[idx as usize];
            }
        }
        I16x8(v)
    };

    for d in 0..(m + n - 1) {
        let i_lo = d.saturating_sub(n - 1);
        let i_hi = d.min(m - 1);
        let mut i = i_lo;
        while i <= i_hi {
            let lanes = LANES.min(i_hi - i + 1);
            // Gather operands for rows i..i+lanes.
            // Left neighbour exists when j-1 >= 0, i.e. row < d; rows at
            // row == d have j == 0. The zero-filled h1 covers row == d
            // (never written for this window yet) only when d < m; guard
            // with explicit masking through the fallback of gather plus a
            // post-fix below for the j == 0 lanes.
            let h_left = gather(&h1, i as isize, 0);
            let e_left = gather(&e1, i as isize, neg);
            let h_up = gather(&h1, i as isize - 1, 0);
            let f_up = gather(&f1, i as isize - 1, neg);
            let h_diag = gather(&h2, i as isize - 1, 0);

            // Substitution scores: the sequential lookups.
            let mut w = [0i16; LANES];
            for (k, slot) in w.iter_mut().enumerate().take(lanes) {
                let row = i + k;
                let col = d - row;
                *slot = params.matrix.score(query[row], db[col]) as i16;
                scalar_lookups += 1;
            }
            let v_w = I16x8(w);

            let e = e_left.sat_sub(v_extend).max(h_left.sat_sub(v_open));
            let f = f_up.sat_sub(v_extend).max(h_up.sat_sub(v_open));
            let h = h_diag.sat_add(v_w).max(e).max(f).max(I16x8::zero());

            for k in 0..lanes {
                let row = i + k;
                h0[row] = h.0[k];
                e0[row] = e.0[k];
                f0[row] = f.0[k];
                if h.0[k] > best {
                    best = h.0[k];
                }
            }
            i += lanes;
        }
        // Rotate: d-1 becomes d-2, d becomes d-1.
        std::mem::swap(&mut h2, &mut h1);
        std::mem::swap(&mut h1, &mut h0);
        std::mem::swap(&mut e1, &mut e0);
        std::mem::swap(&mut f1, &mut f0);
        // Stale windows are never read (see the range analysis above), so
        // no clearing is needed.
    }

    WozniakResult {
        score: best as i32,
        scalar_lookups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::alphabet::encode_protein;
    use sw_align::smith_waterman::sw_score;

    fn p() -> SwParams {
        SwParams::cudasw_default()
    }

    #[test]
    fn matches_scalar_on_fixed_cases() {
        let cases = [
            ("MKVLAW", "MKVLAW"),
            ("ACDEFG", "ACDXXEFG"),
            ("WWWW", "PPPP"),
            ("MSPARKLNQWETYCV", "MSPRKLNQWWETYCV"),
            ("M", "MKVLLLLAW"),
            ("MKVLAWMKVLAWMKVLAW", "MK"),
        ];
        for (q, d) in cases {
            let qc = encode_protein(q).unwrap();
            let dc = encode_protein(d).unwrap();
            let r = sw_antidiagonal(&p(), &qc, &dc);
            assert_eq!(r.score, sw_score(&p(), &qc, &dc), "q={q} d={d}");
        }
    }

    #[test]
    fn lookup_count_is_cell_count() {
        let qc = encode_protein("MKVLAW").unwrap();
        let dc = encode_protein("ACDEFGH").unwrap();
        let r = sw_antidiagonal(&p(), &qc, &dc);
        assert_eq!(r.scalar_lookups, (qc.len() * dc.len()) as u64);
    }

    #[test]
    fn empty_inputs() {
        let r = sw_antidiagonal(&p(), &[], &[0, 1]);
        assert_eq!(r.score, 0);
        assert_eq!(r.scalar_lookups, 0);
    }
}
