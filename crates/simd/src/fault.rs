//! Deterministic host-side fault injection for the SIMD pool.
//!
//! The simulated GPU has had a seeded fault layer since PR 1; this is its
//! host mirror. A [`HostFaultPlan`] decides — as a pure function of the
//! plan seed and a chunk's identity `(start, len)` — whether scoring that
//! chunk panics, stalls, or fails its memory admission. Determinism is the
//! whole point: the same plan over the same chunking injects the same
//! faults no matter which worker draws which chunk, which thread count
//! runs, or how stealing interleaves, so chaos tests can assert exact
//! outcomes (scores bit-identical to the fault-free run, zero lost or
//! duplicated sequences).
//!
//! Faults fire **once per chunk identity per run** ([`HostFaultInjector`]
//! keeps the fired set): the recovery path that re-executes a chunk —
//! watchdog re-dispatch after a stall, the split halves after an
//! alloc-fail — must be able to make progress, exactly like the GPU
//! layer's retry discipline.

use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of a pool chunk: `(start index, sequence count)`. Split
/// halves get fresh identities, so re-chunking re-rolls the dice.
pub type ChunkId = (usize, usize);

/// The host fault classes the pool can absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostFaultKind {
    /// The chunk computation panics mid-flight; the pool must quarantine
    /// it and recompute on the scalar oracle.
    Panic,
    /// The worker goes silent (sleeps) without making progress; the
    /// watchdog must re-dispatch the chunk to a survivor.
    Stall,
    /// The chunk's memory admission is refused; the pool must re-chunk
    /// under pressure.
    AllocFail,
}

impl HostFaultKind {
    /// Every kind, in draw order.
    pub const ALL: [HostFaultKind; 3] = [
        HostFaultKind::Panic,
        HostFaultKind::Stall,
        HostFaultKind::AllocFail,
    ];

    /// Stable lowercase name (metrics labels, CLI, chaos tables).
    pub fn name(self) -> &'static str {
        match self {
            HostFaultKind::Panic => "panic",
            HostFaultKind::Stall => "stall",
            HostFaultKind::AllocFail => "alloc-fail",
        }
    }
}

impl std::fmt::Display for HostFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-chunk fault probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostFaultRates {
    /// Probability a chunk's computation panics.
    pub panic: f64,
    /// Probability a chunk's worker stalls before computing.
    pub stall: f64,
    /// Probability a chunk's memory admission fails.
    pub alloc_fail: f64,
}

impl HostFaultRates {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// The storm used by chaos tests and the soak: every class is likely
    /// to fire at least once over a few dozen chunks.
    pub fn chaos() -> Self {
        Self {
            panic: 0.10,
            stall: 0.08,
            alloc_fail: 0.10,
        }
    }
}

/// A seeded, chunk-granularity fault schedule for one pool search.
#[derive(Debug, Clone, Default)]
pub struct HostFaultPlan {
    seed: u64,
    rates: HostFaultRates,
    /// How long an injected stall sleeps. Tests keep this a few times the
    /// watchdog's stall threshold so re-dispatch demonstrably wins.
    pub stall_ms: u64,
    forced: Vec<(ChunkId, HostFaultKind)>,
}

impl HostFaultPlan {
    /// The no-fault plan (what plain searches run under).
    pub fn none() -> Self {
        Self::default()
    }

    /// Random faults at `rates`, fully determined by `seed`.
    pub fn random(seed: u64, rates: HostFaultRates) -> Self {
        Self {
            seed,
            rates,
            stall_ms: 60,
            forced: Vec::new(),
        }
    }

    /// Builder: force `kind` onto the chunk with identity `chunk`.
    pub fn with_fault_at(mut self, chunk: ChunkId, kind: HostFaultKind) -> Self {
        self.forced.push((chunk, kind));
        self
    }

    /// Builder: override the injected stall duration.
    pub fn with_stall_ms(mut self, ms: u64) -> Self {
        self.stall_ms = ms;
        self
    }

    /// True when this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.forced.is_empty()
            && self.rates.panic <= 0.0
            && self.rates.stall <= 0.0
            && self.rates.alloc_fail <= 0.0
    }

    /// The fault (if any) this plan deals to `chunk` — a pure function of
    /// the plan and the chunk identity. Forced faults win; otherwise each
    /// kind draws an independent uniform hash in [`HostFaultKind::ALL`]
    /// order and the first under its rate fires.
    pub fn draw(&self, chunk: ChunkId) -> Option<HostFaultKind> {
        if let Some((_, kind)) = self.forced.iter().find(|(id, _)| *id == chunk) {
            return Some(*kind);
        }
        let rate = |kind: HostFaultKind| match kind {
            HostFaultKind::Panic => self.rates.panic,
            HostFaultKind::Stall => self.rates.stall,
            HostFaultKind::AllocFail => self.rates.alloc_fail,
        };
        HostFaultKind::ALL
            .into_iter()
            .enumerate()
            .find(|&(salt, kind)| unit(self.seed, chunk, salt as u64) < rate(kind))
            .map(|(_, kind)| kind)
    }
}

/// SplitMix64 — the same stateless generator the GPU fault layer uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` keyed on `(seed, chunk, salt)` — stateless, so
/// the schedule is independent of execution order.
fn unit(seed: u64, chunk: ChunkId, salt: u64) -> f64 {
    let mut state = seed
        ^ (chunk.0 as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (chunk.1 as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)
        ^ salt.wrapping_mul(0x8EBC_6AF0_9C88_C6E3);
    (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-run injection state: the plan plus the once-per-chunk discipline
/// and fired-fault counters.
#[derive(Debug, Default)]
pub struct HostFaultInjector {
    plan: HostFaultPlan,
    fired: Mutex<HashSet<ChunkId>>,
    panics: AtomicU64,
    stalls: AtomicU64,
    alloc_fails: AtomicU64,
}

impl HostFaultInjector {
    /// Injector for `plan`.
    pub fn new(plan: HostFaultPlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &HostFaultPlan {
        &self.plan
    }

    /// The fault to inject when executing `chunk` now, or `None`. A chunk
    /// identity faults at most once per run, so retries and re-dispatches
    /// of the same chunk run clean.
    pub fn fault_for(&self, chunk: ChunkId) -> Option<HostFaultKind> {
        if self.plan.is_inert() {
            return None;
        }
        let kind = self.plan.draw(chunk)?;
        if !self.fired.lock().insert(chunk) {
            return None;
        }
        match kind {
            HostFaultKind::Panic => &self.panics,
            HostFaultKind::Stall => &self.stalls,
            HostFaultKind::AllocFail => &self.alloc_fails,
        }
        .fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }

    /// Faults injected so far, total.
    pub fn injected(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
            + self.alloc_fails.load(Ordering::Relaxed)
    }

    /// Injected panics so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Injected stalls so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Injected alloc failures so far.
    pub fn alloc_fails(&self) -> u64 {
        self.alloc_fails.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let rates = HostFaultRates::chaos();
        let a = HostFaultPlan::random(7, rates);
        let b = HostFaultPlan::random(7, rates);
        let c = HostFaultPlan::random(8, rates);
        let chunks: Vec<ChunkId> = (0..200).map(|i| (i * 16, 16)).collect();
        let fa: Vec<_> = chunks.iter().map(|&ch| a.draw(ch)).collect();
        let fb: Vec<_> = chunks.iter().map(|&ch| b.draw(ch)).collect();
        let fc: Vec<_> = chunks.iter().map(|&ch| c.draw(ch)).collect();
        assert_eq!(fa, fb, "same seed, same schedule");
        assert_ne!(fa, fc, "different seed, different schedule");
        assert!(
            fa.iter().flatten().count() > 0,
            "chaos rates fire over 200 chunks"
        );
    }

    #[test]
    fn every_kind_fires_somewhere_under_chaos_rates() {
        let plan = HostFaultPlan::random(3, HostFaultRates::chaos());
        let mut seen = HashSet::new();
        for i in 0..500 {
            if let Some(kind) = plan.draw((i * 8, 8)) {
                seen.insert(kind);
            }
        }
        for kind in HostFaultKind::ALL {
            assert!(seen.contains(&kind), "{kind} never fired in 500 chunks");
        }
    }

    #[test]
    fn injector_fires_each_chunk_at_most_once() {
        let plan = HostFaultPlan::none().with_fault_at((0, 4), HostFaultKind::Stall);
        let inj = HostFaultInjector::new(plan);
        assert_eq!(inj.fault_for((0, 4)), Some(HostFaultKind::Stall));
        assert_eq!(inj.fault_for((0, 4)), None, "re-dispatch runs clean");
        assert_eq!(inj.stalls(), 1);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn split_halves_reroll_the_draw() {
        let plan = HostFaultPlan::none().with_fault_at((8, 16), HostFaultKind::AllocFail);
        let inj = HostFaultInjector::new(plan);
        assert_eq!(inj.fault_for((8, 16)), Some(HostFaultKind::AllocFail));
        // The split halves (8, 8) and (16, 8) carry fresh identities.
        assert_eq!(inj.fault_for((8, 8)), None);
        assert_eq!(inj.fault_for((16, 8)), None);
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let inj = HostFaultInjector::new(HostFaultPlan::none());
        for i in 0..100 {
            assert_eq!(inj.fault_for((i, 1)), None);
        }
        assert_eq!(inj.injected(), 0);
    }
}
