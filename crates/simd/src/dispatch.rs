//! Runtime backend and kernel-mode selection.
//!
//! [`BackendKind::detect`] picks the widest backend the running CPU
//! supports: AVX2 (32-lane byte mode) > SSE2 (16-lane, x86-64 baseline) >
//! NEON (16-lane, AArch64 baseline) > the portable emulated vectors. Two
//! overrides exist:
//!
//! * the `force-portable` cargo feature pins the portable backend at
//!   compile time (CI uses it to exercise the fallback path on any host);
//! * the `SW_SIMD_BACKEND` environment variable (`avx2` / `sse2` / `neon` /
//!   `portable`) requests a specific backend at run time and is ignored —
//!   never trusted — when that backend is unavailable.
//!
//! [`KernelMode`] selects how cross-segment F propagation is repaired in
//! the striped kernels: the classic Lazy-F correction loop, or Snytsar's
//! prefix-scan deconstruction (arXiv:1909.00899), which computes the exact
//! lane-boundary F values in `log2(lanes)` scan steps and repairs in a
//! single pass. Both produce bit-identical scores and overflow verdicts;
//! `SW_KERNEL_MODE=correction-loop|prefix-scan` overrides the default.

/// The host compute backends this build knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// AVX2: 32 × u8 byte mode, 16 × i16 word mode (x86-64, detected).
    Avx2,
    /// SSE2: 16 × u8 byte mode, 8 × i16 word mode (x86-64 baseline).
    Sse2,
    /// NEON: 16 × u8 byte mode, 8 × i16 word mode (AArch64 baseline).
    Neon,
    /// Emulated fixed-size-array vectors (any target).
    Portable,
}

impl BackendKind {
    /// Every kind, widest first — the preference order of [`detect`].
    ///
    /// [`detect`]: BackendKind::detect
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Avx2,
        BackendKind::Sse2,
        BackendKind::Neon,
        BackendKind::Portable,
    ];

    /// Stable lowercase name (used in metrics labels, env overrides, and
    /// `BENCH_host.json`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Avx2 => "avx2",
            BackendKind::Sse2 => "sse2",
            BackendKind::Neon => "neon",
            BackendKind::Portable => "portable",
        }
    }

    /// Parse a backend name as used by `SW_SIMD_BACKEND`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "avx2" => Some(BackendKind::Avx2),
            "sse2" => Some(BackendKind::Sse2),
            "neon" => Some(BackendKind::Neon),
            "portable" => Some(BackendKind::Portable),
            _ => None,
        }
    }

    /// True when this build can execute the backend on the running CPU.
    pub fn is_available(self) -> bool {
        match self {
            #[cfg(all(
                target_arch = "x86_64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            BackendKind::Avx2 => {
                use crate::backend::Backend;
                crate::x86::Avx2Backend::available()
            }
            #[cfg(all(
                target_arch = "x86_64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            BackendKind::Sse2 => {
                use crate::backend::Backend;
                crate::x86::Sse2Backend::available()
            }
            #[cfg(all(
                target_arch = "aarch64",
                feature = "native-simd",
                not(feature = "force-portable")
            ))]
            BackendKind::Neon => {
                use crate::backend::Backend;
                crate::neon::NeonBackend::available()
            }
            BackendKind::Portable => true,
            #[allow(unreachable_patterns)] // arms above are cfg-gated
            _ => false,
        }
    }

    /// All backends available on this host, widest first (always ends with
    /// [`BackendKind::Portable`]).
    pub fn available() -> Vec<BackendKind> {
        Self::ALL.into_iter().filter(|k| k.is_available()).collect()
    }

    /// The backend production code should use: the `SW_SIMD_BACKEND`
    /// override when set *and* available, otherwise the widest available.
    pub fn detect() -> BackendKind {
        if let Ok(name) = std::env::var("SW_SIMD_BACKEND") {
            if let Some(kind) = BackendKind::from_name(name.trim()) {
                if kind.is_available() {
                    return kind;
                }
            }
        }
        Self::ALL
            .into_iter()
            .find(|k| k.is_available())
            .unwrap_or(BackendKind::Portable)
    }

    /// u8 lanes of this backend's byte mode.
    pub fn byte_lanes(self) -> usize {
        match self {
            BackendKind::Avx2 => 32,
            _ => 16,
        }
    }

    /// i16 lanes of this backend's word mode.
    pub fn word_lanes(self) -> usize {
        match self {
            BackendKind::Avx2 => 16,
            _ => 8,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the striped kernels repair cross-segment F propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Farrar's Lazy-F correction loop: re-run the column up to
    /// `lanes` times, shifting F one lane per pass, with the SWAT-style
    /// early exit. The default and the long-standing baseline.
    #[default]
    CorrectionLoop,
    /// Snytsar's deconstruction (arXiv:1909.00899): a Kogge-Stone max-scan
    /// over the lane-boundary F values (decay `seg_len × gap_extend` per
    /// lane step) yields every lane's exact incoming F at once, so a
    /// single repair pass over the segments suffices.
    PrefixScan,
}

impl KernelMode {
    /// Both modes, default first.
    pub const ALL: [KernelMode; 2] = [KernelMode::CorrectionLoop, KernelMode::PrefixScan];

    /// Stable lowercase name (metrics labels, env override, bench rows).
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::CorrectionLoop => "correction-loop",
            KernelMode::PrefixScan => "prefix-scan",
        }
    }

    /// Parse a mode name as used by `SW_KERNEL_MODE`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "correction-loop" | "loop" => Some(KernelMode::CorrectionLoop),
            "prefix-scan" | "scan" => Some(KernelMode::PrefixScan),
            _ => None,
        }
    }

    /// The mode production code should use: the `SW_KERNEL_MODE` override
    /// when set and recognised, otherwise the correction loop.
    pub fn detect() -> KernelMode {
        if let Ok(name) = std::env::var("SW_KERNEL_MODE") {
            if let Some(mode) = KernelMode::from_name(name.trim()) {
                return mode;
            }
        }
        KernelMode::default()
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_is_always_available() {
        assert!(BackendKind::Portable.is_available());
        let available = BackendKind::available();
        assert!(!available.is_empty());
        assert_eq!(available.last(), Some(&BackendKind::Portable));
        assert!(available.contains(&BackendKind::detect()));
    }

    #[test]
    fn names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_name("AVX2"), Some(BackendKind::Avx2));
        assert_eq!(BackendKind::from_name("riscv-v"), None);
    }

    #[test]
    fn lane_counts() {
        assert_eq!(BackendKind::Avx2.byte_lanes(), 32);
        assert_eq!(BackendKind::Avx2.word_lanes(), 16);
        for kind in [BackendKind::Sse2, BackendKind::Neon, BackendKind::Portable] {
            assert_eq!(kind.byte_lanes(), 16);
            assert_eq!(kind.word_lanes(), 8);
        }
    }

    #[cfg(all(
        target_arch = "x86_64",
        feature = "native-simd",
        not(feature = "force-portable")
    ))]
    #[test]
    fn sse2_is_baseline_on_x86_64() {
        assert!(BackendKind::Sse2.is_available());
    }

    #[cfg(feature = "force-portable")]
    #[test]
    fn force_portable_pins_detection() {
        assert_eq!(BackendKind::detect(), BackendKind::Portable);
    }

    #[test]
    fn kernel_mode_names_round_trip() {
        for mode in KernelMode::ALL {
            assert_eq!(KernelMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(KernelMode::from_name("scan"), Some(KernelMode::PrefixScan));
        assert_eq!(
            KernelMode::from_name("LOOP"),
            Some(KernelMode::CorrectionLoop)
        );
        assert_eq!(KernelMode::from_name("wavefront"), None);
        assert_eq!(KernelMode::default(), KernelMode::CorrectionLoop);
    }
}
