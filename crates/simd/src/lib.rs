//! Vectorized CPU Smith-Waterman — the SWPS3 stand-in.
//!
//! Figure 7 of the paper compares CUDASW++ against SWPS3, "a vectorized
//! SSE implementation of Smith-Waterman using four cores of an Intel Xeon".
//! SWPS3 implements Farrar's *striped* algorithm, whose defining cost is
//! the **Lazy-F** correction loop ("the need of SWPS3 to correct errors
//! which are a result of a vertical traversal through the SW tables. The
//! correction requires at least another pass, which is known as the Lazy-F
//! loop"). That loop is exactly why SWPS3's throughput varies with query
//! length in Figure 7.
//!
//! This crate provides:
//!
//! * [`vector`] — a portable 8-lane `i16` vector with the saturating
//!   SSE2-style operations the algorithms need (written so LLVM
//!   auto-vectorizes it);
//! * [`farrar`] — Farrar's striped algorithm with the Lazy-F loop,
//!   including a counter of Lazy-F passes;
//! * [`byte_mode`] — SWPS3's 16-lane 8-bit mode with overflow detection
//!   and word-mode fallback;
//! * [`wozniak`] — Wozniak's anti-diagonal vectorization (no Lazy-F, but
//!   sequential similarity lookups — the weakness the query profile fixes);
//! * [`rognes`] — Rognes–Seeberg sequential vertical vectorization with a
//!   query profile and the SWAT-like F-skip optimization;
//! * [`swps3`] — a multi-threaded whole-database search driver in the role
//!   SWPS3 plays in Figure 7.
//!
//! Every implementation is validated against `sw_align::sw_score`.

pub mod byte_mode;
pub mod farrar;
pub mod rognes;
pub mod swps3;
pub mod vector;
pub mod wozniak;

pub use byte_mode::{sw_striped_adaptive, AdaptiveStats, ByteProfile};
pub use farrar::{striped_profile, sw_striped, StripedProfile};
pub use swps3::{Swps3Driver, Swps3Result};
pub use vector::I16x8;
