//! Vectorized CPU Smith-Waterman — the real host compute backend.
//!
//! Figure 7 of the paper compares CUDASW++ against SWPS3, "a vectorized
//! SSE implementation of Smith-Waterman using four cores of an Intel Xeon".
//! This crate now plays that role for real: Farrar's *striped* kernel runs
//! on the machine's native vector unit, selected at run time, with SSW-style
//! adaptive precision (saturating 8-bit byte mode first, exact 16-bit
//! word-mode re-run only for pairs that overflow) and a work-stealing
//! thread pool sharding the database across cores. The defining striped-SW
//! cost — the **Lazy-F** correction loop, "the need of SWPS3 to correct
//! errors which are a result of a vertical traversal through the SW
//! tables" — is counted *per precision mode* (byte-mode repair passes
//! separately from word-mode), per backend.
//!
//! Layout:
//!
//! * [`backend`] — the [`ByteSimd`](backend::ByteSimd) /
//!   [`WordSimd`](backend::WordSimd) traits and the generic striped
//!   kernels every backend shares (bit-identical scores by construction:
//!   lane count changes the striping layout, never the per-cell
//!   arithmetic);
//! * [`x86`] / [`neon`] — `core::arch` backends: AVX2 (32×u8 / 16×i16,
//!   `is_x86_feature_detected!`), SSE2 (16×u8 / 8×i16, x86-64 baseline),
//!   NEON (16×u8 / 8×i16, AArch64 baseline);
//! * [`vector`] / [`byte_mode`] — the portable emulated vectors (the
//!   always-available fallback and the differential-test baseline) and the
//!   legacy byte-mode entry points;
//! * [`dispatch`] — [`BackendKind`]: runtime detection, `SW_SIMD_BACKEND`
//!   override, `force-portable` pin;
//! * [`engine`] — [`QueryEngine`]: profiles built once per query, scored
//!   through the dispatched backend, with `cudasw.simd.*` metrics;
//! * [`pool`] — work-stealing database sharding across threads;
//! * [`farrar`] — word-mode entry points ([`sw_striped_score`] is the
//!   scalar-validated reference oracle used across the workspace);
//! * [`wozniak`] — Wozniak's anti-diagonal vectorization (no Lazy-F, but
//!   sequential similarity lookups — the weakness the query profile fixes);
//! * [`rognes`] — Rognes–Seeberg sequential vertical vectorization with a
//!   query profile and the SWAT-like F-skip optimization;
//! * [`swps3`] — the multi-threaded whole-database search driver in the
//!   role SWPS3 plays in Figure 7.
//!
//! Every implementation is validated against `sw_align::sw_score`; the
//! differential proptests in `tests/backend_differential.rs` additionally
//! pin byte mode, word mode, and every available backend to identical
//! scores.

// Crash-only discipline: library code may not panic through `unwrap` /
// `expect` — every fallible path must recover or return a typed error.
// (Unit tests, compiled with `cfg(test)`, are exempt.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod budget;
pub mod byte_mode;
pub mod cancel;
pub mod dispatch;
pub mod engine;
pub mod farrar;
pub mod fault;
pub mod neon;
pub mod pool;
pub mod portable;
pub mod rognes;
pub mod swps3;
pub mod vector;
pub mod wozniak;
pub mod x86;

pub use backend::{ColumnCheck, NeverCancel};
pub use budget::{BudgetDenied, BudgetReservation, HostMemoryBudget};
pub use byte_mode::{sw_striped_adaptive, AdaptiveStats, ByteProfile};
pub use cancel::{CancelToken, Cancelled, CANCEL_CHECK_COLS};
pub use dispatch::{BackendKind, KernelMode};
pub use engine::{record_stats, Precision, QueryEngine};
pub use farrar::{striped_profile, sw_striped, sw_striped_score, StripedProfile};
pub use fault::{ChunkId, HostFaultInjector, HostFaultKind, HostFaultPlan, HostFaultRates};
pub use pool::{
    effective_workers, length_aware_chunks, search_protected, search_protected_with_chunks,
    search_sequences, search_uncancelled, search_with_cancel, search_with_chunks, HostSearchResult,
    PoolConfig, PoolFaultReport, CHUNKS_PER_WORKER, MIN_SEQS_PER_WORKER, SEQ_ADMISSION_BYTES,
};
pub use swps3::{Swps3Driver, Swps3Result};
pub use vector::I16x8;
