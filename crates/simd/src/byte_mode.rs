//! Byte-mode striped Smith-Waterman with word-mode fallback.
//!
//! SWPS3 (and Farrar's original implementation) first runs the striped
//! kernel with **16 lanes of 8-bit unsigned** arithmetic — twice the lane
//! count of word mode — and only falls back to 16-bit word mode when the
//! score saturates. Scores are kept non-negative by adding a *bias* (the
//! magnitude of the most negative substitution score) to every profile
//! entry and subtracting it back after the diagonal add.
//!
//! [`sw_striped_adaptive`] is the production entry point: byte mode first,
//! exact word-mode re-run on overflow.

#![allow(clippy::needless_range_loop)] // lane loops mirror SIMD semantics

use crate::farrar::{striped_profile, sw_striped};
use sw_align::smith_waterman::SwParams;

/// Lanes in byte mode (`__m128i` as 16 × u8).
pub const BYTE_LANES: usize = 16;

/// A 16-lane `u8` vector with SSE2-style unsigned saturating semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U8x16(pub [u8; BYTE_LANES]);

impl U8x16 {
    /// All lanes equal to `v`.
    #[inline]
    pub fn splat(v: u8) -> Self {
        Self([v; BYTE_LANES])
    }

    /// All-zero vector.
    #[inline]
    pub fn zero() -> Self {
        Self::splat(0)
    }

    /// Lane-wise unsigned saturating addition (`paddusb`).
    #[inline]
    pub fn sat_add(self, rhs: Self) -> Self {
        let mut out = [0u8; BYTE_LANES];
        for i in 0..BYTE_LANES {
            out[i] = self.0[i].saturating_add(rhs.0[i]);
        }
        Self(out)
    }

    /// Lane-wise unsigned saturating subtraction (`psubusb`).
    #[inline]
    pub fn sat_sub(self, rhs: Self) -> Self {
        let mut out = [0u8; BYTE_LANES];
        for i in 0..BYTE_LANES {
            out[i] = self.0[i].saturating_sub(rhs.0[i]);
        }
        Self(out)
    }

    /// Lane-wise maximum (`pmaxub`).
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        let mut out = [0u8; BYTE_LANES];
        for i in 0..BYTE_LANES {
            out[i] = self.0[i].max(rhs.0[i]);
        }
        Self(out)
    }

    /// True when any lane of `self` is strictly greater than `rhs`.
    #[inline]
    pub fn any_gt(self, rhs: Self) -> bool {
        for i in 0..BYTE_LANES {
            if self.0[i] > rhs.0[i] {
                return true;
            }
        }
        false
    }

    /// Shift lanes towards higher indices by one, inserting `fill`.
    #[inline]
    pub fn shift_in(self, fill: u8) -> Self {
        let mut out = [fill; BYTE_LANES];
        out[1..BYTE_LANES].copy_from_slice(&self.0[..BYTE_LANES - 1]);
        Self(out)
    }

    /// Maximum over all lanes.
    #[inline]
    pub fn horizontal_max(self) -> u8 {
        let mut m = self.0[0];
        for i in 1..BYTE_LANES {
            m = m.max(self.0[i]);
        }
        m
    }
}

/// Striped byte profile: biased scores, 16 lanes per segment.
#[derive(Debug, Clone)]
pub struct ByteProfile {
    seg_len: usize,
    bias: u8,
    /// Scores at or above this saturate within one more column.
    overflow_at: u8,
    vectors: Vec<U8x16>,
}

impl ByteProfile {
    /// Build the biased byte profile of `query` under `params`.
    pub fn build(params: &SwParams, query: &[u8]) -> Self {
        let m = query.len();
        let seg_len = m.div_ceil(BYTE_LANES).max(1);
        let alphabet_size = params.matrix.size();
        let bias = (-params.matrix.min_score()).max(0) as u8;
        let mut vectors = Vec::with_capacity(alphabet_size * seg_len);
        for a in 0..alphabet_size as u8 {
            let row = params.matrix.row(a);
            for j in 0..seg_len {
                let mut v = [0u8; BYTE_LANES]; // padding scores bias-0 = min
                for (k, slot) in v.iter_mut().enumerate() {
                    let pos = j + k * seg_len;
                    if pos < m {
                        *slot = (row[query[pos] as usize] as i32 + bias as i32) as u8;
                    }
                }
                vectors.push(U8x16(v));
            }
        }
        let overflow_at = 255u8
            .saturating_sub(bias)
            .saturating_sub(params.matrix.max_score().clamp(0, 255) as u8);
        Self {
            seg_len,
            bias,
            overflow_at,
            vectors,
        }
    }

    #[inline]
    fn get(&self, a: u8, j: usize) -> U8x16 {
        self.vectors[a as usize * self.seg_len + j]
    }

    /// Segments per residue row.
    pub fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// The bias added to every score.
    pub fn bias(&self) -> u8 {
        self.bias
    }
}

/// Byte-mode result: `None` means the score saturated and word mode must
/// be used.
pub fn sw_striped_bytes(params: &SwParams, profile: &ByteProfile, db: &[u8]) -> Option<i32> {
    let seg_len = profile.seg_len();
    let v_open = U8x16::splat(params.gaps.open.clamp(0, 255) as u8);
    let v_extend = U8x16::splat(params.gaps.extend.clamp(0, 255) as u8);
    let v_bias = U8x16::splat(profile.bias());
    let mut h_store = vec![U8x16::zero(); seg_len];
    let mut h_load = vec![U8x16::zero(); seg_len];
    let mut e = vec![U8x16::zero(); seg_len];
    let mut v_max = U8x16::zero();

    for &d in db {
        let mut v_f = U8x16::zero();
        let mut v_h = h_store[seg_len - 1].shift_in(0);
        std::mem::swap(&mut h_store, &mut h_load);
        for j in 0..seg_len {
            // Biased add, then remove the bias: H + w = (H +sat (w + bias))
            // -sat bias. Padding lanes carry score 0 (= true minimum), so
            // they sink towards zero and never win the maximum.
            v_h = v_h.sat_add(profile.get(d, j)).sat_sub(v_bias);
            v_h = v_h.max(e[j]).max(v_f);
            v_max = v_max.max(v_h);
            h_store[j] = v_h;
            e[j] = e[j].sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_f = v_f.sat_sub(v_extend).max(v_h.sat_sub(v_open));
            v_h = h_load[j];
        }
        // Lazy-F across segment boundaries; a raised H also raises the
        // next column's E (derived from the unrepaired H in the main loop).
        // Early exit is sound only for strictly affine gaps: with
        // open == extend, a lazily-raised H generates an F chain exactly
        // equal to the exit threshold, which the cutoff would drop. The
        // outer loop bounds the full propagation at BYTE_LANES wraps either way.
        let early_exit = params.gaps.open > params.gaps.extend;
        'lazy_f: for _ in 0..BYTE_LANES {
            v_f = v_f.shift_in(0);
            for j in 0..seg_len {
                let h = h_store[j].max(v_f);
                h_store[j] = h;
                v_max = v_max.max(h);
                e[j] = e[j].max(h.sat_sub(v_open));
                v_f = v_f.sat_sub(v_extend);
                if early_exit && !v_f.any_gt(h.sat_sub(v_open)) {
                    break 'lazy_f;
                }
            }
        }
        // Overflow check: once the running max could saturate during the
        // next column's biased add, the result is a lower bound only.
        if v_max.horizontal_max() >= profile.overflow_at {
            return None;
        }
    }
    Some(v_max.horizontal_max() as i32)
}

/// Statistics of an adaptive (byte-first) alignment batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Alignments resolved in byte mode.
    pub byte_mode: u64,
    /// Alignments that overflowed and re-ran in word mode.
    pub word_fallbacks: u64,
}

/// Byte mode first, exact word-mode re-run on saturation — SWPS3's
/// production strategy.
pub fn sw_striped_adaptive(
    params: &SwParams,
    byte_profile: &ByteProfile,
    query: &[u8],
    db: &[u8],
    stats: &mut AdaptiveStats,
) -> i32 {
    if query.is_empty() || db.is_empty() {
        return 0;
    }
    match sw_striped_bytes(params, byte_profile, db) {
        Some(score) => {
            stats.byte_mode += 1;
            score
        }
        None => {
            stats.word_fallbacks += 1;
            let profile = striped_profile(params, query);
            sw_striped(params, &profile, db).score
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_align::alphabet::encode_protein;
    use sw_align::smith_waterman::sw_score;
    use sw_db::synth::make_query;

    fn p() -> SwParams {
        SwParams::cudasw_default()
    }

    #[test]
    fn byte_mode_matches_scalar_below_saturation() {
        let cases = [
            ("MKVLAW", "MKVLAW"),
            ("ACDEFG", "ACDXXEFG"),
            ("WWWW", "PPPP"),
            ("MSPARKLNQWETYCV", "MSPRKLNQWWETYCV"),
        ];
        for (q, d) in cases {
            let qc = encode_protein(q).unwrap();
            let dc = encode_protein(d).unwrap();
            let profile = ByteProfile::build(&p(), &qc);
            let byte = sw_striped_bytes(&p(), &profile, &dc).expect("no overflow");
            assert_eq!(byte, sw_score(&p(), &qc, &dc), "q={q} d={d}");
        }
    }

    #[test]
    fn long_self_alignment_overflows_byte_range() {
        // A 200-residue self alignment scores far above 255.
        let q = make_query(200, 31);
        let profile = ByteProfile::build(&p(), &q);
        assert!(sw_striped_bytes(&p(), &profile, &q).is_none());
    }

    #[test]
    fn adaptive_is_always_exact() {
        let mut stats = AdaptiveStats::default();
        // Mix of small (byte-mode) and self-matching (fallback) pairs.
        let queries = [make_query(40, 1), make_query(120, 2)];
        for q in &queries {
            let profile = ByteProfile::build(&p(), q);
            let others = [make_query(60, 3), q.clone(), make_query(25, 4)];
            for d in &others {
                let adaptive = sw_striped_adaptive(&p(), &profile, q, d, &mut stats);
                assert_eq!(adaptive, sw_score(&p(), q, d));
            }
        }
        assert!(stats.byte_mode > 0, "some pairs must stay in byte mode");
        assert!(stats.word_fallbacks > 0, "self matches must fall back");
    }

    #[test]
    fn vector_ops() {
        let a = U8x16::splat(250);
        assert_eq!(a.sat_add(U8x16::splat(10)), U8x16::splat(255));
        assert_eq!(U8x16::splat(3).sat_sub(U8x16::splat(10)), U8x16::zero());
        let mut v = [0u8; 16];
        v[15] = 9;
        assert_eq!(U8x16(v).horizontal_max(), 9);
        assert!(U8x16(v).any_gt(U8x16::zero()));
        assert_eq!(U8x16(v).shift_in(7).0[0], 7);
        assert_eq!(U8x16(v).shift_in(7).0[15], 0);
    }

    #[test]
    fn profile_bias_is_matrix_minimum() {
        let q = encode_protein("MKV").unwrap();
        let profile = ByteProfile::build(&p(), &q);
        assert_eq!(profile.bias() as i32, -p().matrix.min_score());
        assert_eq!(profile.seg_len(), 1);
    }
}
